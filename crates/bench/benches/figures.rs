//! One Criterion group per paper figure. Each benchmark times one
//! representative configuration of the figure's experiment — enough to
//! track the cost of regenerating it and to catch performance
//! regressions in the simulation pipeline. The complete sweeps (all
//! rows/series of every figure) come from `cargo run --release -p
//! a4-experiments --bin a4-repro`; scenarios are built through the
//! declarative `ScenarioSpec` API like everything else.

use a4_bench::bench_opts;
use a4_core::FeatureLevel;
use a4_experiments::Scheme;
use a4_experiments::{fig11, fig12, fig13, fig14, fig15, fig3, fig4, fig5, fig6, fig7, fig8};
use a4_model::WayMask;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig3(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("dpdk_t_vs_xmem_at_dca_ways", |b| {
        b.iter(|| fig3::run_point(&opts, true, WayMask::from_paper_range(0, 1).unwrap()))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("dca_off_inclusive_ways", |b| {
        b.iter(|| fig4::run_point(&opts, false, Some(WayMask::INCLUSIVE)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("fio_512k_dca_on", |b| {
        b.iter(|| fig5::run_point(&opts, 512, true))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("dpdk_plus_fio_128k", |b| {
        b.iter(|| fig6::run_point(&opts, Some(128), true))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("overlap4", |b| {
        b.iter(|| fig7::run_point(&opts, fig7::Strategy::Overlap(4)))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("ssd_dca_off_128k", |b| {
        b.iter(|| fig8::run_point_8a(&opts, 128, false))
    });
    g.bench_function("trash_ways_2_2", |b| {
        b.iter(|| fig8::run_point_8b(&opts, 2))
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("mix_1024b_a4", |b| {
        b.iter(|| fig11::run_mix(&opts, Scheme::A4(FeatureLevel::D), 1024, 2048))
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("mix_1514b_default", |b| {
        b.iter(|| fig11::run_mix(&opts, Scheme::Default, 1514, 512))
    });
    let _ = fig12::BLOCK_KIB; // the sweep axis the full figure covers
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("hpw_heavy_a4d", |b| {
        b.iter(|| fig13::run_mix(&opts, Scheme::A4(FeatureLevel::D), true))
    });
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("fastclick_ffsb_a4d", |b| {
        b.iter(|| fig14::run_mix(&opts, Scheme::A4(FeatureLevel::D)))
    });
    g.finish();
}

fn bench_fig15(c: &mut Criterion) {
    let opts = bench_opts();
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("thresholds_default", |b| {
        b.iter(|| fig15::run_point(&opts, a4_core::Thresholds::scaled_sim()))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15
);
criterion_main!(figures);
