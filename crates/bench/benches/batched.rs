//! Batched run paths vs their scalar per-line loops.
//!
//! The PR adding `dma_write_run` / `dma_read_run` / `core_*_run` is
//! observationally pure (bit-identical counters, RNG draws and tables),
//! so these benchmarks are the *only* place its effect is visible: the
//! run paths must process the same line sequences measurably faster than
//! per-line dispatch. Workload-shaped line counts: a 1514 B NIC packet is
//! 1 descriptor + 24 payload lines; an NVMe chunk is 16 lines.

use a4_cache::{CacheHierarchy, HierarchyConfig};
use a4_model::{CoreId, DeviceId, LineAddr, WorkloadId};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn full_size() -> CacheHierarchy {
    CacheHierarchy::new(HierarchyConfig::scaled_xeon_6140(18))
}

/// Lines of a 1514 B packet run (descriptor + payload).
const PKT_LINES: u64 = 25;
/// Runs per iteration.
const RUNS: u64 = 400;

fn bench_dma_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("dma_run");
    g.throughput(Throughput::Elements(PKT_LINES * RUNS));

    // Ingress: packet-shaped DMA write runs into a warm ring span, the
    // NIC delivery path. Scalar vs batched over identical address
    // sequences (fresh hierarchy each, so state evolution matches).
    g.bench_function("dma_write_scalar", |b| {
        let mut h = full_size();
        let mut next = 0u64;
        b.iter(|| {
            for _ in 0..RUNS {
                let base = LineAddr((next % 4096) * PKT_LINES);
                next += 1;
                for l in 0..PKT_LINES {
                    h.dma_write(DeviceId(0), base.offset(l), WorkloadId(0), true);
                }
            }
        })
    });
    g.bench_function("dma_write_run", |b| {
        let mut h = full_size();
        let mut next = 0u64;
        b.iter(|| {
            for _ in 0..RUNS {
                let base = LineAddr((next % 4096) * PKT_LINES);
                next += 1;
                h.dma_write_run(DeviceId(0), base, PKT_LINES, WorkloadId(0), true);
            }
        })
    });

    // Egress: Tx-shaped DMA read runs over resident lines.
    g.bench_function("dma_read_scalar", |b| {
        let mut h = full_size();
        h.dma_write_run(DeviceId(0), LineAddr(0), PKT_LINES, WorkloadId(0), true);
        b.iter(|| {
            for _ in 0..RUNS {
                for l in 0..PKT_LINES {
                    h.dma_read(DeviceId(0), LineAddr(0).offset(l));
                }
            }
        })
    });
    g.bench_function("dma_read_run", |b| {
        let mut h = full_size();
        h.dma_write_run(DeviceId(0), LineAddr(0), PKT_LINES, WorkloadId(0), true);
        b.iter(|| {
            for _ in 0..RUNS {
                h.dma_read_run(DeviceId(0), LineAddr(0), PKT_LINES);
            }
        })
    });

    g.finish();
}

/// Working-set lines for the core stream (X-Mem 1 scaled: ~1802).
const WS_LINES: u64 = 1802;

fn bench_core_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("core_stream");
    g.throughput(Throughput::Elements(WS_LINES));

    // The X-Mem sequential sweep: one pass over the working set per
    // iteration, MLC-thrashing (ws > MLC) so the LLC victim path runs.
    g.bench_function("core_read_scalar", |b| {
        let mut h = full_size();
        b.iter(|| {
            for l in 0..WS_LINES {
                h.core_read(CoreId(0), LineAddr(l), WorkloadId(0));
            }
        })
    });
    g.bench_function("core_read_run", |b| {
        let mut h = full_size();
        b.iter(|| h.core_read_run(CoreId(0), LineAddr(0), WS_LINES, WorkloadId(0)))
    });
    g.bench_function("core_write_run", |b| {
        let mut h = full_size();
        b.iter(|| h.core_write_run(CoreId(0), LineAddr(0), WS_LINES, WorkloadId(0)))
    });

    // The packet-consumption shape: DCA-written lines read back through
    // the I/O path (migration-heavy).
    g.bench_function("consume_io_run", |b| {
        let mut h = full_size();
        let mut next = 0u64;
        b.iter(|| {
            for _ in 0..RUNS / 10 {
                let base = LineAddr((next % 4096) * PKT_LINES);
                next += 1;
                h.dma_write_run(DeviceId(0), base, PKT_LINES, WorkloadId(0), true);
                h.core_read_io_run(CoreId(0), base, PKT_LINES, WorkloadId(0));
            }
        })
    });

    g.finish();
}

criterion_group!(batched, bench_dma_run, bench_core_stream);
criterion_main!(batched);
