//! Raw throughput of the cache substrate: the line-level operations every
//! experiment is built from. These benchmarks bound how much simulated
//! traffic the reproduction can push per wall-clock second.

use a4_cache::{CacheHierarchy, HierarchyConfig};
use a4_model::{CoreId, DeviceId, LineAddr, WorkloadId};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn full_size() -> CacheHierarchy {
    CacheHierarchy::new(HierarchyConfig::scaled_xeon_6140(18))
}

const N: u64 = 10_000;

fn bench_core_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    g.throughput(Throughput::Elements(N));

    g.bench_function("core_read_mlc_hit", |b| {
        let mut h = full_size();
        h.core_read(CoreId(0), LineAddr(1), WorkloadId(0));
        b.iter(|| {
            for _ in 0..N {
                h.core_read(CoreId(0), LineAddr(1), WorkloadId(0));
            }
        })
    });

    g.bench_function("core_read_streaming_miss", |b| {
        let mut h = full_size();
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..N {
                h.core_read(CoreId(0), LineAddr(addr), WorkloadId(0));
                addr += 1;
            }
        })
    });

    g.bench_function("dma_write_allocate", |b| {
        let mut h = full_size();
        let mut addr = 1 << 32;
        b.iter(|| {
            for _ in 0..N {
                h.dma_write(DeviceId(0), LineAddr(addr), WorkloadId(0), true);
                addr += 1;
            }
        })
    });

    g.bench_function("dca_consume_with_migration", |b| {
        // DMA write + consuming read: exercises write-allocate plus the
        // C1 migration into the inclusive ways.
        let mut h = full_size();
        let mut addr = 1 << 33;
        b.iter(|| {
            for _ in 0..N {
                h.dma_write(DeviceId(0), LineAddr(addr), WorkloadId(0), true);
                h.core_read_io(CoreId(0), LineAddr(addr), WorkloadId(0));
                addr += 1;
            }
        })
    });

    g.finish();
}

fn bench_system_quantum(c: &mut Criterion) {
    use a4_model::{PortId, Priority};
    use a4_sim::{System, SystemConfig};

    let mut g = c.benchmark_group("system");
    g.sample_size(20);
    g.bench_function("loaded_quantum", |b| {
        let mut sys = System::new(SystemConfig::xeon_gold_6140());
        let nic = sys
            .attach_nic(PortId(0), a4_pcie::NicConfig::connectx6_100g(4, 64, 1024))
            .expect("port free");
        sys.add_workload(
            Box::new(a4_workloads::Dpdk::touching(nic)),
            (0..4).map(CoreId).collect(),
            Priority::High,
        )
        .expect("cores free");
        b.iter(|| sys.run_quantum())
    });
    g.finish();
}

criterion_group!(microarch, bench_core_reads, bench_system_quantum);
criterion_main!(microarch);
