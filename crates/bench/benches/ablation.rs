//! Ablation benches for the design choices DESIGN.md calls out: what
//! happens to the key contention signals when a modelled mechanism is
//! switched off or resized. Each benchmark returns the metric being
//! ablated (via `iter`'s return value) so `--verbose` runs double as a
//! mini ablation study. The ablation knobs (DDIO way count, NIC
//! burstiness) are plain `ScenarioSpec` overrides.

use a4_bench::bench_opts;
use a4_experiments::spec::{DeviceSpec, ScenarioSpec, SystemTweaks, WorkloadSpec};
use a4_model::{Priority, WayMask};
use criterion::{criterion_group, criterion_main, Criterion};

/// X-Mem miss rate at the inclusive ways with DPDK-T running — the
/// directory-contention signal — under different DDIO way counts
/// (the IIO `IIO_LLC_WAYS` knob; the paper uses the default 2).
fn directory_contention(ddio_ways: usize) -> f64 {
    let opts = bench_opts();
    let run = ScenarioSpec::new(format!("ablation ddio={ddio_ways}"), opts)
        .with_system(SystemTweaks {
            dca_ways: Some(ddio_ways),
            ..SystemTweaks::none()
        })
        .with_nic(4, 1024)
        .with_workload(
            "dpdk",
            WorkloadSpec::Dpdk {
                device: "nic".into(),
                touch: true,
            },
            &[0, 1, 2, 3],
            Priority::High,
        )
        .with_workload(
            "xmem",
            WorkloadSpec::XMem { instance: 1 },
            &[4, 5],
            Priority::High,
        )
        .with_cat(
            1,
            WayMask::from_paper_range(5, 6).expect("static"),
            &["dpdk"],
        )
        .with_cat(2, WayMask::INCLUSIVE, &["xmem"])
        .build()
        .expect("static ablation layout")
        .run();
    run.llc_miss_rate("xmem")
}

fn bench_ddio_way_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ddio_ways");
    g.sample_size(10);
    for ways in [1usize, 2, 4] {
        g.bench_function(format!("ddio_ways_{ways}"), |b| {
            b.iter(|| directory_contention(ways))
        });
    }
    g.finish();
}

/// The same signal with the NIC's microbursting disabled — quantifies how
/// much of the contention depends on traffic burstiness (DESIGN.md's
/// NIC-model substitution note).
fn bench_burstiness(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bursts");
    g.sample_size(10);
    for (label, amplitude) in [("bursty", 0.5f64), ("smooth", 0.0)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let opts = bench_opts();
                let run = ScenarioSpec::new(format!("ablation bursts={label}"), opts)
                    .with_device(
                        "nic",
                        0,
                        DeviceSpec::Nic {
                            rings: 4,
                            packet_bytes: 1024,
                            burst_amplitude: Some(amplitude),
                        },
                    )
                    .with_workload(
                        "dpdk",
                        WorkloadSpec::Dpdk {
                            device: "nic".into(),
                            touch: true,
                        },
                        &[0, 1, 2, 3],
                        Priority::High,
                    )
                    .build()
                    .expect("static ablation layout")
                    .run();
                run.llc_miss_rate("dpdk")
            })
        });
    }
    g.finish();
}

criterion_group!(ablation, bench_ddio_way_count, bench_burstiness);
criterion_main!(ablation);
