//! Ablation benches for the design choices DESIGN.md calls out: what
//! happens to the key contention signals when a modelled mechanism is
//! switched off or resized. Each benchmark returns the metric being
//! ablated (via `iter`'s return value) so `--verbose` runs double as a
//! mini ablation study.

use a4_bench::bench_opts;
use a4_core::Harness;
use a4_experiments::scenario;
use a4_model::{ClosId, Priority, WayMask};
use criterion::{criterion_group, criterion_main, Criterion};

/// X-Mem miss rate at the inclusive ways with DPDK-T running — the
/// directory-contention signal — under different DDIO way counts
/// (the IIO `IIO_LLC_WAYS` knob; the paper uses the default 2).
fn directory_contention(ddio_ways: usize) -> f64 {
    let opts = bench_opts();
    let mut sys = scenario::base_system(&opts);
    let nic = scenario::attach_nic(&mut sys, 4, 1024).expect("port free");
    let dpdk =
        scenario::add_dpdk(&mut sys, nic, true, &[0, 1, 2, 3], Priority::High).expect("cores free");
    let xmem = scenario::add_xmem(&mut sys, 1, &[4, 5], Priority::High).expect("cores free");
    sys.hierarchy_mut()
        .llc_mut()
        .set_dca_mask(WayMask::from_range(0, ddio_ways).expect("within 11 ways"));
    sys.cat_set_mask(ClosId(1), WayMask::from_paper_range(5, 6).expect("static"))
        .unwrap();
    sys.cat_assign_workload(dpdk, ClosId(1)).unwrap();
    sys.cat_set_mask(ClosId(2), WayMask::INCLUSIVE).unwrap();
    sys.cat_assign_workload(xmem, ClosId(2)).unwrap();
    let mut harness = Harness::new(sys);
    let report = harness.run(opts.warmup, opts.measure);
    report.llc_miss_rate(xmem)
}

fn bench_ddio_way_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ddio_ways");
    g.sample_size(10);
    for ways in [1usize, 2, 4] {
        g.bench_function(format!("ddio_ways_{ways}"), |b| {
            b.iter(|| directory_contention(ways))
        });
    }
    g.finish();
}

/// The same signal with the NIC's microbursting disabled — quantifies how
/// much of the contention depends on traffic burstiness (DESIGN.md's
/// NIC-model substitution note).
fn bench_burstiness(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bursts");
    g.sample_size(10);
    for (label, amplitude) in [("bursty", 0.5f64), ("smooth", 0.0)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let opts = bench_opts();
                let mut sys = scenario::base_system(&opts);
                let mut cfg = a4_pcie::NicConfig::connectx6_100g(4, 64, 1024);
                cfg.burst_amplitude = amplitude;
                let nic = sys.attach_nic(a4_model::PortId(0), cfg).expect("port free");
                let dpdk = scenario::add_dpdk(&mut sys, nic, true, &[0, 1, 2, 3], Priority::High)
                    .expect("cores free");
                let mut harness = Harness::new(sys);
                let report = harness.run(opts.warmup, opts.measure);
                report.llc_miss_rate(dpdk)
            })
        });
    }
    g.finish();
}

criterion_group!(ablation, bench_ddio_way_count, bench_burstiness);
criterion_main!(ablation);
