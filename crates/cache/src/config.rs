//! Geometry and sizing configuration for the cache hierarchy.

use a4_model::{A4Error, Result, LLC_WAYS};
use serde::{Deserialize, Serialize};

/// Upper bound on simultaneously registered workloads (stat table size).
pub const MAX_WORKLOADS: usize = 64;

/// Upper bound on PCIe devices (stat table size).
pub const MAX_DEVICES: usize = 8;

/// Geometry of the (aggregate) last-level cache.
///
/// The way count is fixed at [`a4_model::LLC_WAYS`] = 11 to match the
/// Xeon Gold 6140; capacity is scaled through the set count. The real
/// machine has 18 slices × 2048 sets; the default simulation uses a single
/// aggregate array of 1024 sets (2.75 MiB of data), with all workload
/// working sets scaled by the same factor (see DESIGN.md §1).
///
/// # Examples
///
/// ```
/// use a4_cache::LlcGeometry;
///
/// let g = LlcGeometry::new(1024).unwrap();
/// assert_eq!(g.sets(), 1024);
/// assert_eq!(g.capacity_bytes(), 1024 * 11 * 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcGeometry {
    sets: usize,
}

impl LlcGeometry {
    /// Creates a geometry with `sets` sets.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidConfig`] unless `sets` is a power of two
    /// of at least 16.
    pub fn new(sets: usize) -> Result<Self> {
        if !sets.is_power_of_two() || sets < 16 {
            return Err(A4Error::InvalidConfig {
                what: "llc sets must be a power of two >= 16",
            });
        }
        Ok(LlcGeometry { sets })
    }

    /// Number of sets.
    #[inline]
    pub fn sets(self) -> usize {
        self.sets
    }

    /// Total data capacity in bytes (sets × 11 ways × 64 B).
    #[inline]
    pub fn capacity_bytes(self) -> u64 {
        (self.sets * LLC_WAYS) as u64 * a4_model::LINE_BYTES
    }
}

/// Geometry of one private mid-level cache (L2).
///
/// # Examples
///
/// ```
/// use a4_cache::MlcGeometry;
///
/// let g = MlcGeometry::new(64, 16).unwrap();
/// assert_eq!(g.capacity_bytes(), 64 * 16 * 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlcGeometry {
    sets: usize,
    ways: usize,
}

impl MlcGeometry {
    /// Creates a geometry with `sets` sets of `ways` ways.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidConfig`] unless `sets` is a power of two
    /// and `ways` is in `1..=16` (the packed exact-LRU recency state
    /// holds at most 16 ways; real MLCs top out at 16 anyway).
    pub fn new(sets: usize, ways: usize) -> Result<Self> {
        if !sets.is_power_of_two() {
            return Err(A4Error::InvalidConfig {
                what: "mlc sets must be a power of two",
            });
        }
        if ways == 0 || ways > 16 {
            return Err(A4Error::InvalidConfig {
                what: "mlc ways must be in 1..=16",
            });
        }
        Ok(MlcGeometry { sets, ways })
    }

    /// Number of sets.
    #[inline]
    pub fn sets(self) -> usize {
        self.sets
    }

    /// Associativity.
    #[inline]
    pub fn ways(self) -> usize {
        self.ways
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity_bytes(self) -> u64 {
        (self.sets * self.ways) as u64 * a4_model::LINE_BYTES
    }
}

/// Configuration of the whole hierarchy: one MLC per core plus the LLC.
///
/// # Examples
///
/// ```
/// use a4_cache::HierarchyConfig;
///
/// let cfg = HierarchyConfig::scaled_xeon_6140(8);
/// assert_eq!(cfg.cores, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Number of cores (= number of MLCs).
    pub cores: usize,
    /// Geometry of each private MLC.
    pub mlc: MlcGeometry,
    /// Geometry of the shared LLC.
    pub llc: LlcGeometry,
}

impl HierarchyConfig {
    /// A capacity-scaled stand-in for the Xeon Gold 6140 used in the
    /// paper's Table 1: 11-way LLC, 16-way MLCs, with the MLC:LLC capacity
    /// ratio of the real part (1 MiB MLC per core vs 25 MiB LLC ⇒ each
    /// scaled MLC is ~1/16 of the scaled LLC).
    pub fn scaled_xeon_6140(cores: usize) -> Self {
        let llc = LlcGeometry::new(1024).expect("static geometry is valid");
        // 1024 sets × 11 ways × 64 B = 704 KiB, i.e. the real 25 MiB LLC
        // scaled by ≈36×. One LLC way is 64 KiB. Each MLC is 64 sets ×
        // 8 ways = 32 KiB = 0.5 LLC ways, matching the real part's 1 MiB
        // MLC ≈ 0.44 × (25 MiB / 11) ratio; 18 cores give an aggregate MLC
        // of 576 KiB ≈ 0.82 × LLC (real: 0.72), preserving the
        // extended-directory pressure.
        let mlc = MlcGeometry::new(64, 8).expect("static geometry is valid");
        HierarchyConfig { cores, mlc, llc }
    }

    /// A deliberately tiny hierarchy for unit tests: 16-set LLC, 8-set
    /// 4-way MLCs, 4 cores.
    pub fn small_test() -> Self {
        HierarchyConfig {
            cores: 4,
            mlc: MlcGeometry::new(8, 4).expect("static geometry is valid"),
            llc: LlcGeometry::new(16).expect("static geometry is valid"),
        }
    }

    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidConfig`] if there are no cores or more
    /// cores than presence bits (32).
    pub fn validate(&self) -> Result<()> {
        if self.cores == 0 || self.cores > 32 {
            return Err(A4Error::InvalidConfig {
                what: "cores must be in 1..=32",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llc_geometry_validates() {
        assert!(LlcGeometry::new(0).is_err());
        assert!(LlcGeometry::new(100).is_err());
        assert!(LlcGeometry::new(8).is_err());
        assert!(LlcGeometry::new(16).is_ok());
    }

    #[test]
    fn mlc_geometry_validates() {
        assert!(MlcGeometry::new(3, 4).is_err());
        assert!(MlcGeometry::new(8, 0).is_err());
        assert!(MlcGeometry::new(8, 17).is_err());
        assert!(MlcGeometry::new(8, 64).is_err());
        assert!(MlcGeometry::new(8, 16).is_ok());
    }

    #[test]
    fn scaled_config_preserves_capacity_ratio() {
        let cfg = HierarchyConfig::scaled_xeon_6140(8);
        let llc = cfg.llc.capacity_bytes() as f64;
        let aggregate_mlc = (cfg.mlc.capacity_bytes() * cfg.cores as u64) as f64;
        // Real machine: 18 MiB aggregate MLC vs 25 MiB LLC => ratio < 1.
        assert!(aggregate_mlc < llc);
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_zero_cores() {
        let mut cfg = HierarchyConfig::small_test();
        cfg.cores = 0;
        assert!(cfg.validate().is_err());
        cfg.cores = 33;
        assert!(cfg.validate().is_err());
    }
}
