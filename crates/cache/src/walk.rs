//! Incremental set/tag decomposition for contiguous line runs.
//!
//! Batched access paths iterate runs of consecutive line addresses; the
//! walker advances the `(set, tag)` pair directly instead of re-splitting
//! every address, and gives the run loops one shared, obviously-correct
//! definition of "next line" against the stripe layout.

use a4_model::LineAddr;

/// A cursor over the `(set, tag)` decomposition of consecutive line
/// addresses under one cache geometry (power-of-two set count).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SetTagWalk {
    set: usize,
    tag: u64,
    set_mask: usize,
}

impl SetTagWalk {
    /// Starts a walk at `base` for a cache whose address split is
    /// `(addr & set_mask, addr >> tag_shift)`.
    #[inline]
    pub(crate) fn new(base: LineAddr, set_mask: u64, tag_shift: u32) -> Self {
        SetTagWalk {
            set: (base.0 & set_mask) as usize,
            tag: base.0 >> tag_shift,
            set_mask: set_mask as usize,
        }
    }

    /// Set index of the current line.
    #[inline]
    pub(crate) fn set(&self) -> usize {
        self.set
    }

    /// Tag of the current line.
    #[inline]
    pub(crate) fn tag(&self) -> u64 {
        self.tag
    }

    /// Moves to the next consecutive line address.
    #[inline]
    pub(crate) fn advance(&mut self) {
        self.set = (self.set + 1) & self.set_mask;
        if self.set == 0 {
            self.tag += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_matches_split_across_wrap() {
        // 16 sets => mask 15, shift 4.
        let base = LineAddr(0x3E);
        let mut w = SetTagWalk::new(base, 15, 4);
        for l in 0..40u64 {
            let addr = base.offset(l);
            assert_eq!(w.set(), (addr.0 & 15) as usize, "set at +{l}");
            assert_eq!(w.tag(), addr.0 >> 4, "tag at +{l}");
            w.advance();
        }
    }
}
