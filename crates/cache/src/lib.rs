//! Skylake-style non-inclusive cache hierarchy for the A4 reproduction.
//!
//! This crate models the microarchitectural structures the A4 paper's two
//! newly-discovered contentions hinge on:
//!
//! * a **non-inclusive LLC** (11 data ways) acting as a victim cache for
//!   the private Mid-Level Caches (MLCs),
//! * the **inclusive directory**: 11 traditional directory ways coupled 1:1
//!   with the data ways plus 12 extended directory ways tracking
//!   MLC-resident lines, with **two ways shared** between the groups — so a
//!   line resident in both the LLC and an MLC can only occupy data ways
//!   9–10, the *inclusive ways* (Fig. 1 of the paper, after Yan et al.),
//! * **DCA (Intel DDIO)**: DMA writes update cached lines in place or
//!   write-allocate into the two left-most *DCA ways*, ignoring CAT masks,
//! * **CAT**: per-CLOS contiguous way masks constraining *allocation*
//!   victim selection only — hits are served from any way.
//!
//! The observable consequences reproduced here, with the paper's names:
//!
//! * **directory contention / C1** ([`LlcReadResult::Hit`] with
//!   `migrated == true`): a core read of an LLC-exclusive line forces the
//!   LLC copy into an inclusive way, evicting whatever lived there;
//! * **DMA leak**: an I/O line evicted from the LLC before any core
//!   consumed it;
//! * **DMA bloat**: a consumed I/O line evicted from an MLC back into the
//!   core's CLOS-permitted LLC ways;
//! * **latent contention**: non-I/O lines allocated into ways overlapping
//!   the DCA ways being evicted by DMA write-allocates.
//!
//! # Examples
//!
//! ```
//! use a4_cache::{CacheHierarchy, HierarchyConfig, CoreAccessLevel};
//! use a4_model::{CoreId, DeviceId, LineAddr, WorkloadId};
//!
//! let mut hier = CacheHierarchy::new(HierarchyConfig::small_test());
//! let wl = WorkloadId(0);
//!
//! // A DMA write allocates into the DCA ways...
//! hier.dma_write(DeviceId(0), LineAddr(0x40), wl, true);
//! // ...and the consuming core finds it in the LLC (a "DCA hit").
//! let level = hier.core_read(CoreId(0), LineAddr(0x40), wl);
//! assert_eq!(level, CoreAccessLevel::LlcHit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clos;
mod config;

mod hierarchy;
mod llc;
mod lru;
mod meta;
mod mlc;
mod route;
mod stats;
mod walk;

pub use clos::ClosTable;
pub use config::{HierarchyConfig, LlcGeometry, MlcGeometry, MAX_DEVICES, MAX_WORKLOADS};
pub use hierarchy::{
    CacheHierarchy, CacheHierarchyState, CoreAccessLevel, CoreRun, DmaReadSource, DmaWriteDest,
    RemoteRun,
};
pub use llc::{
    EvictedLlcLine, Llc, LlcReadResult, LlcState, SetBlockState, EXT_DIR_EXCLUSIVE_WAYS,
};
pub use meta::LineMeta;
pub use mlc::{EvictedMlcLine, Mlc, MlcSetBlockState, MlcState};
pub use route::{
    DmaRouter, RemoteCache, RemoteCacheState, UpiFabric, UpiLink, UpiLinkState, UpiTopology,
};
pub use stats::{DeviceCounters, HierarchyStats, WorkloadCounters};
