//! Constant-time exact-LRU recency tracking for small set-associative
//! structures.
//!
//! The seed implementation kept a monotonically increasing `lru: u64`
//! tick per way and scanned the whole set for the minimum on every
//! eviction. For ≤ 16 ways the same *exact* LRU order fits in one `u64`
//! as a packed permutation (4 bits per position), where a touch is a
//! branch-free move-to-front and the victim is a shift — no per-way tick
//! stores and no eviction-time scan.
//!
//! Equivalence to the tick scheme: a victim is only ever taken when all
//! ways of the set are valid, and every valid way was touched (install
//! counts as a touch) after the set was last not-full, so the ticks are
//! distinct and `min-tick` is precisely "least recently touched" — which
//! is the tail of this list. Invalid ways are re-installed through the
//! free-way path (lowest free index), never through the victim path, so
//! their stale positions in the permutation are harmless.

/// Recency order of up to 16 ways, packed 4 bits per position; nibble 0
/// holds the most recently used way, nibble `ways-1` the LRU victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Recency(u64);

const NIBBLE_LO: u64 = 0x1111_1111_1111_1111;
const NIBBLE_HI: u64 = 0x8888_8888_8888_8888;

impl Recency {
    /// The identity permutation: way `i` at position `i`.
    pub(crate) fn identity(ways: usize) -> Self {
        debug_assert!((1..=16).contains(&ways));
        let mut v = 0u64;
        for w in 0..ways as u64 {
            v |= w << (4 * w);
        }
        Recency(v)
    }

    /// Marks `way` as most recently used (branch-free move-to-front).
    // a4-lint: allow-fn(counter-safety) -- SWAR nibble tricks: the wrap-around is the textbook zero-nibble-search bit hack over a packed permutation, not counter arithmetic
    #[inline]
    pub(crate) fn touch(&mut self, way: usize, ways: usize) {
        let w = way as u64;
        let active = !0u64 >> (64 - 4 * ways as u32);
        // SWAR zero-nibble search for `way`'s position; inactive high
        // nibbles are forced non-zero so they can never match way 0.
        let x = (self.0 ^ w.wrapping_mul(NIBBLE_LO)) | !active;
        let z = x.wrapping_sub(NIBBLE_LO) & !x & NIBBLE_HI;
        let p = z.trailing_zeros() >> 2;
        debug_assert!((p as usize) < ways, "way {way} not in recency list");
        // Keep positions above p, shift 0..p up one nibble, insert at 0.
        let upto = !0u64 >> (64 - 4 * (p + 1));
        let below = upto >> 4;
        self.0 = (self.0 & !upto) | ((self.0 & below) << 4) | w;
    }

    /// The least recently used way.
    #[inline]
    pub(crate) fn victim(self, ways: usize) -> usize {
        ((self.0 >> (4 * (ways as u32 - 1))) & 0xF) as usize
    }

    /// The packed permutation word, for checkpointing.
    pub(crate) fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds the order from a [`Recency::raw`] snapshot.
    pub(crate) fn from_raw(v: u64) -> Self {
        Recency(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: vector ordered most-recent-first.
    fn model_touch(order: &mut Vec<usize>, way: usize) {
        let p = order.iter().position(|&w| w == way).expect("way present");
        order.remove(p);
        order.insert(0, way);
    }

    #[test]
    fn identity_and_basic_moves() {
        let mut r = Recency::identity(4);
        assert_eq!(r.victim(4), 3);
        r.touch(3, 4);
        assert_eq!(r.victim(4), 2);
        r.touch(2, 4);
        r.touch(3, 4);
        // Order now [3, 2, 0, 1] most-recent-first.
        assert_eq!(r.victim(4), 1);
    }

    #[test]
    fn way_zero_with_inactive_high_nibbles() {
        // With < 16 ways the unused high nibbles are zero; touching way 0
        // must still find the *active* position.
        for ways in 1..=16 {
            let mut r = Recency::identity(ways);
            r.touch(0, ways);
            if ways > 1 {
                assert_eq!(r.victim(ways), ways - 1);
            } else {
                assert_eq!(r.victim(1), 0);
            }
        }
    }

    #[test]
    fn matches_reference_model_under_random_ops() {
        for ways in [2usize, 3, 8, 10, 11, 16] {
            let mut r = Recency::identity(ways);
            let mut model: Vec<usize> = (0..ways).collect();
            let mut state = 0x1234_5678_9abc_def0u64 ^ ways as u64;
            for _ in 0..10_000 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let way = (state % ways as u64) as usize;
                r.touch(way, ways);
                model_touch(&mut model, way);
                assert_eq!(r.victim(ways), *model.last().expect("non-empty"));
            }
        }
    }
}
