//! The wired-up cache hierarchy: per-core MLCs + shared LLC + CAT table.
//!
//! This is the façade the simulator drives. It owns the coherence
//! orchestration the real chip does in hardware: MLC fills on LLC hits,
//! victim-cache inserts on MLC evictions, back-invalidations on directory
//! evictions and DMA snoops, and write-back accounting — all while
//! updating the PCM-style [`HierarchyStats`].

use crate::clos::ClosTable;
use crate::config::HierarchyConfig;
use crate::llc::{
    DmaReadResult, DmaWriteResult, EvictedLlcLine, Llc, LlcReadResult, MlcEvictionOutcome,
};
use crate::meta::LineMeta;
use crate::mlc::{EvictedMlcLine, Mlc};
use crate::stats::HierarchyStats;
use a4_model::{CoreId, DeviceId, LineAddr, WorkloadId};

/// Where a core access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreAccessLevel {
    /// Hit in the core's private MLC.
    MlcHit,
    /// Hit in the shared LLC (including the DCA fast path).
    LlcHit,
    /// Missed on-chip and was served from memory.
    Memory,
}

/// Where a DMA write landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaWriteDest {
    /// Write-updated an already-cached line in place.
    LlcUpdate,
    /// Write-allocated into a DCA way.
    DcaAllocate,
    /// DCA disabled for the device: the line went to memory.
    Memory,
}

/// Where a DMA (egress) read was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaReadSource {
    /// Served from the LLC.
    Llc,
    /// Forwarded from an MLC, read-allocating an inclusive-way copy.
    Mlc,
    /// Served from memory without allocation.
    Memory,
}

/// The complete modelled hierarchy.
///
/// # Examples
///
/// ```
/// use a4_cache::{CacheHierarchy, CoreAccessLevel, HierarchyConfig};
/// use a4_model::{CoreId, LineAddr, WorkloadId};
///
/// let mut hier = CacheHierarchy::new(HierarchyConfig::small_test());
/// let wl = WorkloadId(0);
/// // First touch goes to memory, the repeat hits the MLC.
/// assert_eq!(hier.core_read(CoreId(0), LineAddr(9), wl), CoreAccessLevel::Memory);
/// assert_eq!(hier.core_read(CoreId(0), LineAddr(9), wl), CoreAccessLevel::MlcHit);
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    mlcs: Vec<Mlc>,
    llc: Llc,
    clos: ClosTable,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Builds an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`HierarchyConfig::validate`].
    pub fn new(config: HierarchyConfig) -> Self {
        config.validate().expect("invalid hierarchy configuration");
        CacheHierarchy {
            config,
            mlcs: (0..config.cores).map(|_| Mlc::new(config.mlc)).collect(),
            llc: Llc::new(config.llc),
            clos: ClosTable::new(config.cores),
            stats: HierarchyStats::new(),
        }
    }

    /// The configuration the hierarchy was built with.
    #[inline]
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Shared LLC (read-only).
    #[inline]
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// Mutable LLC access (ablation knobs such as the DDIO way mask).
    #[inline]
    pub fn llc_mut(&mut self) -> &mut Llc {
        &mut self.llc
    }

    /// One core's MLC (read-only).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn mlc(&self, core: CoreId) -> &Mlc {
        &self.mlcs[core.index()]
    }

    /// The CAT state.
    #[inline]
    pub fn clos(&self) -> &ClosTable {
        &self.clos
    }

    /// Mutable CAT state (the control plane A4 programs).
    #[inline]
    pub fn clos_mut(&mut self) -> &mut ClosTable {
        &mut self.clos
    }

    /// Accumulated counters.
    #[inline]
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Core load. `io_hint` marks reads of I/O buffers so lines refetched
    /// after a DMA leak keep their I/O attribution.
    pub fn core_read(
        &mut self,
        core: CoreId,
        addr: LineAddr,
        owner: WorkloadId,
    ) -> CoreAccessLevel {
        self.core_access(core, addr, owner, false, false)
    }

    /// Core store (write-allocates in the MLC, marks the line dirty).
    pub fn core_write(
        &mut self,
        core: CoreId,
        addr: LineAddr,
        owner: WorkloadId,
    ) -> CoreAccessLevel {
        self.core_access(core, addr, owner, true, false)
    }

    /// Core load of an I/O buffer (see [`CacheHierarchy::core_read`]).
    pub fn core_read_io(
        &mut self,
        core: CoreId,
        addr: LineAddr,
        owner: WorkloadId,
    ) -> CoreAccessLevel {
        self.core_access(core, addr, owner, false, true)
    }

    fn core_access(
        &mut self,
        core: CoreId,
        addr: LineAddr,
        owner: WorkloadId,
        write: bool,
        io_hint: bool,
    ) -> CoreAccessLevel {
        debug_assert!(core.index() < self.mlcs.len(), "core out of range");

        if self.mlcs[core.index()].lookup(addr, write) {
            self.stats.bump(owner, |c| c.mlc_hits += 1);
            return CoreAccessLevel::MlcHit;
        }

        match self.llc.core_read(core, addr) {
            LlcReadResult::Hit {
                migrated,
                from_dca_way,
                io_first_consume,
                evicted,
                meta,
            } => {
                self.stats.bump(owner, |c| c.llc_hits += 1);
                let dca_consumed = io_first_consume && from_dca_way;
                if migrated || dca_consumed {
                    self.stats.bump(meta.owner, |c| {
                        c.migrations += u64::from(migrated);
                        c.dca_consumed += u64::from(dca_consumed);
                    });
                }
                if let Some(ev) = evicted {
                    self.handle_llc_eviction(ev);
                }
                let mut mlc_meta = meta;
                mlc_meta.consumed = true;
                // The MLC lookup above just missed and nothing since
                // could have filled `addr` into this core's MLC, so the
                // already-present probe can be skipped.
                if let Some(victim) = self.mlcs[core.index()].fill_after_miss(addr, mlc_meta, write)
                {
                    self.handle_mlc_eviction(core, victim);
                }
                CoreAccessLevel::LlcHit
            }
            LlcReadResult::Miss => {
                self.stats.bump(owner, |c| {
                    c.llc_misses += 1;
                    c.mem_read_lines += 1;
                });
                // Track the new MLC-resident line in the extended directory.
                if let Some(forced) = self.llc.register_mlc_fill(core, addr) {
                    self.back_invalidate(forced.addr, forced.presence, true);
                }
                let meta = LineMeta {
                    owner,
                    io: io_hint,
                    consumed: true,
                    device: None,
                };
                if let Some(victim) = self.mlcs[core.index()].fill_after_miss(addr, meta, write) {
                    self.handle_mlc_eviction(core, victim);
                }
                CoreAccessLevel::Memory
            }
        }
    }

    /// Ingress DMA write of one line by `device` on behalf of consumer
    /// workload `owner`. `dca_enabled` reflects the device's per-port
    /// `perfctrlsts_0` state.
    pub fn dma_write(
        &mut self,
        device: DeviceId,
        addr: LineAddr,
        owner: WorkloadId,
        dca_enabled: bool,
    ) -> DmaWriteDest {
        if !dca_enabled {
            // Stale cached copies are snooped out; data lands in memory.
            let presence = self.llc.snoop_invalidate(addr);
            self.back_invalidate(addr, presence, false);
            let d = self.stats.device_mut(device);
            d.dma_write_lines += 1;
            d.dma_to_memory_lines += 1;
            self.stats.bump(owner, |c| c.mem_write_lines += 1);
            return DmaWriteDest::Memory;
        }

        match self.llc.dma_write(addr, owner, device) {
            DmaWriteResult::Updated {
                invalidate_presence,
            } => {
                self.back_invalidate(addr, invalidate_presence, false);
                let d = self.stats.device_mut(device);
                d.dma_write_lines += 1;
                d.dca_updates += 1;
                self.stats.bump(owner, |c| c.dca_updates += 1);
                DmaWriteDest::LlcUpdate
            }
            DmaWriteResult::Allocated {
                invalidate_presence,
                evicted,
            } => {
                self.back_invalidate(addr, invalidate_presence, false);
                let d = self.stats.device_mut(device);
                d.dma_write_lines += 1;
                d.dca_allocs += 1;
                self.stats.bump(owner, |c| c.dca_allocs += 1);
                if let Some(ev) = evicted {
                    self.handle_llc_eviction(ev);
                }
                DmaWriteDest::DcaAllocate
            }
        }
    }

    /// Egress DMA read of one line by `device`.
    pub fn dma_read(&mut self, device: DeviceId, addr: LineAddr) -> DmaReadSource {
        self.stats.device_mut(device).dma_read_lines += 1;
        match self.llc.dma_read(addr) {
            DmaReadResult::LlcHit => DmaReadSource::Llc,
            DmaReadResult::MlcOnly { presence } => {
                // Copy the MLC line into an inclusive way, then serve it.
                let meta = (0..self.config.cores)
                    .filter(|&c| presence & (1 << c) != 0)
                    .find_map(|c| self.mlcs[c].meta(addr))
                    .unwrap_or(LineMeta::cpu(WorkloadId(0)));
                if let Some(ev) = self.llc.egress_allocate(addr, meta, presence) {
                    self.handle_llc_eviction(ev);
                }
                DmaReadSource::Mlc
            }
            DmaReadResult::Miss => {
                self.stats.bump(WorkloadId(0), |c| c.mem_read_lines += 1);
                DmaReadSource::Memory
            }
        }
    }

    fn handle_mlc_eviction(&mut self, core: CoreId, victim: EvictedMlcLine) {
        let mask = self.clos.mask_for_core(core);
        match self
            .llc
            .mlc_eviction(core, victim.addr, victim.dirty, victim.meta, mask)
        {
            MlcEvictionOutcome::StillShared | MlcEvictionOutcome::MergedIntoLlc => {}
            MlcEvictionOutcome::Inserted { bloat, evicted } => {
                if bloat {
                    self.stats.bump(victim.meta.owner, |c| c.dma_bloats += 1);
                }
                if let Some(ev) = evicted {
                    self.handle_llc_eviction(ev);
                }
            }
        }
    }

    fn handle_llc_eviction(&mut self, ev: EvictedLlcLine) {
        if ev.was_in_mlc {
            // Non-inclusive hierarchy: the MLC copies survive the LLC data
            // eviction; their tracking demotes to the extended directory.
            if let Some(forced) = self.llc.demote_to_ext_dir(ev.addr, ev.presence) {
                self.back_invalidate(forced.addr, forced.presence, true);
            }
        }
        // One bump covers all of this eviction's owner-side counters (the
        // total/per-workload rows are walked once, not once per field).
        let leak = ev.is_dma_leak();
        self.stats.bump(ev.meta.owner, |c| {
            c.mem_write_lines += u64::from(ev.dirty);
            c.dma_leaks += u64::from(leak);
            c.evictions_suffered += 1;
        });
        if leak {
            if let Some(dev) = ev.meta.device {
                self.stats.device_mut(dev).dma_leaks += 1;
            }
        }
    }

    /// Invalidates MLC copies named by `presence`. When `writeback` is
    /// true (directory evictions, LLC evictions of inclusive lines) dirty
    /// copies are written back to memory; DMA snoops overwrite the data so
    /// they skip the write-back.
    fn back_invalidate(&mut self, addr: LineAddr, presence: u32, writeback: bool) {
        let mut m = presence & ((1u64 << self.config.cores) - 1) as u32;
        while m != 0 {
            let c = m.trailing_zeros() as usize;
            m &= m - 1;
            if let Some((dirty, meta)) = self.mlcs[c].invalidate(addr) {
                self.stats.bump(meta.owner, |s| s.back_invalidations += 1);
                if dirty && writeback {
                    self.stats.bump(meta.owner, |s| s.mem_write_lines += 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::WayMask;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const DEV: DeviceId = DeviceId(0);

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::small_test())
    }

    fn wl(n: u16) -> WorkloadId {
        WorkloadId(n)
    }

    #[test]
    fn miss_fill_hit_sequence() {
        let mut h = hier();
        assert_eq!(h.core_read(C0, LineAddr(1), wl(0)), CoreAccessLevel::Memory);
        assert_eq!(h.core_read(C0, LineAddr(1), wl(0)), CoreAccessLevel::MlcHit);
        let c = h.stats().workload(wl(0));
        assert_eq!(c.mlc_hits, 1);
        assert_eq!(c.llc_misses, 1);
        assert_eq!(c.mem_read_lines, 1);
        // Non-inclusive: the miss filled the MLC, not the LLC.
        assert!(h.llc().probe(LineAddr(1)).is_none());
        assert!(h.llc().ext_dir_tracks(LineAddr(1)));
    }

    #[test]
    fn dca_fast_path_counts_consumption() {
        let mut h = hier();
        assert_eq!(
            h.dma_write(DEV, LineAddr(2), wl(1), true),
            DmaWriteDest::DcaAllocate
        );
        assert_eq!(
            h.core_read_io(C0, LineAddr(2), wl(1)),
            CoreAccessLevel::LlcHit
        );
        let c = h.stats().workload(wl(1));
        assert_eq!(c.dca_allocs, 1);
        assert_eq!(c.dca_consumed, 1);
        assert_eq!(c.migrations, 1, "consumption migrated the line (C1)");
        // Line is now inclusive and in the MLC.
        assert!(h.mlc(C0).contains(LineAddr(2)));
        h.llc().assert_inclusive_invariant();
    }

    #[test]
    fn dca_disabled_goes_to_memory() {
        let mut h = hier();
        assert_eq!(
            h.dma_write(DEV, LineAddr(3), wl(1), false),
            DmaWriteDest::Memory
        );
        assert!(h.llc().probe(LineAddr(3)).is_none());
        assert_eq!(h.stats().device(DEV).dma_to_memory_lines, 1);
        assert_eq!(h.stats().total.mem_write_lines, 1);
        // The consumer now pays a memory read.
        assert_eq!(
            h.core_read_io(C0, LineAddr(3), wl(1)),
            CoreAccessLevel::Memory
        );
    }

    #[test]
    fn dma_write_snoops_stale_mlc_copy() {
        let mut h = hier();
        // Core owns the line in its MLC.
        h.core_read(C0, LineAddr(4), wl(0));
        assert!(h.mlc(C0).contains(LineAddr(4)));
        // DMA write invalidates the stale copy and allocates in DCA ways.
        assert_eq!(
            h.dma_write(DEV, LineAddr(4), wl(0), true),
            DmaWriteDest::DcaAllocate
        );
        assert!(!h.mlc(C0).contains(LineAddr(4)));
        assert!(!h.llc().ext_dir_tracks(LineAddr(4)));
        assert_eq!(h.stats().workload(wl(0)).back_invalidations, 1);
    }

    #[test]
    fn dma_leak_counted_when_ring_overflows() {
        let mut h = hier();
        // 3 lines in the same LLC set (16 sets): only 2 DCA ways.
        for i in 0..3u64 {
            h.dma_write(DEV, LineAddr(i * 16), wl(1), true);
        }
        assert_eq!(h.stats().workload(wl(1)).dma_leaks, 1);
        assert_eq!(h.stats().device(DEV).dma_leaks, 1);
        // The leaked line's write-back hit memory.
        assert_eq!(h.stats().total.mem_write_lines, 1);
    }

    #[test]
    fn consumed_line_evicted_from_mlc_is_bloat() {
        let mut h = hier();
        h.clos_mut()
            .set_mask(
                a4_model::ClosId(1),
                WayMask::from_paper_range(5, 6).unwrap(),
            )
            .unwrap();
        h.clos_mut().assign_core(C0, a4_model::ClosId(1)).unwrap();
        // Consume an I/O line, displace its LLC-inclusive copy with two
        // further migrations (inclusive ways churn under load), then
        // thrash the MLC set until the consumed line spills back.
        for i in 0..3u64 {
            h.dma_write(DEV, LineAddr(i * 16), wl(1), true);
            h.core_read_io(C0, LineAddr(i * 16), wl(1));
        }
        // One of the two earlier lines lost its LLC copy to the third
        // migration (random victim) and is tracked by the extended dir.
        let displaced = [LineAddr(0), LineAddr(16)]
            .into_iter()
            .find(|&l| h.llc().probe(l).is_none())
            .expect("one inclusive-way line was displaced");
        assert!(
            h.llc().ext_dir_tracks(displaced),
            "tracking demoted, MLC copy alive"
        );
        // MLC small_test geometry: 8 sets, 4 ways; lines 0/16/32 sit in MLC
        // set 0. Four fresh set-0 lines evict them.
        for i in 1..=4u64 {
            h.core_read(C0, LineAddr(i * 8 + 256), wl(2));
        }
        let c = h.stats().workload(wl(1));
        // All three consumed I/O lines re-enter the LLC's standard ways:
        // the displaced one via the extended-directory path, the others by
        // relocation out of the inclusive ways.
        assert_eq!(
            c.dma_bloats, 3,
            "every consumed I/O line re-entered the LLC"
        );
        // Bloat lands in the core's CLOS ways: the two [5:6] slots of the
        // set hold two of the three lines (the third was evicted again).
        let clos = WayMask::from_paper_range(5, 6).unwrap();
        let resident = [LineAddr(0), LineAddr(16), LineAddr(32)]
            .into_iter()
            .filter_map(|l| h.llc().probe(l))
            .inspect(|p| assert!(clos.contains_way(p.way), "bloat confined to CLOS ways"))
            .count();
        assert_eq!(resident, 2);
    }

    #[test]
    fn egress_read_from_mlc_allocates_inclusive_copy() {
        let mut h = hier();
        h.core_write(C0, LineAddr(7), wl(0));
        assert_eq!(h.dma_read(DEV, LineAddr(7)), DmaReadSource::Mlc);
        let p = h.llc().probe(LineAddr(7)).unwrap();
        assert!(WayMask::INCLUSIVE.contains_way(p.way));
        assert!(p.in_mlc);
        h.llc().assert_inclusive_invariant();
        // Second read is served straight from the LLC.
        assert_eq!(h.dma_read(DEV, LineAddr(7)), DmaReadSource::Llc);
        // Uncached egress reads come from memory without allocation.
        assert_eq!(h.dma_read(DEV, LineAddr(1000)), DmaReadSource::Memory);
    }

    #[test]
    fn inclusive_eviction_demotes_mlc_tracking() {
        let mut h = hier();
        // Two inclusive lines in set 0 held by core 1.
        h.dma_write(DEV, LineAddr(0), wl(1), true);
        h.core_read_io(C1, LineAddr(0), wl(1));
        h.dma_write(DEV, LineAddr(16), wl(1), true);
        h.core_read_io(C1, LineAddr(16), wl(1));
        assert!(h.mlc(C1).contains(LineAddr(0)));
        // A third migration evicts the LRU inclusive line's data copy; in
        // the non-inclusive hierarchy the MLC copy survives, tracked by the
        // extended directory.
        h.dma_write(DEV, LineAddr(32), wl(1), true);
        h.core_read_io(C1, LineAddr(32), wl(1));
        // The third migration displaced one of the first two lines
        // (random victim): its MLC copy survives and the extended
        // directory picked up the tracking.
        let displaced = [LineAddr(0), LineAddr(16)]
            .into_iter()
            .find(|&l| h.llc().probe(l).is_none())
            .expect("an inclusive line was displaced");
        assert!(
            h.mlc(C1).contains(displaced),
            "MLC copy survives the LLC eviction"
        );
        assert!(
            h.llc().ext_dir_tracks(displaced),
            "tracking demoted to the extended dir"
        );
        h.llc().assert_inclusive_invariant();
    }

    #[test]
    fn writeback_attribution_on_dirty_eviction() {
        let mut h = hier();
        h.clos_mut()
            .set_mask(
                a4_model::ClosId(1),
                WayMask::from_paper_range(2, 2).unwrap(),
            )
            .unwrap();
        h.clos_mut().assign_core(C0, a4_model::ClosId(1)).unwrap();
        // Dirty a line, spill it to the LLC (1-way mask), then displace it.
        h.core_write(C0, LineAddr(0), wl(3));
        for i in 1..=4u64 {
            h.core_read(C0, LineAddr(i * 8), wl(3)); // thrash MLC set 0
        }
        // Line 0 now dirty in LLC way 2; displace with more spills to way 2.
        let before = h.stats().workload(wl(3)).mem_write_lines;
        for i in 5..=40u64 {
            h.core_read(C0, LineAddr(i * 16), wl(3)); // same LLC set 0
        }
        let after = h.stats().workload(wl(3)).mem_write_lines;
        assert!(after > before, "dirty victim write-backs must be counted");
    }

    #[test]
    fn second_dma_write_is_update_in_place() {
        let mut h = hier();
        h.dma_write(DEV, LineAddr(6), wl(1), true);
        assert_eq!(
            h.dma_write(DEV, LineAddr(6), wl(1), true),
            DmaWriteDest::LlcUpdate
        );
        assert_eq!(h.stats().device(DEV).dca_updates, 1);
        assert_eq!(h.stats().device(DEV).dca_allocs, 1);
    }

    #[test]
    fn stats_delta_tracks_interval() {
        let mut h = hier();
        h.core_read(C0, LineAddr(1), wl(0));
        let snap = h.stats().clone();
        h.core_read(C0, LineAddr(1), wl(0));
        let d = h.stats().delta_since(&snap);
        assert_eq!(d.workload(wl(0)).mlc_hits, 1);
        assert_eq!(d.workload(wl(0)).llc_misses, 0);
    }
}
