//! The wired-up cache hierarchy: per-core MLCs + shared LLC + CAT table.
//!
//! This is the façade the simulator drives. It owns the coherence
//! orchestration the real chip does in hardware: MLC fills on LLC hits,
//! victim-cache inserts on MLC evictions, back-invalidations on directory
//! evictions and DMA snoops, and write-back accounting — all while
//! updating the PCM-style [`HierarchyStats`].

use crate::clos::ClosTable;
use crate::config::HierarchyConfig;
use crate::llc::{
    DmaReadResult, DmaWriteResult, EvictedLlcLine, Llc, LlcReadResult, LlcState,
    MlcEvictionOutcome, RemoteReadResult,
};
use crate::meta::LineMeta;
use crate::mlc::{EvictedMlcLine, Mlc, MlcState};
use crate::stats::HierarchyStats;
use crate::walk::SetTagWalk;
use a4_model::{CoreId, DeviceId, LineAddr, WayMask, WorkloadId};
use serde::{Deserialize, Serialize};

/// Where a core access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreAccessLevel {
    /// Hit in the core's private MLC.
    MlcHit,
    /// Hit in the shared LLC (including the DCA fast path).
    LlcHit,
    /// Missed on-chip and was served from memory.
    Memory,
}

/// Where a DMA write landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaWriteDest {
    /// Write-updated an already-cached line in place.
    LlcUpdate,
    /// Write-allocated into a DCA way.
    DcaAllocate,
    /// DCA disabled for the device: the line went to memory.
    Memory,
}

/// Where a DMA (egress) read was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaReadSource {
    /// Served from the LLC.
    Llc,
    /// Forwarded from an MLC, read-allocating an inclusive-way copy.
    Mlc,
    /// Served from memory without allocation.
    Memory,
}

/// The complete modelled hierarchy.
///
/// # Examples
///
/// ```
/// use a4_cache::{CacheHierarchy, CoreAccessLevel, HierarchyConfig};
/// use a4_model::{CoreId, LineAddr, WorkloadId};
///
/// let mut hier = CacheHierarchy::new(HierarchyConfig::small_test());
/// let wl = WorkloadId(0);
/// // First touch goes to memory, the repeat hits the MLC.
/// assert_eq!(hier.core_read(CoreId(0), LineAddr(9), wl), CoreAccessLevel::Memory);
/// assert_eq!(hier.core_read(CoreId(0), LineAddr(9), wl), CoreAccessLevel::MlcHit);
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    mlcs: Vec<Mlc>,
    llc: Llc,
    clos: ClosTable,
    stats: HierarchyStats,
    // Reusable event buffers for the batched DMA paths (allocation-free
    // after warm-up; taken/restored around each run).
    dma_write_events: Vec<(LineAddr, DmaWriteResult)>,
    dma_read_events: Vec<(LineAddr, DmaReadResult)>,
}

impl CacheHierarchy {
    /// Builds an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`HierarchyConfig::validate`].
    pub fn new(config: HierarchyConfig) -> Self {
        config.validate().expect("invalid hierarchy configuration");
        CacheHierarchy {
            config,
            mlcs: (0..config.cores).map(|_| Mlc::new(config.mlc)).collect(),
            llc: Llc::new(config.llc),
            clos: ClosTable::new(config.cores),
            stats: HierarchyStats::new(),
            dma_write_events: Vec::new(),
            dma_read_events: Vec::new(),
        }
    }

    /// The configuration the hierarchy was built with.
    #[inline]
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Shared LLC (read-only).
    #[inline]
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// Mutable LLC access (ablation knobs such as the DDIO way mask).
    #[inline]
    pub fn llc_mut(&mut self) -> &mut Llc {
        &mut self.llc
    }

    /// One core's MLC (read-only).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn mlc(&self, core: CoreId) -> &Mlc {
        &self.mlcs[core.index()]
    }

    /// The CAT state.
    #[inline]
    pub fn clos(&self) -> &ClosTable {
        &self.clos
    }

    /// Mutable CAT state (the control plane A4 programs).
    #[inline]
    pub fn clos_mut(&mut self) -> &mut ClosTable {
        &mut self.clos
    }

    /// Accumulated counters.
    #[inline]
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Core load. `io_hint` marks reads of I/O buffers so lines refetched
    /// after a DMA leak keep their I/O attribution.
    pub fn core_read(
        &mut self,
        core: CoreId,
        addr: LineAddr,
        owner: WorkloadId,
    ) -> CoreAccessLevel {
        self.core_access(core, addr, owner, false, false)
    }

    /// Core store (write-allocates in the MLC, marks the line dirty).
    pub fn core_write(
        &mut self,
        core: CoreId,
        addr: LineAddr,
        owner: WorkloadId,
    ) -> CoreAccessLevel {
        self.core_access(core, addr, owner, true, false)
    }

    /// Core load of an I/O buffer (see [`CacheHierarchy::core_read`]).
    pub fn core_read_io(
        &mut self,
        core: CoreId,
        addr: LineAddr,
        owner: WorkloadId,
    ) -> CoreAccessLevel {
        self.core_access(core, addr, owner, false, true)
    }

    fn core_access(
        &mut self,
        core: CoreId,
        addr: LineAddr,
        owner: WorkloadId,
        write: bool,
        io_hint: bool,
    ) -> CoreAccessLevel {
        // The scalar path is the length-1 run: one implementation, no
        // behaviour forks between scalar and batched accesses.
        let mut run = self.begin_core_run(core, addr, 1, owner, write, io_hint);
        let level = run.next(self);
        run.finish(self);
        level
    }

    /// Opens a batched access run for `core` starting at `base`: the
    /// stats rows, CLOS mask and geometry walkers are resolved once here
    /// instead of once per line. Drive it with [`CoreRun::next`] (one
    /// consecutive line per call, starting at `base`) and flush the
    /// run-local counters with [`CoreRun::finish`]. `len` is the
    /// intended run length — a warming hint only (a length-1 run skips
    /// the next-line warm-ups); `next` may be called more or fewer
    /// times.
    pub fn begin_core_run(
        &self,
        core: CoreId,
        base: LineAddr,
        len: u64,
        owner: WorkloadId,
        write: bool,
        io_hint: bool,
    ) -> CoreRun {
        debug_assert!(core.index() < self.mlcs.len(), "core out of range");
        CoreRun {
            core,
            owner,
            write,
            io_hint,
            clos_mask: self.clos.mask_for_core(core),
            mlc_walk: self.mlcs[core.index()].walk(base),
            llc_walk: self.llc.walk(base),
            remaining_hint: len,
            mlc_hits: 0,
            llc_hits: 0,
            misses: 0,
        }
    }

    /// Batched core loads of `[base, base + len)` (see
    /// [`CacheHierarchy::core_read`] for the per-line semantics).
    pub fn core_read_run(&mut self, core: CoreId, base: LineAddr, len: u64, owner: WorkloadId) {
        let mut run = self.begin_core_run(core, base, len, owner, false, false);
        for _ in 0..len {
            run.next(self);
        }
        run.finish(self);
    }

    /// Batched core stores of `[base, base + len)`.
    pub fn core_write_run(&mut self, core: CoreId, base: LineAddr, len: u64, owner: WorkloadId) {
        let mut run = self.begin_core_run(core, base, len, owner, true, false);
        for _ in 0..len {
            run.next(self);
        }
        run.finish(self);
    }

    /// Batched I/O-buffer loads of `[base, base + len)` (see
    /// [`CacheHierarchy::core_read_io`]).
    pub fn core_read_io_run(&mut self, core: CoreId, base: LineAddr, len: u64, owner: WorkloadId) {
        let mut run = self.begin_core_run(core, base, len, owner, false, true);
        for _ in 0..len {
            run.next(self);
        }
        run.finish(self);
    }

    /// Ingress DMA write of one line by `device` on behalf of consumer
    /// workload `owner`. `dca_enabled` reflects the device's per-port
    /// `perfctrlsts_0` state.
    pub fn dma_write(
        &mut self,
        device: DeviceId,
        addr: LineAddr,
        owner: WorkloadId,
        dca_enabled: bool,
    ) -> DmaWriteDest {
        // The scalar path is the length-1 run: same line function, same
        // event handling, one flush.
        if !dca_enabled {
            self.dma_write_bypass_run(device, addr, 1, owner);
            return DmaWriteDest::Memory;
        }
        let result = self.llc.dma_write(addr, owner, device);
        let mut acc = DmaWriteAcc::default();
        let dest = self.apply_dma_write_event(addr, result, &mut acc);
        self.flush_dma_write_stats(device, owner, 1, acc);
        dest
    }

    /// Ingress DMA write of the contiguous line run `[base, base + len)`
    /// by `device` on behalf of `owner` — the batched form of
    /// [`CacheHierarchy::dma_write`], bit-identical to `len` scalar calls
    /// in line order.
    ///
    /// The `dca_enabled` branch is hoisted out of the loop, the device
    /// and owner stats rows are resolved and flushed once per run, and
    /// the LLC side runs [`Llc::dma_write_run`] over the stripe layout
    /// directly (chunked at the set count so deferred directory work
    /// never aliases a later line of the same chunk).
    pub fn dma_write_run(
        &mut self,
        device: DeviceId,
        base: LineAddr,
        len: u64,
        owner: WorkloadId,
        dca_enabled: bool,
    ) {
        if len == 0 {
            return;
        }
        if !dca_enabled {
            self.dma_write_bypass_run(device, base, len, owner);
            return;
        }
        let mut acc = DmaWriteAcc::default();
        let mut events = std::mem::take(&mut self.dma_write_events);
        let sets = self.llc.geometry().sets() as u64;
        let mut off = 0;
        while off < len {
            let chunk = (len - off).min(sets);
            events.clear();
            self.llc
                .dma_write_run(base.offset(off), chunk, owner, device, &mut events);
            for (i, &(addr, result)) in events.iter().enumerate() {
                // Warm the next event's back-invalidation target (the
                // first presence core's MLC set): it is the one
                // scattered load of the processing loop.
                if let Some(&(naddr, nresult)) = events.get(i + 1) {
                    let np = match nresult {
                        DmaWriteResult::Updated {
                            invalidate_presence,
                        }
                        | DmaWriteResult::Allocated {
                            invalidate_presence,
                            ..
                        } => invalidate_presence,
                    };
                    if np != 0 {
                        let c = np.trailing_zeros() as usize;
                        if let Some(mlc) = self.mlcs.get(c) {
                            mlc.prefetch_addr(naddr);
                        }
                    }
                }
                self.apply_dma_write_event(addr, result, &mut acc);
            }
            off += chunk;
        }
        events.clear();
        self.dma_write_events = events;
        self.flush_dma_write_stats(device, owner, len, acc);
    }

    /// The DCA-disabled (memory-bypass) write path for a run: stale
    /// cached copies are snooped out per line, data lands in memory, and
    /// the fixed stats rows are flushed once.
    fn dma_write_bypass_run(
        &mut self,
        device: DeviceId,
        base: LineAddr,
        len: u64,
        owner: WorkloadId,
    ) {
        for l in 0..len {
            let addr = base.offset(l);
            let presence = self.llc.snoop_invalidate(addr);
            self.back_invalidate(addr, presence, false);
        }
        let d = self.stats.device_mut(device);
        d.dma_write_lines += len;
        d.dma_to_memory_lines += len;
        self.stats.bump(owner, |c| c.mem_write_lines += len);
    }

    /// Handles one line's DCA write outcome (back-invalidations and
    /// eviction fallout), accumulating the fixed-row stat bumps in `acc`.
    #[inline]
    fn apply_dma_write_event(
        &mut self,
        addr: LineAddr,
        result: DmaWriteResult,
        acc: &mut DmaWriteAcc,
    ) -> DmaWriteDest {
        match result {
            DmaWriteResult::Updated {
                invalidate_presence,
            } => {
                self.back_invalidate(addr, invalidate_presence, false);
                acc.dca_updates += 1;
                DmaWriteDest::LlcUpdate
            }
            DmaWriteResult::Allocated {
                invalidate_presence,
                evicted,
            } => {
                self.back_invalidate(addr, invalidate_presence, false);
                acc.dca_allocs += 1;
                if let Some(ev) = evicted {
                    self.handle_llc_eviction(ev);
                }
                DmaWriteDest::DcaAllocate
            }
        }
    }

    /// Flushes a DCA write run's fixed stats rows (device + owner) once.
    fn flush_dma_write_stats(
        &mut self,
        device: DeviceId,
        owner: WorkloadId,
        lines: u64,
        acc: DmaWriteAcc,
    ) {
        let d = self.stats.device_mut(device);
        d.dma_write_lines += lines;
        d.dca_updates += acc.dca_updates;
        d.dca_allocs += acc.dca_allocs;
        self.stats.bump(owner, |c| {
            c.dca_updates += acc.dca_updates;
            c.dca_allocs += acc.dca_allocs;
        });
    }

    /// Egress DMA read of one line by `device`.
    pub fn dma_read(&mut self, device: DeviceId, addr: LineAddr) -> DmaReadSource {
        self.stats.device_mut(device).dma_read_lines += 1;
        match self.llc.dma_read(addr) {
            DmaReadResult::LlcHit => DmaReadSource::Llc,
            DmaReadResult::MlcOnly { presence } => {
                self.egress_allocate_from_mlc(addr, presence);
                DmaReadSource::Mlc
            }
            DmaReadResult::Miss => {
                self.stats.bump(WorkloadId(0), |c| c.mem_read_lines += 1);
                DmaReadSource::Memory
            }
        }
    }

    /// Egress DMA read of the contiguous line run `[base, base + len)` —
    /// the batched form of [`CacheHierarchy::dma_read`], bit-identical to
    /// `len` scalar calls in line order. The device stats row and the
    /// memory-read bumps are flushed once per run.
    pub fn dma_read_run(&mut self, device: DeviceId, base: LineAddr, len: u64) {
        if len == 0 {
            return;
        }
        let mut mem_misses = 0u64;
        let mut events = std::mem::take(&mut self.dma_read_events);
        let sets = self.llc.geometry().sets() as u64;
        let mut off = 0;
        while off < len {
            let chunk = (len - off).min(sets);
            events.clear();
            self.llc.dma_read_run(base.offset(off), chunk, &mut events);
            for &(addr, result) in &events {
                match result {
                    DmaReadResult::LlcHit => {}
                    DmaReadResult::MlcOnly { presence } => {
                        self.egress_allocate_from_mlc(addr, presence);
                    }
                    DmaReadResult::Miss => mem_misses += 1,
                }
            }
            off += chunk;
        }
        events.clear();
        self.dma_read_events = events;
        self.stats.device_mut(device).dma_read_lines += len;
        if mem_misses != 0 {
            self.stats
                .bump(WorkloadId(0), |c| c.mem_read_lines += mem_misses);
        }
    }

    /// Copies an MLC-only line into an inclusive way so the device can
    /// read it (the egress `MlcOnly` path).
    fn egress_allocate_from_mlc(&mut self, addr: LineAddr, presence: u32) {
        // Walk the presence mask's set bits directly (lowest core first,
        // matching the historical 0..cores scan) for the line's metadata.
        let mut m = presence;
        let mut meta = None;
        while m != 0 {
            let c = m.trailing_zeros() as usize;
            m &= m - 1;
            if let Some(found) = self.mlcs[c].meta(addr) {
                meta = Some(found);
                break;
            }
        }
        // An ext-dir entry with no live MLC copy cannot occur (presence
        // is maintained on every eviction/invalidation), so the fallback
        // is defensive; it bills the explicit unattributed sentinel
        // rather than silently charging workload 0.
        let meta = meta.unwrap_or(LineMeta::cpu(WorkloadId::UNATTRIBUTED));
        if let Some(ev) = self.llc.egress_allocate(addr, meta, presence) {
            self.handle_llc_eviction(ev);
        }
    }

    /// Read of one line homed in *this* hierarchy by a core on another
    /// socket. The line is served from the home LLC (or a home-socket MLC
    /// via the directory) without granting the remote requester any
    /// residency here — no MLC fill, no migration, no directory entry —
    /// so remote consumers re-cross the UPI link on every access, which
    /// is exactly the NUMA penalty the multi-socket model exists to
    /// expose. Consumption of I/O lines is recorded as usual, keeping
    /// DMA-leak accounting correct for cross-socket colocations.
    ///
    /// Counters: the access is attributed to `owner` (LLC hit or
    /// miss + memory read); DCA consumption is attributed to the line's
    /// owner, mirroring the local path.
    pub fn remote_read(&mut self, addr: LineAddr, owner: WorkloadId) -> CoreAccessLevel {
        let mut run = self.begin_remote_run(addr, owner);
        let level = run.next(self);
        run.finish(self);
        level
    }

    /// Store of one line homed in *this* hierarchy by a core on another
    /// socket. Remote stores take ownership of the line: stale home
    /// copies are snooped out (LLC, directory and MLCs) and the data
    /// lands in memory — remote writers do not allocate here.
    pub fn remote_write(&mut self, addr: LineAddr, owner: WorkloadId) -> CoreAccessLevel {
        let presence = self.llc.snoop_invalidate(addr);
        self.back_invalidate(addr, presence, false);
        self.stats.bump(owner, |c| c.mem_write_lines += 1);
        CoreAccessLevel::Memory
    }

    /// Opens a batched remote-read run over consecutive lines starting at
    /// `base` — the cross-socket counterpart of
    /// [`CacheHierarchy::begin_core_run`], walking this hierarchy's LLC
    /// set/tag stripes incrementally and flushing the accessor-row stat
    /// bumps once per run.
    pub fn begin_remote_run(&self, base: LineAddr, owner: WorkloadId) -> RemoteRun {
        RemoteRun {
            owner,
            llc_walk: self.llc.walk(base),
            llc_hits: 0,
            misses: 0,
        }
    }

    fn handle_mlc_eviction(&mut self, core: CoreId, victim: EvictedMlcLine, mask: WayMask) {
        match self
            .llc
            .mlc_eviction(core, victim.addr, victim.dirty, victim.meta, mask)
        {
            MlcEvictionOutcome::StillShared | MlcEvictionOutcome::MergedIntoLlc => {}
            MlcEvictionOutcome::Inserted { bloat, evicted } => {
                if bloat {
                    self.stats.bump(victim.meta.owner, |c| c.dma_bloats += 1);
                }
                if let Some(ev) = evicted {
                    self.handle_llc_eviction(ev);
                }
            }
        }
    }

    fn handle_llc_eviction(&mut self, ev: EvictedLlcLine) {
        if ev.was_in_mlc {
            // Non-inclusive hierarchy: the MLC copies survive the LLC data
            // eviction; their tracking demotes to the extended directory.
            if let Some(forced) = self.llc.demote_to_ext_dir(ev.addr, ev.presence) {
                self.back_invalidate(forced.addr, forced.presence, true);
            }
        }
        // One bump covers all of this eviction's owner-side counters (the
        // total/per-workload rows are walked once, not once per field).
        let leak = ev.is_dma_leak();
        self.stats.bump(ev.meta.owner, |c| {
            c.mem_write_lines += u64::from(ev.dirty);
            c.dma_leaks += u64::from(leak);
            c.evictions_suffered += 1;
        });
        if leak {
            if let Some(dev) = ev.meta.device {
                self.stats.device_mut(dev).dma_leaks += 1;
            }
        }
    }

    /// Invalidates MLC copies named by `presence`. When `writeback` is
    /// true (directory evictions, LLC evictions of inclusive lines) dirty
    /// copies are written back to memory; DMA snoops overwrite the data so
    /// they skip the write-back.
    fn back_invalidate(&mut self, addr: LineAddr, presence: u32, writeback: bool) {
        let mut m = presence & ((1u64 << self.config.cores) - 1) as u32;
        while m != 0 {
            let c = m.trailing_zeros() as usize;
            m &= m - 1;
            if let Some((dirty, meta)) = self.mlcs[c].invalidate(addr) {
                self.stats.bump(meta.owner, |s| s.back_invalidations += 1);
                if dirty && writeback {
                    self.stats.bump(meta.owner, |s| s.mem_write_lines += 1);
                }
            }
        }
    }

    /// Snapshots the complete mutable hierarchy state for a checkpoint.
    ///
    /// The reusable DMA event buffers (`dma_write_events`,
    /// `dma_read_events`) are run-local scratch — always empty between
    /// runs — so they are not captured; `config` is structural.
    pub fn save_state(&self) -> CacheHierarchyState {
        let _scratch_or_structural = (&self.config, &self.dma_write_events, &self.dma_read_events);
        CacheHierarchyState {
            mlcs: self.mlcs.iter().map(Mlc::save_state).collect(),
            llc: self.llc.save_state(),
            clos: self.clos.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Restores a [`CacheHierarchy::save_state`] snapshot.
    ///
    /// Returns `false` (leaving the hierarchy in its pre-call state) if
    /// the snapshot's shape does not match this hierarchy's geometry. The
    /// shape of every nested component is validated before any component
    /// is mutated.
    pub fn restore_state(&mut self, st: &CacheHierarchyState) -> bool {
        let _scratch_or_structural = (&self.config, &self.dma_write_events, &self.dma_read_events);
        if st.mlcs.len() != self.mlcs.len() {
            return false;
        }
        // Dry-run the nested restores against clones so a mid-restore
        // shape mismatch cannot leave this hierarchy half-updated.
        let mut mlcs = self.mlcs.clone();
        let mut llc = self.llc.clone();
        if mlcs
            .iter_mut()
            .zip(&st.mlcs)
            .any(|(mlc, s)| !mlc.restore_state(s))
            || !llc.restore_state(&st.llc)
        {
            return false;
        }
        self.mlcs = mlcs;
        self.llc = llc;
        self.clos = st.clos.clone();
        self.stats = st.stats.clone();
        self.dma_write_events.clear();
        self.dma_read_events.clear();
        true
    }
}

/// Serializable snapshot of one socket's complete mutable
/// [`CacheHierarchy`] state (see [`CacheHierarchy::save_state`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheHierarchyState {
    /// Per-core MLC snapshots.
    pub mlcs: Vec<MlcState>,
    /// Shared LLC snapshot (sets, ext directory, DCA mask, RNG).
    pub llc: LlcState,
    /// CAT table (CLOS masks and core assignments).
    pub clos: ClosTable,
    /// Accumulated PCM-style counters.
    pub stats: HierarchyStats,
}

/// Run-local accumulator for the fixed-row stat bumps of a DCA write run.
#[derive(Debug, Default, Clone, Copy)]
struct DmaWriteAcc {
    dca_updates: u64,
    dca_allocs: u64,
}

/// An open batched remote-read run over consecutive lines of one home
/// hierarchy — see [`CacheHierarchy::begin_remote_run`]. Like
/// [`CoreRun`], the cursor does not borrow the hierarchy, so callers can
/// interleave per-line [`RemoteRun::next`] calls with their own cycle
/// and UPI accounting.
#[must_use = "call finish() to flush the run's stat counters"]
#[derive(Debug)]
pub struct RemoteRun {
    owner: WorkloadId,
    llc_walk: SetTagWalk,
    llc_hits: u64,
    misses: u64,
}

impl RemoteRun {
    /// Probes the run's next consecutive line on `hier` (the hierarchy
    /// this run was opened on) and returns where it was served from.
    /// Remote accesses never hit an MLC of the requesting core, so the
    /// result is [`CoreAccessLevel::LlcHit`] (served on the home chip,
    /// including directory-forwarded MLC copies) or
    /// [`CoreAccessLevel::Memory`].
    #[inline]
    pub fn next(&mut self, hier: &mut CacheHierarchy) -> CoreAccessLevel {
        let (set, tag) = (self.llc_walk.set(), self.llc_walk.tag());
        self.llc_walk.advance();
        match hier.llc.remote_read_at(set, tag) {
            RemoteReadResult::Hit {
                from_dca_way,
                io_first_consume,
                owner,
            } => {
                self.llc_hits += 1;
                if io_first_consume && from_dca_way {
                    hier.stats.bump(owner, |c| c.dca_consumed += 1);
                }
                CoreAccessLevel::LlcHit
            }
            RemoteReadResult::MlcOnly => {
                self.llc_hits += 1;
                CoreAccessLevel::LlcHit
            }
            RemoteReadResult::Miss => {
                self.misses += 1;
                CoreAccessLevel::Memory
            }
        }
    }

    /// Flushes the run's accumulated accessor-row counters.
    pub fn finish(self, hier: &mut CacheHierarchy) {
        if self.llc_hits | self.misses == 0 {
            return;
        }
        let (llc_hits, misses) = (self.llc_hits, self.misses);
        hier.stats.bump(self.owner, |c| {
            c.llc_hits += llc_hits;
            c.llc_misses += misses;
            c.mem_read_lines += misses;
        });
    }
}

/// An open batched access run over consecutive lines for one
/// `(core, owner, kind)` triple — see
/// [`CacheHierarchy::begin_core_run`].
///
/// The cursor does not borrow the hierarchy, so callers can interleave
/// per-line [`CoreRun::next`] calls with their own bookkeeping (cycle
/// budgets, latency folding). Every `next` performs exactly the per-line
/// work of the scalar path, in the same order — eviction and RNG
/// decisions are bit-identical — while the per-access owner-row stat
/// bumps accumulate locally and flush once in [`CoreRun::finish`].
#[must_use = "call finish() to flush the run's stat counters"]
#[derive(Debug)]
pub struct CoreRun {
    core: CoreId,
    owner: WorkloadId,
    write: bool,
    io_hint: bool,
    clos_mask: WayMask,
    mlc_walk: SetTagWalk,
    llc_walk: SetTagWalk,
    // Lines the caller intends to access after this one (warming hint).
    remaining_hint: u64,
    mlc_hits: u64,
    llc_hits: u64,
    misses: u64,
}

impl CoreRun {
    /// Accesses the run's next consecutive line on `hier` (which must be
    /// the hierarchy this run was opened on) and returns where it was
    /// served from.
    #[inline]
    pub fn next(&mut self, hier: &mut CacheHierarchy) -> CoreAccessLevel {
        let core = self.core.index();
        let (mset, mtag) = (self.mlc_walk.set(), self.mlc_walk.tag());
        let (lset, ltag) = (self.llc_walk.set(), self.llc_walk.tag());
        self.mlc_walk.advance();
        self.llc_walk.advance();
        // Warm the next line's set blocks: the discarded early loads
        // overlap their L2/L3 latency with this line's (branchy) chain.
        // Skipped when the run ends here (scalar accesses, run tails) —
        // warming sets a single access never visits is pure overhead.
        self.remaining_hint = self.remaining_hint.saturating_sub(1);
        if self.remaining_hint > 0 {
            hier.mlcs[core].prefetch_set(self.mlc_walk.set());
            hier.llc.prefetch_set(self.llc_walk.set());
        }

        if hier.mlcs[core].lookup_at(mset, mtag, self.write) {
            self.mlc_hits += 1;
            return CoreAccessLevel::MlcHit;
        }

        // This miss will fill the MLC; if that fill must evict, the
        // victim's own LLC set is the one scattered load of the eviction
        // chain — warm it now so it overlaps the LLC work below.
        if let Some(victim) = hier.mlcs[core].peek_victim_addr(mset) {
            hier.llc.prefetch_addr(victim);
        }

        match hier.llc.core_read_at(self.core, lset, ltag) {
            LlcReadResult::Hit {
                migrated,
                from_dca_way,
                io_first_consume,
                evicted,
                meta,
            } => {
                self.llc_hits += 1;
                let dca_consumed = io_first_consume && from_dca_way;
                if migrated || dca_consumed {
                    hier.stats.bump(meta.owner, |c| {
                        c.migrations += u64::from(migrated);
                        c.dca_consumed += u64::from(dca_consumed);
                    });
                }
                if let Some(ev) = evicted {
                    hier.handle_llc_eviction(ev);
                }
                let mut mlc_meta = meta;
                mlc_meta.consumed = true;
                // The MLC lookup above just missed and nothing since
                // could have filled this line into this core's MLC, so
                // the already-present probe can be skipped.
                if let Some(victim) =
                    hier.mlcs[core].fill_after_miss_at(mset, mtag, mlc_meta, self.write)
                {
                    hier.handle_mlc_eviction(self.core, victim, self.clos_mask);
                }
                CoreAccessLevel::LlcHit
            }
            LlcReadResult::Miss => {
                self.misses += 1;
                // Track the new MLC-resident line in the extended directory.
                if let Some(forced) = hier.llc.register_mlc_fill_at(self.core, lset, ltag) {
                    hier.back_invalidate(forced.addr, forced.presence, true);
                }
                let meta = LineMeta {
                    owner: self.owner,
                    io: self.io_hint,
                    consumed: true,
                    device: None,
                };
                if let Some(victim) =
                    hier.mlcs[core].fill_after_miss_at(mset, mtag, meta, self.write)
                {
                    hier.handle_mlc_eviction(self.core, victim, self.clos_mask);
                }
                CoreAccessLevel::Memory
            }
        }
    }

    /// Flushes the run's accumulated owner-row counters into the
    /// hierarchy's stats (one row walk per run instead of one per line).
    pub fn finish(self, hier: &mut CacheHierarchy) {
        if self.mlc_hits | self.llc_hits | self.misses == 0 {
            return;
        }
        let (mlc_hits, llc_hits, misses) = (self.mlc_hits, self.llc_hits, self.misses);
        hier.stats.bump(self.owner, |c| {
            c.mlc_hits += mlc_hits;
            c.llc_hits += llc_hits;
            c.llc_misses += misses;
            c.mem_read_lines += misses;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::WayMask;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const DEV: DeviceId = DeviceId(0);

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::small_test())
    }

    fn wl(n: u16) -> WorkloadId {
        WorkloadId(n)
    }

    #[test]
    fn miss_fill_hit_sequence() {
        let mut h = hier();
        assert_eq!(h.core_read(C0, LineAddr(1), wl(0)), CoreAccessLevel::Memory);
        assert_eq!(h.core_read(C0, LineAddr(1), wl(0)), CoreAccessLevel::MlcHit);
        let c = h.stats().workload(wl(0));
        assert_eq!(c.mlc_hits, 1);
        assert_eq!(c.llc_misses, 1);
        assert_eq!(c.mem_read_lines, 1);
        // Non-inclusive: the miss filled the MLC, not the LLC.
        assert!(h.llc().probe(LineAddr(1)).is_none());
        assert!(h.llc().ext_dir_tracks(LineAddr(1)));
    }

    #[test]
    fn dca_fast_path_counts_consumption() {
        let mut h = hier();
        assert_eq!(
            h.dma_write(DEV, LineAddr(2), wl(1), true),
            DmaWriteDest::DcaAllocate
        );
        assert_eq!(
            h.core_read_io(C0, LineAddr(2), wl(1)),
            CoreAccessLevel::LlcHit
        );
        let c = h.stats().workload(wl(1));
        assert_eq!(c.dca_allocs, 1);
        assert_eq!(c.dca_consumed, 1);
        assert_eq!(c.migrations, 1, "consumption migrated the line (C1)");
        // Line is now inclusive and in the MLC.
        assert!(h.mlc(C0).contains(LineAddr(2)));
        h.llc().assert_inclusive_invariant();
    }

    #[test]
    fn dca_disabled_goes_to_memory() {
        let mut h = hier();
        assert_eq!(
            h.dma_write(DEV, LineAddr(3), wl(1), false),
            DmaWriteDest::Memory
        );
        assert!(h.llc().probe(LineAddr(3)).is_none());
        assert_eq!(h.stats().device(DEV).dma_to_memory_lines, 1);
        assert_eq!(h.stats().total.mem_write_lines, 1);
        // The consumer now pays a memory read.
        assert_eq!(
            h.core_read_io(C0, LineAddr(3), wl(1)),
            CoreAccessLevel::Memory
        );
    }

    #[test]
    fn dma_write_snoops_stale_mlc_copy() {
        let mut h = hier();
        // Core owns the line in its MLC.
        h.core_read(C0, LineAddr(4), wl(0));
        assert!(h.mlc(C0).contains(LineAddr(4)));
        // DMA write invalidates the stale copy and allocates in DCA ways.
        assert_eq!(
            h.dma_write(DEV, LineAddr(4), wl(0), true),
            DmaWriteDest::DcaAllocate
        );
        assert!(!h.mlc(C0).contains(LineAddr(4)));
        assert!(!h.llc().ext_dir_tracks(LineAddr(4)));
        assert_eq!(h.stats().workload(wl(0)).back_invalidations, 1);
    }

    #[test]
    fn dma_leak_counted_when_ring_overflows() {
        let mut h = hier();
        // 3 lines in the same LLC set (16 sets): only 2 DCA ways.
        for i in 0..3u64 {
            h.dma_write(DEV, LineAddr(i * 16), wl(1), true);
        }
        assert_eq!(h.stats().workload(wl(1)).dma_leaks, 1);
        assert_eq!(h.stats().device(DEV).dma_leaks, 1);
        // The leaked line's write-back hit memory.
        assert_eq!(h.stats().total.mem_write_lines, 1);
    }

    #[test]
    fn consumed_line_evicted_from_mlc_is_bloat() {
        let mut h = hier();
        h.clos_mut()
            .set_mask(
                a4_model::ClosId(1),
                WayMask::from_paper_range(5, 6).unwrap(),
            )
            .unwrap();
        h.clos_mut().assign_core(C0, a4_model::ClosId(1)).unwrap();
        // Consume an I/O line, displace its LLC-inclusive copy with two
        // further migrations (inclusive ways churn under load), then
        // thrash the MLC set until the consumed line spills back.
        for i in 0..3u64 {
            h.dma_write(DEV, LineAddr(i * 16), wl(1), true);
            h.core_read_io(C0, LineAddr(i * 16), wl(1));
        }
        // One of the two earlier lines lost its LLC copy to the third
        // migration (random victim) and is tracked by the extended dir.
        let displaced = [LineAddr(0), LineAddr(16)]
            .into_iter()
            .find(|&l| h.llc().probe(l).is_none())
            .expect("one inclusive-way line was displaced");
        assert!(
            h.llc().ext_dir_tracks(displaced),
            "tracking demoted, MLC copy alive"
        );
        // MLC small_test geometry: 8 sets, 4 ways; lines 0/16/32 sit in MLC
        // set 0. Four fresh set-0 lines evict them.
        for i in 1..=4u64 {
            h.core_read(C0, LineAddr(i * 8 + 256), wl(2));
        }
        let c = h.stats().workload(wl(1));
        // All three consumed I/O lines re-enter the LLC's standard ways:
        // the displaced one via the extended-directory path, the others by
        // relocation out of the inclusive ways.
        assert_eq!(
            c.dma_bloats, 3,
            "every consumed I/O line re-entered the LLC"
        );
        // Bloat lands in the core's CLOS ways: the two [5:6] slots of the
        // set hold two of the three lines (the third was evicted again).
        let clos = WayMask::from_paper_range(5, 6).unwrap();
        let resident = [LineAddr(0), LineAddr(16), LineAddr(32)]
            .into_iter()
            .filter_map(|l| h.llc().probe(l))
            .inspect(|p| assert!(clos.contains_way(p.way), "bloat confined to CLOS ways"))
            .count();
        assert_eq!(resident, 2);
    }

    #[test]
    fn egress_read_from_mlc_allocates_inclusive_copy() {
        let mut h = hier();
        h.core_write(C0, LineAddr(7), wl(0));
        assert_eq!(h.dma_read(DEV, LineAddr(7)), DmaReadSource::Mlc);
        let p = h.llc().probe(LineAddr(7)).unwrap();
        assert!(WayMask::INCLUSIVE.contains_way(p.way));
        assert!(p.in_mlc);
        h.llc().assert_inclusive_invariant();
        // Second read is served straight from the LLC.
        assert_eq!(h.dma_read(DEV, LineAddr(7)), DmaReadSource::Llc);
        // Uncached egress reads come from memory without allocation.
        assert_eq!(h.dma_read(DEV, LineAddr(1000)), DmaReadSource::Memory);
    }

    #[test]
    fn inclusive_eviction_demotes_mlc_tracking() {
        let mut h = hier();
        // Two inclusive lines in set 0 held by core 1.
        h.dma_write(DEV, LineAddr(0), wl(1), true);
        h.core_read_io(C1, LineAddr(0), wl(1));
        h.dma_write(DEV, LineAddr(16), wl(1), true);
        h.core_read_io(C1, LineAddr(16), wl(1));
        assert!(h.mlc(C1).contains(LineAddr(0)));
        // A third migration evicts the LRU inclusive line's data copy; in
        // the non-inclusive hierarchy the MLC copy survives, tracked by the
        // extended directory.
        h.dma_write(DEV, LineAddr(32), wl(1), true);
        h.core_read_io(C1, LineAddr(32), wl(1));
        // The third migration displaced one of the first two lines
        // (random victim): its MLC copy survives and the extended
        // directory picked up the tracking.
        let displaced = [LineAddr(0), LineAddr(16)]
            .into_iter()
            .find(|&l| h.llc().probe(l).is_none())
            .expect("an inclusive line was displaced");
        assert!(
            h.mlc(C1).contains(displaced),
            "MLC copy survives the LLC eviction"
        );
        assert!(
            h.llc().ext_dir_tracks(displaced),
            "tracking demoted to the extended dir"
        );
        h.llc().assert_inclusive_invariant();
    }

    #[test]
    fn writeback_attribution_on_dirty_eviction() {
        let mut h = hier();
        h.clos_mut()
            .set_mask(
                a4_model::ClosId(1),
                WayMask::from_paper_range(2, 2).unwrap(),
            )
            .unwrap();
        h.clos_mut().assign_core(C0, a4_model::ClosId(1)).unwrap();
        // Dirty a line, spill it to the LLC (1-way mask), then displace it.
        h.core_write(C0, LineAddr(0), wl(3));
        for i in 1..=4u64 {
            h.core_read(C0, LineAddr(i * 8), wl(3)); // thrash MLC set 0
        }
        // Line 0 now dirty in LLC way 2; displace with more spills to way 2.
        let before = h.stats().workload(wl(3)).mem_write_lines;
        for i in 5..=40u64 {
            h.core_read(C0, LineAddr(i * 16), wl(3)); // same LLC set 0
        }
        let after = h.stats().workload(wl(3)).mem_write_lines;
        assert!(after > before, "dirty victim write-backs must be counted");
    }

    #[test]
    fn second_dma_write_is_update_in_place() {
        let mut h = hier();
        h.dma_write(DEV, LineAddr(6), wl(1), true);
        assert_eq!(
            h.dma_write(DEV, LineAddr(6), wl(1), true),
            DmaWriteDest::LlcUpdate
        );
        assert_eq!(h.stats().device(DEV).dca_updates, 1);
        assert_eq!(h.stats().device(DEV).dca_allocs, 1);
    }

    #[test]
    fn stats_delta_tracks_interval() {
        let mut h = hier();
        h.core_read(C0, LineAddr(1), wl(0));
        let snap = h.stats().clone();
        h.core_read(C0, LineAddr(1), wl(0));
        let d = h.stats().delta_since(&snap);
        assert_eq!(d.workload(wl(0)).mlc_hits, 1);
        assert_eq!(d.workload(wl(0)).llc_misses, 0);
    }
}
