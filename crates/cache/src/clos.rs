//! Intel Cache Allocation Technology (CAT) class-of-service table.
//!
//! CAT attaches a *capacity bitmask* to each class of service (CLOS) and a
//! CLOS to each core. The mask constrains which LLC ways fills on behalf
//! of that core may victimize; it does **not** restrict lookups — a core
//! hits lines in any way. Skylake-SP exposes 16 CLOSes and requires masks
//! to be contiguous (enforced by [`WayMask`]'s constructors).

use a4_model::{A4Error, ClosId, CoreId, Result, WayMask};
use serde::{Deserialize, Serialize};

/// Number of classes of service on Skylake-SP.
pub(crate) const NUM_CLOS: usize = 16;

/// The CAT state: per-CLOS way masks plus the core→CLOS association.
///
/// # Examples
///
/// ```
/// use a4_cache::ClosTable;
/// use a4_model::{ClosId, CoreId, WayMask};
///
/// let mut cat = ClosTable::new(4);
/// cat.set_mask(ClosId(1), WayMask::from_paper_range(5, 6)?)?;
/// cat.assign_core(CoreId(2), ClosId(1))?;
/// assert_eq!(cat.mask_for_core(CoreId(2)), WayMask::from_paper_range(5, 6)?);
/// // Unassigned cores use CLOS 0, which defaults to all ways.
/// assert_eq!(cat.mask_for_core(CoreId(0)), WayMask::ALL);
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClosTable {
    masks: [WayMask; NUM_CLOS],
    core_clos: Vec<ClosId>,
}

impl ClosTable {
    /// Creates the power-on state: every CLOS maps to all ways and every
    /// core sits in CLOS 0.
    pub fn new(cores: usize) -> Self {
        ClosTable {
            masks: [WayMask::ALL; NUM_CLOS],
            core_clos: vec![ClosId::DEFAULT; cores],
        }
    }

    /// Number of cores the table covers.
    #[inline]
    pub fn cores(&self) -> usize {
        self.core_clos.len()
    }

    /// Programs the capacity bitmask of a CLOS.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidClos`] for CLOS ids ≥ 16 and
    /// [`A4Error::EmptyMask`] for an empty mask. (Contiguity is enforced
    /// when the [`WayMask`] is constructed.)
    pub fn set_mask(&mut self, clos: ClosId, mask: WayMask) -> Result<()> {
        if clos.index() >= NUM_CLOS {
            return Err(A4Error::InvalidClos {
                clos: clos.0,
                max: NUM_CLOS as u8,
            });
        }
        if mask.is_empty() {
            return Err(A4Error::EmptyMask);
        }
        self.masks[clos.index()] = mask;
        Ok(())
    }

    /// Reads the capacity bitmask of a CLOS.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidClos`] for CLOS ids ≥ 16.
    pub fn mask(&self, clos: ClosId) -> Result<WayMask> {
        if clos.index() >= NUM_CLOS {
            return Err(A4Error::InvalidClos {
                clos: clos.0,
                max: NUM_CLOS as u8,
            });
        }
        Ok(self.masks[clos.index()])
    }

    /// Associates a core with a CLOS.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidCore`] or [`A4Error::InvalidClos`] for
    /// out-of-range ids.
    pub fn assign_core(&mut self, core: CoreId, clos: ClosId) -> Result<()> {
        if core.index() >= self.core_clos.len() {
            return Err(A4Error::InvalidCore {
                core: core.0,
                max: self.core_clos.len() as u8,
            });
        }
        if clos.index() >= NUM_CLOS {
            return Err(A4Error::InvalidClos {
                clos: clos.0,
                max: NUM_CLOS as u8,
            });
        }
        self.core_clos[core.index()] = clos;
        Ok(())
    }

    /// The CLOS a core currently runs in (CLOS 0 for out-of-range cores,
    /// mirroring hardware's default behaviour).
    pub fn clos_of(&self, core: CoreId) -> ClosId {
        self.core_clos
            .get(core.index())
            .copied()
            .unwrap_or(ClosId::DEFAULT)
    }

    /// The effective allocation mask of a core.
    pub fn mask_for_core(&self, core: CoreId) -> WayMask {
        self.masks[self.clos_of(core).index()]
    }

    /// Resets every CLOS to all ways and every core to CLOS 0 (the
    /// *Default* baseline model of the paper's §6).
    pub fn reset(&mut self) {
        self.masks = [WayMask::ALL; NUM_CLOS];
        self.core_clos.iter_mut().for_each(|c| *c = ClosId::DEFAULT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_on_state_is_permissive() {
        let cat = ClosTable::new(8);
        assert_eq!(cat.cores(), 8);
        for c in 0..8 {
            assert_eq!(cat.mask_for_core(CoreId(c)), WayMask::ALL);
        }
    }

    #[test]
    fn set_and_assign() {
        let mut cat = ClosTable::new(4);
        let mask = WayMask::from_paper_range(2, 3).unwrap();
        cat.set_mask(ClosId(3), mask).unwrap();
        cat.assign_core(CoreId(1), ClosId(3)).unwrap();
        assert_eq!(cat.mask_for_core(CoreId(1)), mask);
        assert_eq!(cat.mask_for_core(CoreId(0)), WayMask::ALL);
        assert_eq!(cat.clos_of(CoreId(1)), ClosId(3));
        assert_eq!(cat.mask(ClosId(3)).unwrap(), mask);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut cat = ClosTable::new(2);
        assert!(cat.set_mask(ClosId(16), WayMask::ALL).is_err());
        assert!(cat.assign_core(CoreId(2), ClosId(0)).is_err());
        assert!(cat.assign_core(CoreId(0), ClosId(16)).is_err());
        assert!(cat.mask(ClosId(16)).is_err());
        assert!(cat.set_mask(ClosId(0), WayMask::EMPTY).is_err());
    }

    #[test]
    fn unknown_core_defaults_to_clos0() {
        let cat = ClosTable::new(2);
        assert_eq!(cat.clos_of(CoreId(99)), ClosId::DEFAULT);
    }

    #[test]
    fn reset_restores_default_model() {
        let mut cat = ClosTable::new(2);
        cat.set_mask(ClosId(1), WayMask::DCA).unwrap();
        cat.assign_core(CoreId(0), ClosId(1)).unwrap();
        cat.reset();
        assert_eq!(cat.mask_for_core(CoreId(0)), WayMask::ALL);
        assert_eq!(cat.clos_of(CoreId(0)), ClosId::DEFAULT);
    }
}
