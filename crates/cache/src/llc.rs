//! The non-inclusive last-level cache with its inclusive directory.
//!
//! Structure (paper Fig. 1, after Yan et al. [65]):
//!
//! * 11 **data ways** per set, coupled 1:1 with 11 *traditional directory*
//!   ways that track LLC-resident lines;
//! * 12 **extended directory** ways per set that track MLC-resident lines;
//! * **two ways are shared** between the groups. A line resident in both
//!   the LLC and an MLC needs a directory entry in both groups at once,
//!   which is only possible in the shared ways — therefore such
//!   *LLC-inclusive* lines can only occupy data ways 9–10, the **inclusive
//!   ways**. LLC-exclusive lines may occupy any of the 11 ways.
//!
//! This module models the shared ways implicitly: a [`Llc`] data line in
//! ways 9–10 may carry `in_mlc` state with a core-presence bitmap, and the
//! explicit extended-directory array holds the remaining
//! [`EXT_DIR_EXCLUSIVE_WAYS`] = 10 entries per set for MLC-only lines.
//!
//! The consequence the paper builds on — observation **O1** — falls out of
//! the structure: when a core reads an LLC-exclusive line (wherever it is,
//! including the DCA ways) the line is filled into the core's MLC, becomes
//! LLC-inclusive, and must therefore **migrate to an inclusive way**,
//! evicting the victim there. That is the hidden *directory contention*.

use crate::lru::Recency;
use crate::meta::LineMeta;
use crate::LlcGeometry;
use a4_model::{CoreId, DeviceId, LineAddr, WayMask, WorkloadId, LLC_WAYS};

/// Extended-directory ways *exclusive* to MLC tracking (12 total minus the
/// 2 shared with the traditional directory).
pub const EXT_DIR_EXCLUSIVE_WAYS: usize = 10;

/// A line evicted from the LLC data array, with everything the caller
/// needs for write-back, leak accounting and MLC back-invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLlcLine {
    /// Address of the evicted line.
    pub addr: LineAddr,
    /// True if the line must be written back to memory.
    pub dirty: bool,
    /// Metadata of the evicted line.
    pub meta: LineMeta,
    /// True if the line was LLC-inclusive (also resident in MLCs).
    pub was_in_mlc: bool,
    /// Core-presence bitmap of MLC copies to back-invalidate.
    pub presence: u32,
}

impl EvictedLlcLine {
    /// True if this eviction is a *DMA leak*: an I/O line evicted before
    /// any core consumed it.
    #[inline]
    pub fn is_dma_leak(&self) -> bool {
        self.meta.io && !self.meta.consumed
    }
}

/// Outcome of an extended-directory registration that ran out of ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtDirEviction {
    /// Address whose MLC copies must be back-invalidated.
    pub addr: LineAddr,
    /// Core-presence bitmap of those copies.
    pub presence: u32,
}

/// Result of a core-side LLC lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcReadResult {
    /// The line was found and will be filled into the reading core's MLC.
    Hit {
        /// True if the line had to migrate to an inclusive way (the C1
        /// directory-contention mechanism).
        migrated: bool,
        /// True if the line was found in a DCA way.
        from_dca_way: bool,
        /// True if this access consumed a fresh I/O line for the first
        /// time since its DMA write.
        io_first_consume: bool,
        /// Victim displaced from the inclusive ways by a migration.
        evicted: Option<EvictedLlcLine>,
        /// Metadata of the hit line (for the caller's MLC fill).
        meta: LineMeta,
    },
    /// The line is not in the LLC; the caller fetches it from memory.
    Miss,
}

/// Result of a DMA write that goes through DCA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaWriteResult {
    /// The line was already cached and was write-updated in place.
    Updated {
        /// MLC copies to back-invalidate (stale after the DMA write).
        invalidate_presence: u32,
    },
    /// The line was write-allocated into a DCA way.
    Allocated {
        /// MLC copies to back-invalidate (the line was MLC-only before).
        invalidate_presence: u32,
        /// Victim displaced from the DCA ways.
        evicted: Option<EvictedLlcLine>,
    },
}

/// Result of the outcome of an MLC eviction offered to the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlcEvictionOutcome {
    /// Other cores still hold the line; nothing moved.
    StillShared,
    /// The line was LLC-inclusive and simply lost its MLC residency,
    /// staying in its inclusive way as an LLC-exclusive line.
    MergedIntoLlc,
    /// The line was inserted into the data array as a victim-cache fill.
    Inserted {
        /// True if this insertion is *DMA bloat* (a consumed I/O line
        /// returning to the LLC's standard ways).
        bloat: bool,
        /// Victim displaced by the insertion.
        evicted: Option<EvictedLlcLine>,
    },
}

/// Result of a device-initiated (egress) read probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaReadResult {
    /// Served directly from the LLC.
    LlcHit,
    /// Only MLC copies exist; the caller must invoke
    /// [`Llc::egress_allocate`] to model the copy into an inclusive way.
    MlcOnly {
        /// Cores holding the line.
        presence: u32,
    },
    /// Not cached anywhere; served from memory without allocation.
    Miss,
}

/// Read-only view of a resident line, for tests and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeInfo {
    /// Way the line occupies.
    pub way: usize,
    /// True if the line is LLC-inclusive.
    pub in_mlc: bool,
    /// True if the copy is dirty.
    pub dirty: bool,
    /// The line's metadata.
    pub meta: LineMeta,
}

/// A copied-out data line, used when a line moves between ways. Storage
/// itself splits tags from per-way state (see [`Llc`]); this is only the
/// transient register form.
#[derive(Debug, Clone, Copy)]
struct LineState {
    tag: u64,
    dirty: bool,
    in_mlc: bool,
    presence: u32,
    meta: LineMeta,
}

/// Non-tag per-way state, kept as one record so a post-lookup touch of a
/// way costs one cache line instead of one per field array. (Data ways
/// need no recency state at all: allocation victims are random, so the
/// seed's per-way LRU tick was dead weight.)
#[derive(Debug, Clone, Copy)]
struct WayState {
    presence: u32,
    meta: LineMeta,
}

const INVALID_WAY: WayState = WayState {
    presence: 0,
    meta: LineMeta {
        owner: WorkloadId(0),
        io: false,
        consumed: true,
        device: None,
    },
};

/// The shared last-level cache.
///
/// # Examples
///
/// ```
/// use a4_cache::{LineMeta, Llc, LlcGeometry, LlcReadResult};
/// use a4_model::{CoreId, DeviceId, LineAddr, WayMask, WorkloadId};
///
/// let mut llc = Llc::new(LlcGeometry::new(16)?);
/// let wl = WorkloadId(0);
///
/// // DMA write-allocates into a DCA way (way 0 or 1)...
/// llc.dma_write(LineAddr(3), wl, DeviceId(0));
/// let probe = llc.probe(LineAddr(3)).unwrap();
/// assert!(WayMask::DCA.contains_way(probe.way));
///
/// // ...and a core read migrates the line to an inclusive way (C1).
/// match llc.core_read(CoreId(0), LineAddr(3)) {
///     LlcReadResult::Hit { migrated, .. } => assert!(migrated),
///     LlcReadResult::Miss => unreachable!(),
/// }
/// let probe = llc.probe(LineAddr(3)).unwrap();
/// assert!(WayMask::INCLUSIVE.contains_way(probe.way));
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Llc {
    geometry: LlcGeometry,
    // Precomputed address split (sets is a power of two).
    set_mask: u64,
    tag_shift: u32,
    // Data array, scan-optimised: the hot 23-way lookups (`find_way`
    // plus the extended-directory scans) touch one per-set `u16` valid
    // bitmap and a contiguous 88-byte tag stripe instead of ~1.5 KB of
    // interleaved line records; the remaining per-way state lives in one
    // `WayState` record per way so the post-lookup touch is a single
    // line. Flags are per-set bitmasks (bit w ⇔ way w); tags/state are
    // indexed `set * LLC_WAYS + way`.
    tags: Vec<u64>,
    tag16: Vec<u16>,
    // True while every resident tag fits 16 bits (always, for the scaled
    // address spaces): then a digest match IS a tag match and the scan
    // never has to touch the full-tag stripe.
    digests_exact: bool,
    state: Vec<WayState>,
    // Per-set flag word: valid/dirty/in-mlc way bitmaps in the three
    // 16-bit lanes (one load-modify-store instead of three arrays).
    flags: Vec<u64>,
    // Extended directory, same layout with `EXT_DIR_EXCLUSIVE_WAYS` ways.
    ext_tags: Vec<u64>,
    ext_tag16: Vec<u16>,
    ext_presence: Vec<u32>,
    ext_valid: Vec<u16>,
    // Exact-LRU recency permutation per extended-directory set (see
    // `lru::Recency`) — replaces per-entry tick stores plus the
    // eviction-time minimum scan.
    ext_order: Vec<Recency>,
    dca_mask: WayMask,
    inclusive_mask: WayMask,
    rand_state: u64,
}

impl Llc {
    /// Creates an empty LLC with the standard Skylake way roles (DCA ways
    /// 0–1, inclusive ways 9–10).
    pub fn new(geometry: LlcGeometry) -> Self {
        let sets = geometry.sets();
        Llc {
            geometry,
            set_mask: sets as u64 - 1,
            tag_shift: sets.trailing_zeros(),
            tags: vec![0; sets * LLC_WAYS],
            tag16: vec![0; sets * LLC_WAYS],
            digests_exact: true,
            state: vec![INVALID_WAY; sets * LLC_WAYS],
            flags: vec![0; sets],
            ext_tags: vec![0; sets * EXT_DIR_EXCLUSIVE_WAYS],
            ext_tag16: vec![0; sets * EXT_DIR_EXCLUSIVE_WAYS],
            ext_presence: vec![0; sets * EXT_DIR_EXCLUSIVE_WAYS],
            ext_valid: vec![0; sets],
            ext_order: vec![Recency::identity(EXT_DIR_EXCLUSIVE_WAYS); sets],
            dca_mask: WayMask::DCA,
            inclusive_mask: WayMask::INCLUSIVE,
            rand_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The LLC's geometry.
    #[inline]
    pub fn geometry(&self) -> LlcGeometry {
        self.geometry
    }

    /// Ways DDIO write-allocates into.
    #[inline]
    pub fn dca_mask(&self) -> WayMask {
        self.dca_mask
    }

    /// Overrides the DDIO way mask (the IIO `IIO_LLC_WAYS` register on real
    /// hardware; exposed here mainly for ablation studies).
    pub fn set_dca_mask(&mut self, mask: WayMask) {
        self.dca_mask = mask;
    }

    /// The inclusive-way mask (fixed by the directory structure).
    #[inline]
    pub fn inclusive_mask(&self) -> WayMask {
        self.inclusive_mask
    }

    #[inline]
    fn split(&self, addr: LineAddr) -> (usize, u64) {
        ((addr.0 & self.set_mask) as usize, addr.0 >> self.tag_shift)
    }

    #[inline]
    fn addr_of(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr((tag << self.tag_shift) | set as u64)
    }

    #[inline]
    fn di(set: usize, way: usize) -> usize {
        set * LLC_WAYS + way
    }

    /// Lane shifts within the per-set flag word.
    const FV: u32 = 0;
    const FD: u32 = 16;
    const FM: u32 = 32;

    #[inline]
    fn valid_bits(&self, set: usize) -> u16 {
        (self.flags[set] >> Self::FV) as u16
    }

    /// Copies a (valid) line out of the arrays into register form.
    #[inline]
    fn read_line(&self, set: usize, way: usize) -> LineState {
        let i = Self::di(set, way);
        let s = self.state[i];
        let f = self.flags[set];
        LineState {
            tag: self.tags[i],
            dirty: f & (1 << (way as u32 + Self::FD)) != 0,
            in_mlc: f & (1 << (way as u32 + Self::FM)) != 0,
            presence: s.presence,
            meta: s.meta,
        }
    }

    /// Copies the line out of `(set, way)` and invalidates it (fused
    /// `read_line` + valid-clear).
    #[inline]
    fn take_way(&mut self, set: usize, way: usize) -> LineState {
        let line = self.read_line(set, way);
        self.flags[set] &= !(1u64 << way);
        line
    }

    /// Replaces the line in `(set, way)` with `line` in one pass,
    /// returning the displaced valid line if any (fused
    /// `evict_way` + `write_line`: one flag-word round trip).
    #[inline]
    fn replace_way(&mut self, set: usize, way: usize, line: LineState) -> Option<EvictedLlcLine> {
        let i = Self::di(set, way);
        let f = self.flags[set];
        let bit = 1u64 << way;
        let evicted = if f & bit != 0 {
            let s = self.state[i];
            Some(EvictedLlcLine {
                addr: self.addr_of(set, self.tags[i]),
                dirty: f & (bit << Self::FD) != 0,
                meta: s.meta,
                was_in_mlc: f & (bit << Self::FM) != 0,
                presence: s.presence,
            })
        } else {
            None
        };
        self.tags[i] = line.tag;
        self.tag16[i] = line.tag as u16;
        self.digests_exact &= line.tag <= u64::from(u16::MAX);
        self.state[i] = WayState {
            presence: line.presence,
            meta: line.meta,
        };
        let mut nf = f | bit;
        nf = (nf & !(bit << Self::FD)) | (u64::from(line.dirty) << (way as u32 + Self::FD));
        nf = (nf & !(bit << Self::FM)) | (u64::from(line.in_mlc) << (way as u32 + Self::FM));
        self.flags[set] = nf;
        evicted
    }

    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        // Two-level scan: a branchless fixed-trip-count compare of the
        // 16-bit tag digests (one 22-byte stripe, vectorized by the
        // compiler) narrows to the rare candidates, which are then
        // verified against the full tags. Purely a speed structure — a
        // digest match never decides residency on its own.
        let base = Self::di(set, 0);
        let digests = &self.tag16[base..base + LLC_WAYS];
        let d = tag as u16;
        let mut cand = 0u16;
        for (w, &t) in digests.iter().enumerate() {
            cand |= u16::from(t == d) << w;
        }
        cand &= self.valid_bits(set);
        if cand == 0 {
            return None;
        }
        if self.digests_exact && tag <= u64::from(u16::MAX) {
            return Some(cand.trailing_zeros() as usize);
        }
        while cand != 0 {
            let w = cand.trailing_zeros() as usize;
            if self.tags[base + w] == tag {
                return Some(w);
            }
            cand &= cand - 1;
        }
        None
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic, cheap, good enough for victim picks.
        let mut x = self.rand_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rand_state = x;
        x
    }

    /// Picks the allocation victim way within `mask`: an invalid way if
    /// one exists, otherwise a (deterministic-)random valid way. Real
    /// Skylake LLCs run quad-age/NRU *approximations* of LRU; modelling
    /// them as exact LRU would give live lines unrealistic immunity
    /// against streams of dead lines (and make DDIO allocation bursts
    /// leak-free), so the random choice is the more faithful abstraction.
    fn victim_way(&mut self, set: usize, mask: WayMask) -> usize {
        debug_assert!(!mask.is_empty(), "allocation mask must be non-empty");
        // Invalid ways within the mask, lowest first.
        let free = !self.valid_bits(set) & mask.bits();
        if free != 0 {
            return free.trailing_zeros() as usize;
        }
        let n = mask.count() as u64;
        let r = self.next_rand();
        // `% n` must be preserved bit-for-bit (victim picks pin the golden
        // tables), but the hot masks (DCA, inclusive: 2 ways) admit the
        // identical power-of-two fast path without the hardware divide.
        let pick = if n.is_power_of_two() {
            (r & (n - 1)) as u32
        } else {
            (r % n) as u32
        };
        // The pick'th set bit of the mask, lowest first (branch-free
        // replacement for `iter_ways().nth(pick)` on this hot path).
        let mut bits = mask.bits();
        for _ in 0..pick {
            bits &= bits - 1;
        }
        bits.trailing_zeros() as usize
    }

    /// Core-side lookup (on an MLC miss). On a hit the line is brought
    /// into the reading core's MLC by the caller, so the LLC copy becomes
    /// LLC-inclusive and — if it is not already in an inclusive way —
    /// migrates there (observation **O1**).
    pub fn core_read(&mut self, core: CoreId, addr: LineAddr) -> LlcReadResult {
        let (set, tag) = self.split(addr);
        let Some(way) = self.find_way(set, tag) else {
            return LlcReadResult::Miss;
        };
        let core_bit = 1u32 << core.index();
        let from_dca_way = self.dca_mask.contains_way(way);
        let inclusive_mask = self.inclusive_mask;

        let i = Self::di(set, way);
        let s = &mut self.state[i];
        let io_first_consume = s.meta.io && !s.meta.consumed;
        s.meta.consumed = true;

        if inclusive_mask.contains_way(way) {
            // Already in an inclusive way: just gain MLC residency.
            s.presence |= core_bit;
            let meta = s.meta;
            self.flags[set] |= 1u64 << (way as u32 + Self::FM);
            return LlcReadResult::Hit {
                migrated: false,
                from_dca_way,
                io_first_consume,
                evicted: None,
                meta,
            };
        }

        // Migrate to an inclusive way (C1). Copy out, free the old way,
        // evict the inclusive-way victim, install.
        let moved = self.take_way(set, way);
        let target = self.victim_way(set, inclusive_mask);
        let evicted = self.replace_way(
            set,
            target,
            LineState {
                tag: moved.tag,
                dirty: moved.dirty,
                in_mlc: true,
                presence: core_bit,
                meta: moved.meta,
            },
        );
        LlcReadResult::Hit {
            migrated: true,
            from_dca_way,
            io_first_consume,
            evicted,
            meta: moved.meta,
        }
    }

    /// Registers an MLC fill that missed the LLC in the extended
    /// directory. Returns a forced back-invalidation if the directory set
    /// was full.
    pub fn register_mlc_fill(&mut self, core: CoreId, addr: LineAddr) -> Option<ExtDirEviction> {
        let presence = 1u32 << core.index();
        self.ext_dir_insert(addr, presence)
    }

    /// Moves MLC-residency tracking of `addr` into the extended directory.
    /// Used when an LLC-inclusive line's *data* copy is evicted: in a
    /// non-inclusive hierarchy the MLC copies survive, so the shared
    /// directory entry is demoted to an extended-directory entry.
    pub fn demote_to_ext_dir(&mut self, addr: LineAddr, presence: u32) -> Option<ExtDirEviction> {
        debug_assert!(presence != 0, "demotion requires MLC residents");
        self.ext_dir_insert(addr, presence)
    }

    #[inline]
    fn ext_di(set: usize, way: usize) -> usize {
        set * EXT_DIR_EXCLUSIVE_WAYS + way
    }

    /// Finds the extended-directory way holding `tag`, if any.
    #[inline]
    fn ext_find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = Self::ext_di(set, 0);
        let digests = &self.ext_tag16[base..base + EXT_DIR_EXCLUSIVE_WAYS];
        let d = tag as u16;
        let mut cand = 0u16;
        for (w, &t) in digests.iter().enumerate() {
            cand |= u16::from(t == d) << w;
        }
        cand &= self.ext_valid[set];
        if cand == 0 {
            return None;
        }
        if self.digests_exact && tag <= u64::from(u16::MAX) {
            return Some(cand.trailing_zeros() as usize);
        }
        while cand != 0 {
            let w = cand.trailing_zeros() as usize;
            if self.ext_tags[base + w] == tag {
                return Some(w);
            }
            cand &= cand - 1;
        }
        None
    }

    fn ext_dir_insert(&mut self, addr: LineAddr, presence: u32) -> Option<ExtDirEviction> {
        let (set, tag) = self.split(addr);

        // Existing entry: add presence.
        if let Some(w) = self.ext_find(set, tag) {
            self.ext_presence[Self::ext_di(set, w)] |= presence;
            self.ext_order[set].touch(w, EXT_DIR_EXCLUSIVE_WAYS);
            return None;
        }
        // Free entry (lowest way first).
        let free = !self.ext_valid[set] & ((1 << EXT_DIR_EXCLUSIVE_WAYS) - 1);
        if free != 0 {
            let w = free.trailing_zeros() as usize;
            let i = Self::ext_di(set, w);
            self.ext_tags[i] = tag;
            self.ext_tag16[i] = tag as u16;
            self.digests_exact &= tag <= u64::from(u16::MAX);
            self.ext_presence[i] = presence;
            self.ext_valid[set] |= 1 << w;
            self.ext_order[set].touch(w, EXT_DIR_EXCLUSIVE_WAYS);
            return None;
        }
        // Evict the LRU extended-directory entry: its MLC copies must be
        // back-invalidated (the directory-conflict behaviour of Yan et al.).
        let victim_idx = self.ext_order[set].victim(EXT_DIR_EXCLUSIVE_WAYS);
        let i = Self::ext_di(set, victim_idx);
        let victim_tag = self.ext_tags[i];
        let victim_presence = self.ext_presence[i];
        self.ext_tags[i] = tag;
        self.ext_tag16[i] = tag as u16;
        self.digests_exact &= tag <= u64::from(u16::MAX);
        self.ext_presence[i] = presence;
        self.ext_order[set].touch(victim_idx, EXT_DIR_EXCLUSIVE_WAYS);
        Some(ExtDirEviction {
            addr: self.addr_of(set, victim_tag),
            presence: victim_presence,
        })
    }

    /// Offers an MLC-evicted line to the LLC (the victim-cache fill path).
    ///
    /// `alloc_mask` is the evicting core's CLOS mask: CAT constrains which
    /// ways the victim may be allocated into.
    pub fn mlc_eviction(
        &mut self,
        core: CoreId,
        addr: LineAddr,
        dirty: bool,
        meta: LineMeta,
        alloc_mask: WayMask,
    ) -> MlcEvictionOutcome {
        let (set, tag) = self.split(addr);
        let core_bit = 1u32 << core.index();

        // Case 1: the line is LLC-resident (inclusive ways if in_mlc).
        if let Some(way) = self.find_way(set, tag) {
            let inclusive_way = self.inclusive_mask.contains_way(way);
            let i = Self::di(set, way);
            self.state[i].presence &= !core_bit;
            if dirty {
                self.flags[set] |= 1u64 << (way as u32 + Self::FD);
            }
            if self.state[i].presence != 0 {
                return MlcEvictionOutcome::StillShared;
            }
            self.flags[set] &= !(1u64 << (way as u32 + Self::FM));
            // The inclusive ways only hold lines that are *currently*
            // MLC-resident (their shared directory entries are scarce);
            // once the last MLC copy leaves, the line relocates into the
            // evicting core's CLOS ways — which is exactly where DMA
            // bloat lands for consumed I/O lines.
            if !inclusive_way || alloc_mask.contains_way(way) {
                return MlcEvictionOutcome::MergedIntoLlc;
            }
            let moved = self.take_way(set, way);
            let bloat = moved.meta.io && moved.meta.consumed;
            let target = self.victim_way(set, alloc_mask);
            let evicted = self.replace_way(
                set,
                target,
                LineState {
                    tag: moved.tag,
                    dirty: moved.dirty,
                    in_mlc: false,
                    presence: 0,
                    meta: moved.meta,
                },
            );
            return MlcEvictionOutcome::Inserted { bloat, evicted };
        }

        // Case 2: tracked in the extended directory.
        let mut tracked_shared = false;
        if let Some(w) = self.ext_find(set, tag) {
            let i = Self::ext_di(set, w);
            self.ext_presence[i] &= !core_bit;
            if self.ext_presence[i] != 0 {
                tracked_shared = true;
            } else {
                self.ext_valid[set] &= !(1 << w);
            }
        }
        if tracked_shared {
            return MlcEvictionOutcome::StillShared;
        }

        // Case 3: last copy leaves the MLCs — insert as a victim.
        let bloat = meta.io && meta.consumed;
        let way = self.victim_way(set, alloc_mask);
        let evicted = self.replace_way(
            set,
            way,
            LineState {
                tag,
                dirty,
                in_mlc: false,
                presence: 0,
                meta,
            },
        );
        MlcEvictionOutcome::Inserted { bloat, evicted }
    }

    /// DCA-enabled DMA write: write-update in place if cached, otherwise
    /// write-allocate into the DCA ways (CLOS masks do not apply).
    pub fn dma_write(
        &mut self,
        addr: LineAddr,
        owner: WorkloadId,
        device: DeviceId,
    ) -> DmaWriteResult {
        let (set, tag) = self.split(addr);
        let fresh = LineMeta {
            owner,
            io: true,
            consumed: false,
            device: Some(device),
        };

        if let Some(way) = self.find_way(set, tag) {
            // Write update: the line stays where it is.
            let i = Self::di(set, way);
            let f = self.flags[set];
            let invalidate_presence = if f & (1 << (way as u32 + Self::FM)) != 0 {
                self.state[i].presence
            } else {
                0
            };
            self.state[i] = WayState {
                presence: 0,
                meta: fresh,
            };
            self.flags[set] =
                (f & !(1u64 << (way as u32 + Self::FM))) | (1u64 << (way as u32 + Self::FD));
            return DmaWriteResult::Updated {
                invalidate_presence,
            };
        }

        // MLC-only copies are snooped out before the allocate.
        let mut invalidate_presence = 0;
        if let Some(w) = self.ext_find(set, tag) {
            invalidate_presence = self.ext_presence[Self::ext_di(set, w)];
            self.ext_valid[set] &= !(1 << w);
        }

        let way = self.victim_way(set, self.dca_mask);
        let evicted = self.replace_way(
            set,
            way,
            LineState {
                tag,
                dirty: true,
                in_mlc: false,
                presence: 0,
                meta: fresh,
            },
        );
        DmaWriteResult::Allocated {
            invalidate_presence,
            evicted,
        }
    }

    /// Snoop-invalidates every cached copy of `addr` (the DCA-disabled DMA
    /// write path: data goes to memory and stale copies are dropped).
    ///
    /// Returns the MLC presence bits the caller must back-invalidate.
    pub fn snoop_invalidate(&mut self, addr: LineAddr) -> u32 {
        let (set, tag) = self.split(addr);
        let mut presence = 0;
        if let Some(way) = self.find_way(set, tag) {
            presence |= self.state[Self::di(set, way)].presence;
            self.flags[set] &= !(1u64 << way);
        }
        if let Some(w) = self.ext_find(set, tag) {
            presence |= self.ext_presence[Self::ext_di(set, w)];
            self.ext_valid[set] &= !(1 << w);
        }
        presence
    }

    /// Device-initiated read probe (egress path).
    pub fn dma_read(&mut self, addr: LineAddr) -> DmaReadResult {
        let (set, tag) = self.split(addr);
        if self.find_way(set, tag).is_some() {
            return DmaReadResult::LlcHit;
        }
        if let Some(w) = self.ext_find(set, tag) {
            return DmaReadResult::MlcOnly {
                presence: self.ext_presence[Self::ext_di(set, w)],
            };
        }
        DmaReadResult::Miss
    }

    /// Models the egress copy of an MLC-only line into an inclusive way
    /// ("I/O cache lines are copied to newly read-allocated cache lines in
    /// inclusive ways, and then DMA-read", §2.2). The MLC copies remain,
    /// so the line becomes LLC-inclusive.
    pub fn egress_allocate(
        &mut self,
        addr: LineAddr,
        meta: LineMeta,
        presence: u32,
    ) -> Option<EvictedLlcLine> {
        let (set, tag) = self.split(addr);
        // Remove the extended-directory entry: residency is now tracked by
        // the shared directory way coupled with the inclusive data way.
        if let Some(w) = self.ext_find(set, tag) {
            self.ext_valid[set] &= !(1 << w);
        }
        let way = self.victim_way(set, self.inclusive_mask);
        self.replace_way(
            set,
            way,
            LineState {
                tag,
                dirty: false,
                in_mlc: true,
                presence,
                meta,
            },
        )
    }

    /// Read-only probe for tests.
    pub fn probe(&self, addr: LineAddr) -> Option<ProbeInfo> {
        let (set, tag) = self.split(addr);
        self.find_way(set, tag).map(|way| ProbeInfo {
            way,
            in_mlc: self.flags[set] & (1 << (way as u32 + Self::FM)) != 0,
            dirty: self.flags[set] & (1 << (way as u32 + Self::FD)) != 0,
            meta: self.state[Self::di(set, way)].meta,
        })
    }

    /// True if the extended directory tracks `addr` for any core.
    pub fn ext_dir_tracks(&self, addr: LineAddr) -> bool {
        let (set, tag) = self.split(addr);
        self.ext_find(set, tag).is_some()
    }

    /// Number of valid data lines within `mask` across all sets (test and
    /// occupancy-analysis helper).
    pub fn occupancy_in(&self, mask: WayMask) -> usize {
        self.flags
            .iter()
            .map(|&f| (f as u16 & mask.bits()).count_ones() as usize)
            .sum()
    }

    /// Asserts the structural invariant: every LLC-inclusive line sits in
    /// an inclusive way. Returns the number of inclusive lines checked.
    ///
    /// # Panics
    ///
    /// Panics if the invariant is violated (test helper).
    pub fn assert_inclusive_invariant(&self) -> usize {
        let mut checked = 0;
        for set in 0..self.geometry.sets() {
            let f = self.flags[set];
            let mut m = (f >> Self::FV) as u16 & (f >> Self::FM) as u16;
            while m != 0 {
                let w = m.trailing_zeros() as usize;
                m &= m - 1;
                assert!(
                    self.inclusive_mask.contains_way(w),
                    "inclusive line in non-inclusive way {w} (set {set})"
                );
                assert!(
                    self.state[Self::di(set, w)].presence != 0,
                    "inclusive line with empty presence"
                );
                checked += 1;
            }
        }
        checked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::A4Error;

    fn llc() -> Llc {
        Llc::new(LlcGeometry::new(16).expect("valid"))
    }

    fn wl(n: u16) -> WorkloadId {
        WorkloadId(n)
    }

    const DEV: DeviceId = DeviceId(0);
    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);

    #[test]
    fn dma_write_allocates_into_dca_ways_only() {
        let mut llc = llc();
        // Three lines in the same set: 2 DCA ways => third evicts.
        let a = LineAddr(0);
        let b = LineAddr(16);
        let c = LineAddr(32);
        assert!(matches!(
            llc.dma_write(a, wl(0), DEV),
            DmaWriteResult::Allocated { evicted: None, .. }
        ));
        assert!(matches!(
            llc.dma_write(b, wl(0), DEV),
            DmaWriteResult::Allocated { evicted: None, .. }
        ));
        let res = llc.dma_write(c, wl(0), DEV);
        match res {
            DmaWriteResult::Allocated {
                evicted: Some(victim),
                ..
            } => {
                assert!(
                    victim.addr == a || victim.addr == b,
                    "a resident DCA line evicted"
                );
                assert!(
                    victim.is_dma_leak(),
                    "unconsumed I/O eviction is a DMA leak"
                );
                assert!(victim.dirty, "DMA-written lines are modified");
            }
            other => panic!("expected allocation with eviction, got {other:?}"),
        }
        let survivors = [a, b, c]
            .iter()
            .filter(|&&l| llc.probe(l).is_some())
            .count();
        assert_eq!(survivors, 2, "two of three lines fit the two DCA ways");
        let p = llc.probe(c).unwrap();
        assert!(WayMask::DCA.contains_way(p.way));
        assert!(p.meta.io && !p.meta.consumed);
    }

    #[test]
    fn dma_write_updates_in_place_anywhere() {
        let mut llc = llc();
        llc.dma_write(LineAddr(5), wl(0), DEV);
        // Consume => migrates to inclusive way.
        llc.core_read(C0, LineAddr(5));
        let way_before = llc.probe(LineAddr(5)).unwrap().way;
        assert!(WayMask::INCLUSIVE.contains_way(way_before));
        // A second DMA write to the same line updates in place...
        let res = llc.dma_write(LineAddr(5), wl(0), DEV);
        match res {
            DmaWriteResult::Updated {
                invalidate_presence,
            } => {
                assert_eq!(invalidate_presence, 1, "core 0's MLC copy is stale");
            }
            other => panic!("expected update, got {other:?}"),
        }
        let p = llc.probe(LineAddr(5)).unwrap();
        assert_eq!(p.way, way_before, "write update never moves the line");
        assert!(!p.in_mlc, "MLC residency cleared by the snoop");
        assert!(!p.meta.consumed, "line is fresh again");
    }

    #[test]
    fn core_read_of_dca_line_migrates_to_inclusive_way() {
        let mut llc = llc();
        llc.dma_write(LineAddr(7), wl(0), DEV);
        match llc.core_read(C0, LineAddr(7)) {
            LlcReadResult::Hit {
                migrated,
                from_dca_way,
                io_first_consume,
                evicted,
                ..
            } => {
                assert!(migrated);
                assert!(from_dca_way);
                assert!(io_first_consume);
                assert!(evicted.is_none());
            }
            LlcReadResult::Miss => panic!("line was cached"),
        }
        let p = llc.probe(LineAddr(7)).unwrap();
        assert!(WayMask::INCLUSIVE.contains_way(p.way));
        assert!(p.in_mlc);
        assert!(p.meta.consumed);
        llc.assert_inclusive_invariant();
    }

    #[test]
    fn migration_evicts_inclusive_way_victim() {
        let mut llc = llc();
        // Fill both inclusive ways of set 0 via victim inserts.
        let v1 = LineAddr(16);
        let v2 = LineAddr(32);
        let incl = WayMask::INCLUSIVE;
        llc.mlc_eviction(C0, v1, false, LineMeta::cpu(wl(9)), incl);
        llc.mlc_eviction(C0, v2, false, LineMeta::cpu(wl(9)), incl);
        assert_eq!(llc.occupancy_in(incl), 2);
        // DMA-write + consume a third line in the same set.
        llc.dma_write(LineAddr(0), wl(0), DEV);
        match llc.core_read(C0, LineAddr(0)) {
            LlcReadResult::Hit {
                migrated: true,
                evicted: Some(victim),
                ..
            } => {
                assert_eq!(
                    victim.meta.owner,
                    wl(9),
                    "the oblivious workload lost its line"
                );
                assert!(
                    victim.addr == v1 || victim.addr == v2,
                    "an inclusive-way victim"
                );
            }
            other => panic!("expected migration with eviction, got {other:?}"),
        }
        llc.assert_inclusive_invariant();
    }

    #[test]
    fn second_reader_does_not_remigrate() {
        let mut llc = llc();
        llc.dma_write(LineAddr(3), wl(0), DEV);
        llc.core_read(C0, LineAddr(3));
        match llc.core_read(C1, LineAddr(3)) {
            LlcReadResult::Hit {
                migrated,
                io_first_consume,
                ..
            } => {
                assert!(!migrated, "already in an inclusive way");
                assert!(!io_first_consume, "already consumed");
            }
            LlcReadResult::Miss => panic!("cached"),
        }
        let p = llc.probe(LineAddr(3)).unwrap();
        assert!(p.in_mlc);
    }

    #[test]
    fn mlc_eviction_merges_inclusive_line() {
        let mut llc = llc();
        llc.dma_write(LineAddr(3), wl(0), DEV);
        llc.core_read(C0, LineAddr(3));
        llc.core_read(C1, LineAddr(3));
        // First core drops its copy: still shared.
        assert_eq!(
            llc.mlc_eviction(
                C0,
                LineAddr(3),
                false,
                LineMeta::io(wl(0), DEV),
                WayMask::ALL
            ),
            MlcEvictionOutcome::StillShared
        );
        // Second core drops: the line merges into the LLC (stays resident).
        assert_eq!(
            llc.mlc_eviction(
                C1,
                LineAddr(3),
                true,
                LineMeta::io(wl(0), DEV),
                WayMask::ALL
            ),
            MlcEvictionOutcome::MergedIntoLlc
        );
        let p = llc.probe(LineAddr(3)).unwrap();
        assert!(!p.in_mlc);
        assert!(p.dirty, "MLC dirtiness merged in");
        llc.assert_inclusive_invariant();
    }

    #[test]
    fn mlc_eviction_inserts_with_clos_mask_and_flags_bloat() {
        let mut llc = llc();
        let mask = WayMask::from_paper_range(5, 6).unwrap();
        let mut consumed_io = LineMeta::io(wl(1), DEV);
        consumed_io.consumed = true;
        // Track in ext dir first (as a real MLC fill would).
        llc.register_mlc_fill(C0, LineAddr(8));
        match llc.mlc_eviction(C0, LineAddr(8), false, consumed_io, mask) {
            MlcEvictionOutcome::Inserted { bloat, evicted } => {
                assert!(bloat, "consumed I/O line returning to LLC is DMA bloat");
                assert!(evicted.is_none());
            }
            other => panic!("expected insert, got {other:?}"),
        }
        let p = llc.probe(LineAddr(8)).unwrap();
        assert!(mask.contains_way(p.way), "CAT constrains victim insertion");
        assert!(!llc.ext_dir_tracks(LineAddr(8)));
    }

    #[test]
    fn clos_mask_constrains_but_hits_are_global() {
        let mut llc = llc();
        let left = WayMask::from_paper_range(2, 3).unwrap();
        llc.register_mlc_fill(C0, LineAddr(4));
        llc.mlc_eviction(C0, LineAddr(4), false, LineMeta::cpu(wl(0)), left);
        // A core whose CLOS excludes ways 2-3 still hits the line.
        assert!(matches!(
            llc.core_read(C1, LineAddr(4)),
            LlcReadResult::Hit { .. }
        ));
    }

    #[test]
    fn ext_dir_eviction_back_invalidates() {
        let mut llc = llc();
        // Fill all 10 exclusive extended-directory ways of set 0.
        for i in 0..EXT_DIR_EXCLUSIVE_WAYS as u64 {
            assert!(llc.register_mlc_fill(C0, LineAddr(i * 16)).is_none());
        }
        let forced = llc
            .register_mlc_fill(C1, LineAddr(160))
            .expect("dir set is full");
        assert_eq!(forced.addr, LineAddr(0), "LRU entry evicted");
        assert_eq!(forced.presence, 1);
        assert!(!llc.ext_dir_tracks(LineAddr(0)));
        assert!(llc.ext_dir_tracks(LineAddr(160)));
    }

    #[test]
    fn shared_ext_dir_entry_aggregates_presence() {
        let mut llc = llc();
        assert!(llc.register_mlc_fill(C0, LineAddr(4)).is_none());
        assert!(llc.register_mlc_fill(C1, LineAddr(4)).is_none());
        // Dropping one core keeps tracking alive.
        assert_eq!(
            llc.mlc_eviction(C0, LineAddr(4), false, LineMeta::cpu(wl(0)), WayMask::ALL),
            MlcEvictionOutcome::StillShared
        );
        assert!(llc.ext_dir_tracks(LineAddr(4)));
    }

    #[test]
    fn snoop_invalidate_clears_everything() {
        let mut llc = llc();
        llc.dma_write(LineAddr(2), wl(0), DEV);
        llc.core_read(C0, LineAddr(2));
        let presence = llc.snoop_invalidate(LineAddr(2));
        assert_eq!(presence, 1);
        assert!(llc.probe(LineAddr(2)).is_none());
        assert_eq!(llc.snoop_invalidate(LineAddr(2)), 0);
    }

    #[test]
    fn dma_read_paths() {
        let mut llc = llc();
        // LLC hit.
        llc.dma_write(LineAddr(1), wl(0), DEV);
        assert_eq!(llc.dma_read(LineAddr(1)), DmaReadResult::LlcHit);
        // MLC only.
        llc.register_mlc_fill(C0, LineAddr(17));
        assert_eq!(
            llc.dma_read(LineAddr(17)),
            DmaReadResult::MlcOnly { presence: 1 }
        );
        // Miss: no allocation on the pure-memory path (Kurth et al. [36]).
        assert_eq!(llc.dma_read(LineAddr(33)), DmaReadResult::Miss);
        assert!(llc.probe(LineAddr(33)).is_none());
    }

    #[test]
    fn egress_allocate_lands_in_inclusive_way() {
        let mut llc = llc();
        llc.register_mlc_fill(C0, LineAddr(17));
        let meta = LineMeta::cpu(wl(0));
        let evicted = llc.egress_allocate(LineAddr(17), meta, 1);
        assert!(evicted.is_none());
        let p = llc.probe(LineAddr(17)).unwrap();
        assert!(WayMask::INCLUSIVE.contains_way(p.way));
        assert!(p.in_mlc);
        assert!(!llc.ext_dir_tracks(LineAddr(17)));
        llc.assert_inclusive_invariant();
    }

    #[test]
    fn custom_dca_mask_is_honoured() {
        let mut llc = llc();
        let three = WayMask::from_paper_range(0, 2).unwrap();
        llc.set_dca_mask(three);
        for i in 0..3u64 {
            llc.dma_write(LineAddr(i * 16), wl(0), DEV);
        }
        assert_eq!(llc.occupancy_in(three), 3);
        assert_eq!(llc.dca_mask(), three);
    }

    #[test]
    fn geometry_validation_flows_through() {
        assert!(matches!(
            LlcGeometry::new(17),
            Err(A4Error::InvalidConfig { .. })
        ));
    }
}
