//! The non-inclusive last-level cache with its inclusive directory.
//!
//! Structure (paper Fig. 1, after Yan et al. [65]):
//!
//! * 11 **data ways** per set, coupled 1:1 with 11 *traditional directory*
//!   ways that track LLC-resident lines;
//! * 12 **extended directory** ways per set that track MLC-resident lines;
//! * **two ways are shared** between the groups. A line resident in both
//!   the LLC and an MLC needs a directory entry in both groups at once,
//!   which is only possible in the shared ways — therefore such
//!   *LLC-inclusive* lines can only occupy data ways 9–10, the **inclusive
//!   ways**. LLC-exclusive lines may occupy any of the 11 ways.
//!
//! This module models the shared ways implicitly: a [`Llc`] data line in
//! ways 9–10 may carry `in_mlc` state with a core-presence bitmap, and the
//! explicit extended-directory array holds the remaining
//! [`EXT_DIR_EXCLUSIVE_WAYS`] = 10 entries per set for MLC-only lines.
//!
//! The consequence the paper builds on — observation **O1** — falls out of
//! the structure: when a core reads an LLC-exclusive line (wherever it is,
//! including the DCA ways) the line is filled into the core's MLC, becomes
//! LLC-inclusive, and must therefore **migrate to an inclusive way**,
//! evicting the victim there. That is the hidden *directory contention*.

use crate::lru::Recency;
use crate::meta::LineMeta;
use crate::walk::SetTagWalk;
use crate::LlcGeometry;
use a4_model::{CoreId, DeviceId, LineAddr, WayMask, WorkloadId, LLC_WAYS};
use serde::{Deserialize, Serialize};

/// Extended-directory ways *exclusive* to MLC tracking (12 total minus the
/// 2 shared with the traditional directory).
pub const EXT_DIR_EXCLUSIVE_WAYS: usize = 10;

/// A line evicted from the LLC data array, with everything the caller
/// needs for write-back, leak accounting and MLC back-invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLlcLine {
    /// Address of the evicted line.
    pub addr: LineAddr,
    /// True if the line must be written back to memory.
    pub dirty: bool,
    /// Metadata of the evicted line.
    pub meta: LineMeta,
    /// True if the line was LLC-inclusive (also resident in MLCs).
    pub was_in_mlc: bool,
    /// Core-presence bitmap of MLC copies to back-invalidate.
    pub presence: u32,
}

impl EvictedLlcLine {
    /// True if this eviction is a *DMA leak*: an I/O line evicted before
    /// any core consumed it.
    #[inline]
    pub fn is_dma_leak(&self) -> bool {
        self.meta.io && !self.meta.consumed
    }
}

/// Outcome of an extended-directory registration that ran out of ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtDirEviction {
    /// Address whose MLC copies must be back-invalidated.
    pub addr: LineAddr,
    /// Core-presence bitmap of those copies.
    pub presence: u32,
}

/// Result of a core-side LLC lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlcReadResult {
    /// The line was found and will be filled into the reading core's MLC.
    Hit {
        /// True if the line had to migrate to an inclusive way (the C1
        /// directory-contention mechanism).
        migrated: bool,
        /// True if the line was found in a DCA way.
        from_dca_way: bool,
        /// True if this access consumed a fresh I/O line for the first
        /// time since its DMA write.
        io_first_consume: bool,
        /// Victim displaced from the inclusive ways by a migration.
        evicted: Option<EvictedLlcLine>,
        /// Metadata of the hit line (for the caller's MLC fill).
        meta: LineMeta,
    },
    /// The line is not in the LLC; the caller fetches it from memory.
    Miss,
}

/// Result of a DMA write that goes through DCA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaWriteResult {
    /// The line was already cached and was write-updated in place.
    Updated {
        /// MLC copies to back-invalidate (stale after the DMA write).
        invalidate_presence: u32,
    },
    /// The line was write-allocated into a DCA way.
    Allocated {
        /// MLC copies to back-invalidate (the line was MLC-only before).
        invalidate_presence: u32,
        /// Victim displaced from the DCA ways.
        evicted: Option<EvictedLlcLine>,
    },
}

/// Result of the outcome of an MLC eviction offered to the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlcEvictionOutcome {
    /// Other cores still hold the line; nothing moved.
    StillShared,
    /// The line was LLC-inclusive and simply lost its MLC residency,
    /// staying in its inclusive way as an LLC-exclusive line.
    MergedIntoLlc,
    /// The line was inserted into the data array as a victim-cache fill.
    Inserted {
        /// True if this insertion is *DMA bloat* (a consumed I/O line
        /// returning to the LLC's standard ways).
        bloat: bool,
        /// Victim displaced by the insertion.
        evicted: Option<EvictedLlcLine>,
    },
}

/// Result of a device-initiated (egress) read probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaReadResult {
    /// Served directly from the LLC.
    LlcHit,
    /// Only MLC copies exist; the caller must invoke
    /// [`Llc::egress_allocate`] to model the copy into an inclusive way.
    MlcOnly {
        /// Cores holding the line.
        presence: u32,
    },
    /// Not cached anywhere; served from memory without allocation.
    Miss,
}

/// Result of a remote-socket read probe (see [`Llc::remote_read_at`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RemoteReadResult {
    /// Served from this (home) LLC over UPI.
    Hit {
        /// The hit landed in a DCA way.
        from_dca_way: bool,
        /// First consumption of an unconsumed I/O line.
        io_first_consume: bool,
        /// The line's owner, for consumption attribution.
        owner: WorkloadId,
    },
    /// Only home-socket MLC copies exist; forwarded over UPI without any
    /// state change (the remote requester caches nothing here).
    MlcOnly,
    /// Not cached on the home socket; served from memory.
    Miss,
}

/// Read-only view of a resident line, for tests and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeInfo {
    /// Way the line occupies.
    pub way: usize,
    /// True if the line is LLC-inclusive.
    pub in_mlc: bool,
    /// True if the copy is dirty.
    pub dirty: bool,
    /// The line's metadata.
    pub meta: LineMeta,
}

/// A copied-out data line, used when a line moves between ways. Storage
/// itself splits tags from per-way state (see [`Llc`]); this is only the
/// transient register form.
#[derive(Debug, Clone, Copy)]
struct LineState {
    tag: u64,
    dirty: bool,
    in_mlc: bool,
    presence: u32,
    meta: LineMeta,
}

/// One data way's full record (tag verified against digests, plus the
/// non-flag state), read/written as a unit on hits and installs.
#[derive(Debug, Clone, Copy)]
struct WayLine {
    tag: u64,
    presence: u32,
    meta: LineMeta,
}

const INVALID_WAY: WayLine = WayLine {
    tag: 0,
    presence: 0,
    meta: LineMeta {
        owner: WorkloadId(0),
        io: false,
        consumed: true,
        device: None,
    },
};

/// One extended-directory entry's full record.
#[derive(Debug, Clone, Copy)]
struct ExtLine {
    tag: u64,
    presence: u32,
}

/// One set's complete storage, 64-byte aligned: the scan header (flag
/// lanes + both directories' tag digests) fills the first cache line, and
/// the way/ext records follow *in the same block*, so an access chain
/// that scans, hits and installs within one set touches a handful of
/// adjacent cache lines on one page instead of parallel arrays spread
/// over several — the dominant cost of a line op at full-system
/// footprints is exactly these scattered loads.
///
/// `tag16` is padded to 16 lanes (11 used) so the digest compare is one
/// full-width vector op; the dead lanes are never written and the
/// candidate mask is ANDed with the valid bits, which only ever cover
/// the real ways.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(64))]
struct SetBlock {
    /// Valid/dirty/in-mlc way bitmaps in the three 16-bit lanes (one
    /// load-modify-store instead of three arrays).
    flags: u64,
    /// Extended-directory valid bitmap.
    ext_valid: u16,
    /// Data-way tag digests (lanes 11..16 unused).
    tag16: [u16; 16],
    /// Extended-directory tag digests.
    ext_tag16: [u16; EXT_DIR_EXCLUSIVE_WAYS],
    /// Exact-LRU recency permutation of the extended directory (see
    /// `lru::Recency`) — replaces per-entry tick stores plus the
    /// eviction-time minimum scan.
    ext_order: Recency,
    /// Data-way records.
    ways: [WayLine; LLC_WAYS],
    /// Extended-directory records.
    ext: [ExtLine; EXT_DIR_EXCLUSIVE_WAYS],
}

/// The shared last-level cache.
///
/// # Examples
///
/// ```
/// use a4_cache::{LineMeta, Llc, LlcGeometry, LlcReadResult};
/// use a4_model::{CoreId, DeviceId, LineAddr, WayMask, WorkloadId};
///
/// let mut llc = Llc::new(LlcGeometry::new(16)?);
/// let wl = WorkloadId(0);
///
/// // DMA write-allocates into a DCA way (way 0 or 1)...
/// llc.dma_write(LineAddr(3), wl, DeviceId(0));
/// let probe = llc.probe(LineAddr(3)).unwrap();
/// assert!(WayMask::DCA.contains_way(probe.way));
///
/// // ...and a core read migrates the line to an inclusive way (C1).
/// match llc.core_read(CoreId(0), LineAddr(3)) {
///     LlcReadResult::Hit { migrated, .. } => assert!(migrated),
///     LlcReadResult::Miss => unreachable!(),
/// }
/// let probe = llc.probe(LineAddr(3)).unwrap();
/// assert!(WayMask::INCLUSIVE.contains_way(probe.way));
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Llc {
    geometry: LlcGeometry,
    // Precomputed address split (sets is a power of two).
    set_mask: u64,
    tag_shift: u32,
    // All per-set storage, one contiguous aligned block per set (see
    // [`SetBlock`]).
    sets: Vec<SetBlock>,
    // True while every resident tag fits 16 bits (always, for the scaled
    // address spaces): then a digest match IS a tag match and the scan
    // never has to touch the full-tag records.
    digests_exact: bool,
    dca_mask: WayMask,
    inclusive_mask: WayMask,
    rand_state: u64,
}

impl Llc {
    /// Creates an empty LLC with the standard Skylake way roles (DCA ways
    /// 0–1, inclusive ways 9–10).
    pub fn new(geometry: LlcGeometry) -> Self {
        let sets = geometry.sets();
        Llc {
            geometry,
            set_mask: sets as u64 - 1,
            tag_shift: sets.trailing_zeros(),
            sets: vec![
                SetBlock {
                    flags: 0,
                    ext_valid: 0,
                    tag16: [0; 16],
                    ext_tag16: [0; EXT_DIR_EXCLUSIVE_WAYS],
                    ext_order: Recency::identity(EXT_DIR_EXCLUSIVE_WAYS),
                    ways: [INVALID_WAY; LLC_WAYS],
                    ext: [ExtLine {
                        tag: 0,
                        presence: 0
                    }; EXT_DIR_EXCLUSIVE_WAYS],
                };
                sets
            ],
            digests_exact: true,
            dca_mask: WayMask::DCA,
            inclusive_mask: WayMask::INCLUSIVE,
            rand_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The LLC's geometry.
    #[inline]
    pub fn geometry(&self) -> LlcGeometry {
        self.geometry
    }

    /// Ways DDIO write-allocates into.
    #[inline]
    pub fn dca_mask(&self) -> WayMask {
        self.dca_mask
    }

    /// Overrides the DDIO way mask (the IIO `IIO_LLC_WAYS` register on real
    /// hardware; exposed here mainly for ablation studies).
    pub fn set_dca_mask(&mut self, mask: WayMask) {
        self.dca_mask = mask;
    }

    /// The inclusive-way mask (fixed by the directory structure).
    #[inline]
    pub fn inclusive_mask(&self) -> WayMask {
        self.inclusive_mask
    }

    #[inline]
    fn split(&self, addr: LineAddr) -> (usize, u64) {
        ((addr.0 & self.set_mask) as usize, addr.0 >> self.tag_shift)
    }

    /// Incremental `(set, tag)` cursor starting at `base` — the run
    /// paths' replacement for re-splitting every consecutive address.
    #[inline]
    pub(crate) fn walk(&self, base: LineAddr) -> SetTagWalk {
        SetTagWalk::new(base, self.set_mask, self.tag_shift)
    }

    /// Warms one set's scan header and way stripe with discarded early
    /// loads: inside a run loop the next line's set is known, so issuing
    /// its leading loads now lets the out-of-order core overlap their
    /// L2/L3 latency with the current line's work. Pure speed — the
    /// loaded values are discarded.
    #[inline]
    pub(crate) fn prefetch_set(&self, set: usize) {
        std::hint::black_box(self.sets[set].flags);
    }

    /// [`Llc::prefetch_set`] by line address.
    #[inline]
    pub(crate) fn prefetch_addr(&self, addr: LineAddr) {
        self.prefetch_set((addr.0 & self.set_mask) as usize);
    }

    /// The victim-pick RNG state (for scalar-vs-batched differential
    /// tests: identical states prove identical draw order).
    #[inline]
    pub fn rng_state(&self) -> u64 {
        self.rand_state
    }

    /// Lane shifts within the per-set flag word.
    const FV: u32 = 0;
    const FD: u32 = 16;
    const FM: u32 = 32;

    #[inline]
    fn valid_bits(&self, set: usize) -> u16 {
        (self.sets[set].flags >> Self::FV) as u16
    }

    /// Copies a (valid) line out of the set block into register form.
    #[inline]
    fn read_line(&self, set: usize, way: usize) -> LineState {
        let blk = &self.sets[set];
        let w = blk.ways[way];
        let f = blk.flags;
        LineState {
            tag: w.tag,
            dirty: f & (1 << (way as u32 + Self::FD)) != 0,
            in_mlc: f & (1 << (way as u32 + Self::FM)) != 0,
            presence: w.presence,
            meta: w.meta,
        }
    }

    /// Copies the line out of `(set, way)` and invalidates it (fused
    /// `read_line` + valid-clear).
    #[inline]
    fn take_way(&mut self, set: usize, way: usize) -> LineState {
        let line = self.read_line(set, way);
        self.sets[set].flags &= !(1u64 << way);
        line
    }

    /// Replaces the line in `(set, way)` with `line` in one pass,
    /// returning the displaced valid line if any (fused
    /// `evict_way` + `write_line`: one flag-word round trip).
    #[inline]
    fn replace_way(&mut self, set: usize, way: usize, line: LineState) -> Option<EvictedLlcLine> {
        let tag_shift = self.tag_shift;
        self.digests_exact &= line.tag <= u64::from(u16::MAX);
        let blk = &mut self.sets[set];
        let f = blk.flags;
        let bit = 1u64 << way;
        let evicted = if f & bit != 0 {
            let old = blk.ways[way];
            Some(EvictedLlcLine {
                addr: LineAddr((old.tag << tag_shift) | set as u64),
                dirty: f & (bit << Self::FD) != 0,
                meta: old.meta,
                was_in_mlc: f & (bit << Self::FM) != 0,
                presence: old.presence,
            })
        } else {
            None
        };
        blk.ways[way] = WayLine {
            tag: line.tag,
            presence: line.presence,
            meta: line.meta,
        };
        blk.tag16[way] = line.tag as u16;
        let mut nf = f | bit;
        nf = (nf & !(bit << Self::FD)) | (u64::from(line.dirty) << (way as u32 + Self::FD));
        nf = (nf & !(bit << Self::FM)) | (u64::from(line.in_mlc) << (way as u32 + Self::FM));
        blk.flags = nf;
        evicted
    }

    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        // Two-level scan: a branchless full-width compare of the 16-bit
        // tag digests (one vector op over the header's padded 16-lane
        // stripe) narrows to the rare candidates, which are then
        // verified against the full tags. Purely a speed structure — a
        // digest match never decides residency on its own.
        let blk = &self.sets[set];
        let d = tag as u16;
        let mut cand = 0u16;
        for (w, &t) in blk.tag16.iter().enumerate() {
            cand |= u16::from(t == d) << w;
        }
        cand &= (blk.flags >> Self::FV) as u16;
        if cand == 0 {
            return None;
        }
        if self.digests_exact && tag <= u64::from(u16::MAX) {
            return Some(cand.trailing_zeros() as usize);
        }
        while cand != 0 {
            let w = cand.trailing_zeros() as usize;
            if blk.ways[w].tag == tag {
                return Some(w);
            }
            cand &= cand - 1;
        }
        None
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic, cheap, good enough for victim picks.
        let mut x = self.rand_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rand_state = x;
        x
    }

    /// Picks the allocation victim way within `mask`: an invalid way if
    /// one exists, otherwise a (deterministic-)random valid way. Real
    /// Skylake LLCs run quad-age/NRU *approximations* of LRU; modelling
    /// them as exact LRU would give live lines unrealistic immunity
    /// against streams of dead lines (and make DDIO allocation bursts
    /// leak-free), so the random choice is the more faithful abstraction.
    fn victim_way(&mut self, set: usize, mask: WayMask) -> usize {
        debug_assert!(!mask.is_empty(), "allocation mask must be non-empty");
        // Invalid ways within the mask, lowest first.
        let free = !self.valid_bits(set) & mask.bits();
        if free != 0 {
            return free.trailing_zeros() as usize;
        }
        let n = mask.count() as u64;
        let r = self.next_rand();
        // `% n` must be preserved bit-for-bit (victim picks pin the golden
        // tables), but the hot masks (DCA, inclusive: 2 ways) admit the
        // identical power-of-two fast path without the hardware divide.
        let pick = if n.is_power_of_two() {
            (r & (n - 1)) as u32
        } else if n == LLC_WAYS as u64 {
            // The full-mask (CLOS ALL) pick: a literal divisor lets the
            // compiler strength-reduce the hot `%` to multiply/shift.
            (r % LLC_WAYS as u64) as u32
        } else {
            (r % n) as u32
        };
        // The pick'th set bit of the mask, lowest first (branch-free
        // replacement for `iter_ways().nth(pick)` on this hot path).
        let mut bits = mask.bits();
        for _ in 0..pick {
            bits &= bits - 1;
        }
        bits.trailing_zeros() as usize
    }

    /// Core-side lookup (on an MLC miss). On a hit the line is brought
    /// into the reading core's MLC by the caller, so the LLC copy becomes
    /// LLC-inclusive and — if it is not already in an inclusive way —
    /// migrates there (observation **O1**).
    pub fn core_read(&mut self, core: CoreId, addr: LineAddr) -> LlcReadResult {
        let (set, tag) = self.split(addr);
        self.core_read_at(core, set, tag)
    }

    /// [`Llc::core_read`] with the `(set, tag)` decomposition precomputed
    /// by a run walker (see [`crate::walk::SetTagWalk`]).
    #[inline]
    pub(crate) fn core_read_at(&mut self, core: CoreId, set: usize, tag: u64) -> LlcReadResult {
        let Some(way) = self.find_way(set, tag) else {
            return LlcReadResult::Miss;
        };
        let core_bit = 1u32 << core.index();
        let from_dca_way = self.dca_mask.contains_way(way);
        let inclusive_mask = self.inclusive_mask;

        let blk = &mut self.sets[set];
        let s = &mut blk.ways[way];
        let io_first_consume = s.meta.io && !s.meta.consumed;
        s.meta.consumed = true;

        if inclusive_mask.contains_way(way) {
            // Already in an inclusive way: just gain MLC residency.
            s.presence |= core_bit;
            let meta = s.meta;
            blk.flags |= 1u64 << (way as u32 + Self::FM);
            return LlcReadResult::Hit {
                migrated: false,
                from_dca_way,
                io_first_consume,
                evicted: None,
                meta,
            };
        }

        // Migrate to an inclusive way (C1). Copy out, free the old way,
        // evict the inclusive-way victim, install.
        let moved = self.take_way(set, way);
        let target = self.victim_way(set, inclusive_mask);
        let evicted = self.replace_way(
            set,
            target,
            LineState {
                tag: moved.tag,
                dirty: moved.dirty,
                in_mlc: true,
                presence: core_bit,
                meta: moved.meta,
            },
        );
        LlcReadResult::Hit {
            migrated: true,
            from_dca_way,
            io_first_consume,
            evicted,
            meta: moved.meta,
        }
    }

    /// Registers an MLC fill that missed the LLC in the extended
    /// directory. Returns a forced back-invalidation if the directory set
    /// was full.
    pub fn register_mlc_fill(&mut self, core: CoreId, addr: LineAddr) -> Option<ExtDirEviction> {
        let (set, tag) = self.split(addr);
        self.register_mlc_fill_at(core, set, tag)
    }

    /// [`Llc::register_mlc_fill`] with a precomputed `(set, tag)`.
    #[inline]
    pub(crate) fn register_mlc_fill_at(
        &mut self,
        core: CoreId,
        set: usize,
        tag: u64,
    ) -> Option<ExtDirEviction> {
        let presence = 1u32 << core.index();
        self.ext_dir_insert(set, tag, presence)
    }

    /// Moves MLC-residency tracking of `addr` into the extended directory.
    /// Used when an LLC-inclusive line's *data* copy is evicted: in a
    /// non-inclusive hierarchy the MLC copies survive, so the shared
    /// directory entry is demoted to an extended-directory entry.
    pub fn demote_to_ext_dir(&mut self, addr: LineAddr, presence: u32) -> Option<ExtDirEviction> {
        debug_assert!(presence != 0, "demotion requires MLC residents");
        let (set, tag) = self.split(addr);
        self.ext_dir_insert(set, tag, presence)
    }

    /// Finds the extended-directory way holding `tag`, if any.
    #[inline]
    fn ext_find(&self, set: usize, tag: u64) -> Option<usize> {
        let blk = &self.sets[set];
        let d = tag as u16;
        let mut cand = 0u16;
        for (w, &t) in blk.ext_tag16.iter().enumerate() {
            cand |= u16::from(t == d) << w;
        }
        cand &= blk.ext_valid;
        if cand == 0 {
            return None;
        }
        if self.digests_exact && tag <= u64::from(u16::MAX) {
            return Some(cand.trailing_zeros() as usize);
        }
        while cand != 0 {
            let w = cand.trailing_zeros() as usize;
            if blk.ext[w].tag == tag {
                return Some(w);
            }
            cand &= cand - 1;
        }
        None
    }

    fn ext_dir_insert(&mut self, set: usize, tag: u64, presence: u32) -> Option<ExtDirEviction> {
        // Existing entry: add presence.
        self.digests_exact &= tag <= u64::from(u16::MAX);
        if let Some(w) = self.ext_find(set, tag) {
            let blk = &mut self.sets[set];
            blk.ext[w].presence |= presence;
            blk.ext_order.touch(w, EXT_DIR_EXCLUSIVE_WAYS);
            return None;
        }
        let tag_shift = self.tag_shift;
        let blk = &mut self.sets[set];
        // Free entry (lowest way first).
        let free = !blk.ext_valid & ((1 << EXT_DIR_EXCLUSIVE_WAYS) - 1);
        if free != 0 {
            let w = free.trailing_zeros() as usize;
            blk.ext[w] = ExtLine { tag, presence };
            blk.ext_tag16[w] = tag as u16;
            blk.ext_valid |= 1 << w;
            blk.ext_order.touch(w, EXT_DIR_EXCLUSIVE_WAYS);
            return None;
        }
        // Evict the LRU extended-directory entry: its MLC copies must be
        // back-invalidated (the directory-conflict behaviour of Yan et al.).
        let victim_idx = blk.ext_order.victim(EXT_DIR_EXCLUSIVE_WAYS);
        let victim_tag = blk.ext[victim_idx].tag;
        let victim_presence = blk.ext[victim_idx].presence;
        blk.ext[victim_idx] = ExtLine { tag, presence };
        blk.ext_tag16[victim_idx] = tag as u16;
        blk.ext_order.touch(victim_idx, EXT_DIR_EXCLUSIVE_WAYS);
        Some(ExtDirEviction {
            addr: LineAddr((victim_tag << tag_shift) | set as u64),
            presence: victim_presence,
        })
    }

    /// Offers an MLC-evicted line to the LLC (the victim-cache fill path).
    ///
    /// `alloc_mask` is the evicting core's CLOS mask: CAT constrains which
    /// ways the victim may be allocated into.
    pub fn mlc_eviction(
        &mut self,
        core: CoreId,
        addr: LineAddr,
        dirty: bool,
        meta: LineMeta,
        alloc_mask: WayMask,
    ) -> MlcEvictionOutcome {
        let (set, tag) = self.split(addr);
        let core_bit = 1u32 << core.index();

        // Case 1: the line is LLC-resident (inclusive ways if in_mlc).
        if let Some(way) = self.find_way(set, tag) {
            let inclusive_way = self.inclusive_mask.contains_way(way);
            let blk = &mut self.sets[set];
            blk.ways[way].presence &= !core_bit;
            if dirty {
                blk.flags |= 1u64 << (way as u32 + Self::FD);
            }
            if blk.ways[way].presence != 0 {
                return MlcEvictionOutcome::StillShared;
            }
            blk.flags &= !(1u64 << (way as u32 + Self::FM));
            // The inclusive ways only hold lines that are *currently*
            // MLC-resident (their shared directory entries are scarce);
            // once the last MLC copy leaves, the line relocates into the
            // evicting core's CLOS ways — which is exactly where DMA
            // bloat lands for consumed I/O lines.
            if !inclusive_way || alloc_mask.contains_way(way) {
                return MlcEvictionOutcome::MergedIntoLlc;
            }
            let moved = self.take_way(set, way);
            let bloat = moved.meta.io && moved.meta.consumed;
            let target = self.victim_way(set, alloc_mask);
            let evicted = self.replace_way(
                set,
                target,
                LineState {
                    tag: moved.tag,
                    dirty: moved.dirty,
                    in_mlc: false,
                    presence: 0,
                    meta: moved.meta,
                },
            );
            return MlcEvictionOutcome::Inserted { bloat, evicted };
        }

        // Case 2: tracked in the extended directory.
        let mut tracked_shared = false;
        if let Some(w) = self.ext_find(set, tag) {
            let blk = &mut self.sets[set];
            blk.ext[w].presence &= !core_bit;
            if blk.ext[w].presence != 0 {
                tracked_shared = true;
            } else {
                blk.ext_valid &= !(1 << w);
            }
        }
        if tracked_shared {
            return MlcEvictionOutcome::StillShared;
        }

        // Case 3: last copy leaves the MLCs — insert as a victim.
        let bloat = meta.io && meta.consumed;
        let way = self.victim_way(set, alloc_mask);
        let evicted = self.replace_way(
            set,
            way,
            LineState {
                tag,
                dirty,
                in_mlc: false,
                presence: 0,
                meta,
            },
        );
        MlcEvictionOutcome::Inserted { bloat, evicted }
    }

    /// DCA-enabled DMA write: write-update in place if cached, otherwise
    /// write-allocate into the DCA ways (CLOS masks do not apply).
    pub fn dma_write(
        &mut self,
        addr: LineAddr,
        owner: WorkloadId,
        device: DeviceId,
    ) -> DmaWriteResult {
        let (set, tag) = self.split(addr);
        self.dma_write_line(set, tag, owner, device)
    }

    /// A run of `len` DCA-enabled DMA writes over `[base, base + len)`,
    /// recording each line's [`DmaWriteResult`] into `out` (appended in
    /// line order) for the hierarchy to post-process.
    ///
    /// The run takes exactly the per-line path [`Llc::dma_write`] takes,
    /// in the same order — eviction and RNG decisions are bit-identical —
    /// but walks the `(set, tag)` stripe incrementally and leaves the
    /// caller's back-invalidation / eviction handling to one deferred
    /// pass. Deferral is sound because every line of the run maps to a
    /// *distinct* set (consecutive addresses, `len <= sets`), so no
    /// line's deferred directory work can be observed by a later line of
    /// the same run; callers with longer runs must chunk at the set
    /// count.
    ///
    /// # Panics
    ///
    /// Debug-asserts `len <= sets`.
    pub fn dma_write_run(
        &mut self,
        base: LineAddr,
        len: u64,
        owner: WorkloadId,
        device: DeviceId,
        out: &mut Vec<(LineAddr, DmaWriteResult)>,
    ) {
        debug_assert!(
            len as usize <= self.geometry.sets(),
            "dma_write_run longer than the set count would alias sets"
        );
        out.reserve(len as usize);
        let mut walk = self.walk(base);
        for l in 0..len {
            let (set, tag) = (walk.set(), walk.tag());
            walk.advance();
            if l + 1 < len {
                // Warm the next line's set block (see `prefetch_set`).
                self.prefetch_set(walk.set());
            }
            let result = self.dma_write_line(set, tag, owner, device);
            out.push((base.offset(l), result));
        }
    }

    /// One DMA-write line with a precomputed `(set, tag)` — the single
    /// implementation behind both the scalar and the run entry points.
    #[inline]
    fn dma_write_line(
        &mut self,
        set: usize,
        tag: u64,
        owner: WorkloadId,
        device: DeviceId,
    ) -> DmaWriteResult {
        let fresh = LineMeta {
            owner,
            io: true,
            consumed: false,
            device: Some(device),
        };

        if let Some(way) = self.find_way(set, tag) {
            // Write update: the line stays where it is.
            let blk = &mut self.sets[set];
            let f = blk.flags;
            let invalidate_presence = if f & (1 << (way as u32 + Self::FM)) != 0 {
                blk.ways[way].presence
            } else {
                0
            };
            blk.ways[way].presence = 0;
            blk.ways[way].meta = fresh;
            blk.flags =
                (f & !(1u64 << (way as u32 + Self::FM))) | (1u64 << (way as u32 + Self::FD));
            return DmaWriteResult::Updated {
                invalidate_presence,
            };
        }

        // MLC-only copies are snooped out before the allocate.
        let mut invalidate_presence = 0;
        if let Some(w) = self.ext_find(set, tag) {
            let blk = &mut self.sets[set];
            invalidate_presence = blk.ext[w].presence;
            blk.ext_valid &= !(1 << w);
        }

        let way = self.victim_way(set, self.dca_mask);
        let evicted = self.replace_way(
            set,
            way,
            LineState {
                tag,
                dirty: true,
                in_mlc: false,
                presence: 0,
                meta: fresh,
            },
        );
        DmaWriteResult::Allocated {
            invalidate_presence,
            evicted,
        }
    }

    /// Snoop-invalidates every cached copy of `addr` (the DCA-disabled DMA
    /// write path: data goes to memory and stale copies are dropped).
    ///
    /// Returns the MLC presence bits the caller must back-invalidate.
    pub fn snoop_invalidate(&mut self, addr: LineAddr) -> u32 {
        let (set, tag) = self.split(addr);
        let mut presence = 0;
        if let Some(way) = self.find_way(set, tag) {
            let blk = &mut self.sets[set];
            presence |= blk.ways[way].presence;
            blk.flags &= !(1u64 << way);
        }
        if let Some(w) = self.ext_find(set, tag) {
            let blk = &mut self.sets[set];
            presence |= blk.ext[w].presence;
            blk.ext_valid &= !(1 << w);
        }
        presence
    }

    /// Device-initiated read probe (egress path).
    pub fn dma_read(&mut self, addr: LineAddr) -> DmaReadResult {
        let (set, tag) = self.split(addr);
        self.dma_read_at(set, tag)
    }

    /// A run of `len` egress read probes over `[base, base + len)`,
    /// recording each line's [`DmaReadResult`] into `out` (appended in
    /// line order). The probe itself mutates nothing; the caller's
    /// `MlcOnly` egress allocations happen in a deferred pass, sound for
    /// the same distinct-sets reason as [`Llc::dma_write_run`].
    ///
    /// # Panics
    ///
    /// Debug-asserts `len <= sets`.
    pub fn dma_read_run(
        &mut self,
        base: LineAddr,
        len: u64,
        out: &mut Vec<(LineAddr, DmaReadResult)>,
    ) {
        debug_assert!(
            len as usize <= self.geometry.sets(),
            "dma_read_run longer than the set count would alias sets"
        );
        out.reserve(len as usize);
        let mut walk = self.walk(base);
        for l in 0..len {
            let result = self.dma_read_at(walk.set(), walk.tag());
            out.push((base.offset(l), result));
            walk.advance();
        }
    }

    /// Remote-socket read probe with a precomputed `(set, tag)`: a core
    /// on *another* socket reading a line homed here. The data is served
    /// from wherever it lives but — unlike [`Llc::core_read_at`] — the
    /// requester gains no MLC residency in this hierarchy, so there is no
    /// migration to an inclusive way, no presence update, and no
    /// directory registration on a miss. The one state change is
    /// consumption: a hit marks an I/O line consumed, exactly like a
    /// local consume, so DMA-leak accounting stays meaningful when the
    /// consumer sits across the UPI link.
    #[inline]
    pub(crate) fn remote_read_at(&mut self, set: usize, tag: u64) -> RemoteReadResult {
        if let Some(way) = self.find_way(set, tag) {
            let from_dca_way = self.dca_mask.contains_way(way);
            let s = &mut self.sets[set].ways[way];
            let io_first_consume = s.meta.io && !s.meta.consumed;
            s.meta.consumed = true;
            return RemoteReadResult::Hit {
                from_dca_way,
                io_first_consume,
                owner: s.meta.owner,
            };
        }
        if self.ext_find(set, tag).is_some() {
            return RemoteReadResult::MlcOnly;
        }
        RemoteReadResult::Miss
    }

    /// [`Llc::dma_read`] with a precomputed `(set, tag)`.
    #[inline]
    fn dma_read_at(&mut self, set: usize, tag: u64) -> DmaReadResult {
        if self.find_way(set, tag).is_some() {
            return DmaReadResult::LlcHit;
        }
        if let Some(w) = self.ext_find(set, tag) {
            return DmaReadResult::MlcOnly {
                presence: self.sets[set].ext[w].presence,
            };
        }
        DmaReadResult::Miss
    }

    /// Models the egress copy of an MLC-only line into an inclusive way
    /// ("I/O cache lines are copied to newly read-allocated cache lines in
    /// inclusive ways, and then DMA-read", §2.2). The MLC copies remain,
    /// so the line becomes LLC-inclusive.
    pub fn egress_allocate(
        &mut self,
        addr: LineAddr,
        meta: LineMeta,
        presence: u32,
    ) -> Option<EvictedLlcLine> {
        let (set, tag) = self.split(addr);
        // Remove the extended-directory entry: residency is now tracked by
        // the shared directory way coupled with the inclusive data way.
        if let Some(w) = self.ext_find(set, tag) {
            self.sets[set].ext_valid &= !(1 << w);
        }
        let way = self.victim_way(set, self.inclusive_mask);
        self.replace_way(
            set,
            way,
            LineState {
                tag,
                dirty: false,
                in_mlc: true,
                presence,
                meta,
            },
        )
    }

    /// Read-only probe for tests.
    pub fn probe(&self, addr: LineAddr) -> Option<ProbeInfo> {
        let (set, tag) = self.split(addr);
        self.find_way(set, tag).map(|way| ProbeInfo {
            way,
            in_mlc: self.sets[set].flags & (1 << (way as u32 + Self::FM)) != 0,
            dirty: self.sets[set].flags & (1 << (way as u32 + Self::FD)) != 0,
            meta: self.sets[set].ways[way].meta,
        })
    }

    /// True if the extended directory tracks `addr` for any core.
    pub fn ext_dir_tracks(&self, addr: LineAddr) -> bool {
        let (set, tag) = self.split(addr);
        self.ext_find(set, tag).is_some()
    }

    /// Number of valid data lines within `mask` across all sets (test and
    /// occupancy-analysis helper).
    pub fn occupancy_in(&self, mask: WayMask) -> usize {
        self.sets
            .iter()
            .map(|blk| (blk.flags as u16 & mask.bits()).count_ones() as usize)
            .sum()
    }

    /// Asserts the structural invariant: every LLC-inclusive line sits in
    /// an inclusive way. Returns the number of inclusive lines checked.
    ///
    /// # Panics
    ///
    /// Panics if the invariant is violated (test helper).
    pub fn assert_inclusive_invariant(&self) -> usize {
        let mut checked = 0;
        for set in 0..self.geometry.sets() {
            let f = self.sets[set].flags;
            let mut m = (f >> Self::FV) as u16 & (f >> Self::FM) as u16;
            while m != 0 {
                let w = m.trailing_zeros() as usize;
                m &= m - 1;
                assert!(
                    self.inclusive_mask.contains_way(w),
                    "inclusive line in non-inclusive way {w} (set {set})"
                );
                assert!(
                    self.sets[set].ways[w].presence != 0,
                    "inclusive line with empty presence"
                );
                checked += 1;
            }
        }
        checked
    }

    /// Snapshots the complete mutable LLC state for a checkpoint.
    ///
    /// Geometry-derived fields (`geometry`, `set_mask`, `tag_shift`) and
    /// the fixed `inclusive_mask` are rebuilt by [`Llc::new`] and are not
    /// serialized — a checkpoint only ever restores into an identically
    /// configured cache, which [`Llc::restore_state`] verifies by shape.
    pub fn save_state(&self) -> LlcState {
        let _rebuilt_by_constructor = (
            &self.geometry,
            &self.set_mask,
            &self.tag_shift,
            &self.inclusive_mask,
        );
        LlcState {
            sets: self
                .sets
                .iter()
                .map(|blk| SetBlockState {
                    flags: blk.flags,
                    ext_valid: blk.ext_valid,
                    tag16: blk.tag16.to_vec(),
                    ext_tag16: blk.ext_tag16.to_vec(),
                    ext_order: blk.ext_order.raw(),
                    ways: blk
                        .ways
                        .iter()
                        .map(|w| (w.tag, w.presence, w.meta))
                        .collect(),
                    ext: blk.ext.iter().map(|e| (e.tag, e.presence)).collect(),
                })
                .collect(),
            digests_exact: self.digests_exact,
            dca_mask: self.dca_mask,
            rand_state: self.rand_state,
        }
    }

    /// Restores a [`Llc::save_state`] snapshot taken from an identically
    /// configured LLC. Returns `false` (without touching any state) if the
    /// snapshot's shape does not match this cache's geometry — the caller
    /// must treat the checkpoint as corrupt and discard it.
    pub fn restore_state(&mut self, st: &LlcState) -> bool {
        let _rebuilt_by_constructor = (
            &self.geometry,
            &self.set_mask,
            &self.tag_shift,
            &self.inclusive_mask,
        );
        if st.sets.len() != self.sets.len()
            || st.sets.iter().any(|s| {
                s.tag16.len() != 16
                    || s.ext_tag16.len() != EXT_DIR_EXCLUSIVE_WAYS
                    || s.ways.len() != LLC_WAYS
                    || s.ext.len() != EXT_DIR_EXCLUSIVE_WAYS
            })
        {
            return false;
        }
        for (blk, s) in self.sets.iter_mut().zip(&st.sets) {
            blk.flags = s.flags;
            blk.ext_valid = s.ext_valid;
            blk.tag16.copy_from_slice(&s.tag16);
            blk.ext_tag16.copy_from_slice(&s.ext_tag16);
            blk.ext_order = Recency::from_raw(s.ext_order);
            for (dst, &(tag, presence, meta)) in blk.ways.iter_mut().zip(&s.ways) {
                *dst = WayLine {
                    tag,
                    presence,
                    meta,
                };
            }
            for (dst, &(tag, presence)) in blk.ext.iter_mut().zip(&s.ext) {
                *dst = ExtLine { tag, presence };
            }
        }
        self.digests_exact = st.digests_exact;
        self.dca_mask = st.dca_mask;
        self.rand_state = st.rand_state;
        true
    }
}

/// One set's checkpointed storage — the serialized mirror of the internal
/// `SetBlock` (fixed arrays flattened to vectors for the codec).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetBlockState {
    /// Valid/dirty/in-MLC flag lanes.
    pub flags: u64,
    /// Extended-directory valid bitmap.
    pub ext_valid: u16,
    /// Data-way tag digests (all 16 lanes).
    pub tag16: Vec<u16>,
    /// Extended-directory tag digests.
    pub ext_tag16: Vec<u16>,
    /// Packed extended-directory LRU permutation.
    pub ext_order: u64,
    /// Data-way records as `(tag, presence, meta)`.
    pub ways: Vec<(u64, u32, LineMeta)>,
    /// Extended-directory records as `(tag, presence)`.
    pub ext: Vec<(u64, u32)>,
}

/// The LLC's complete mutable state — see [`Llc::save_state`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlcState {
    /// Per-set storage.
    pub sets: Vec<SetBlockState>,
    /// Whether every resident tag still fits the 16-bit digests.
    pub digests_exact: bool,
    /// Current DDIO way mask.
    pub dca_mask: WayMask,
    /// Victim-pick RNG state.
    pub rand_state: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::A4Error;

    fn llc() -> Llc {
        Llc::new(LlcGeometry::new(16).expect("valid"))
    }

    fn wl(n: u16) -> WorkloadId {
        WorkloadId(n)
    }

    const DEV: DeviceId = DeviceId(0);
    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);

    #[test]
    fn dma_write_allocates_into_dca_ways_only() {
        let mut llc = llc();
        // Three lines in the same set: 2 DCA ways => third evicts.
        let a = LineAddr(0);
        let b = LineAddr(16);
        let c = LineAddr(32);
        assert!(matches!(
            llc.dma_write(a, wl(0), DEV),
            DmaWriteResult::Allocated { evicted: None, .. }
        ));
        assert!(matches!(
            llc.dma_write(b, wl(0), DEV),
            DmaWriteResult::Allocated { evicted: None, .. }
        ));
        let res = llc.dma_write(c, wl(0), DEV);
        match res {
            DmaWriteResult::Allocated {
                evicted: Some(victim),
                ..
            } => {
                assert!(
                    victim.addr == a || victim.addr == b,
                    "a resident DCA line evicted"
                );
                assert!(
                    victim.is_dma_leak(),
                    "unconsumed I/O eviction is a DMA leak"
                );
                assert!(victim.dirty, "DMA-written lines are modified");
            }
            other => panic!("expected allocation with eviction, got {other:?}"),
        }
        let survivors = [a, b, c]
            .iter()
            .filter(|&&l| llc.probe(l).is_some())
            .count();
        assert_eq!(survivors, 2, "two of three lines fit the two DCA ways");
        let p = llc.probe(c).unwrap();
        assert!(WayMask::DCA.contains_way(p.way));
        assert!(p.meta.io && !p.meta.consumed);
    }

    #[test]
    fn dma_write_updates_in_place_anywhere() {
        let mut llc = llc();
        llc.dma_write(LineAddr(5), wl(0), DEV);
        // Consume => migrates to inclusive way.
        llc.core_read(C0, LineAddr(5));
        let way_before = llc.probe(LineAddr(5)).unwrap().way;
        assert!(WayMask::INCLUSIVE.contains_way(way_before));
        // A second DMA write to the same line updates in place...
        let res = llc.dma_write(LineAddr(5), wl(0), DEV);
        match res {
            DmaWriteResult::Updated {
                invalidate_presence,
            } => {
                assert_eq!(invalidate_presence, 1, "core 0's MLC copy is stale");
            }
            other => panic!("expected update, got {other:?}"),
        }
        let p = llc.probe(LineAddr(5)).unwrap();
        assert_eq!(p.way, way_before, "write update never moves the line");
        assert!(!p.in_mlc, "MLC residency cleared by the snoop");
        assert!(!p.meta.consumed, "line is fresh again");
    }

    #[test]
    fn core_read_of_dca_line_migrates_to_inclusive_way() {
        let mut llc = llc();
        llc.dma_write(LineAddr(7), wl(0), DEV);
        match llc.core_read(C0, LineAddr(7)) {
            LlcReadResult::Hit {
                migrated,
                from_dca_way,
                io_first_consume,
                evicted,
                ..
            } => {
                assert!(migrated);
                assert!(from_dca_way);
                assert!(io_first_consume);
                assert!(evicted.is_none());
            }
            LlcReadResult::Miss => panic!("line was cached"),
        }
        let p = llc.probe(LineAddr(7)).unwrap();
        assert!(WayMask::INCLUSIVE.contains_way(p.way));
        assert!(p.in_mlc);
        assert!(p.meta.consumed);
        llc.assert_inclusive_invariant();
    }

    #[test]
    fn migration_evicts_inclusive_way_victim() {
        let mut llc = llc();
        // Fill both inclusive ways of set 0 via victim inserts.
        let v1 = LineAddr(16);
        let v2 = LineAddr(32);
        let incl = WayMask::INCLUSIVE;
        llc.mlc_eviction(C0, v1, false, LineMeta::cpu(wl(9)), incl);
        llc.mlc_eviction(C0, v2, false, LineMeta::cpu(wl(9)), incl);
        assert_eq!(llc.occupancy_in(incl), 2);
        // DMA-write + consume a third line in the same set.
        llc.dma_write(LineAddr(0), wl(0), DEV);
        match llc.core_read(C0, LineAddr(0)) {
            LlcReadResult::Hit {
                migrated: true,
                evicted: Some(victim),
                ..
            } => {
                assert_eq!(
                    victim.meta.owner,
                    wl(9),
                    "the oblivious workload lost its line"
                );
                assert!(
                    victim.addr == v1 || victim.addr == v2,
                    "an inclusive-way victim"
                );
            }
            other => panic!("expected migration with eviction, got {other:?}"),
        }
        llc.assert_inclusive_invariant();
    }

    #[test]
    fn second_reader_does_not_remigrate() {
        let mut llc = llc();
        llc.dma_write(LineAddr(3), wl(0), DEV);
        llc.core_read(C0, LineAddr(3));
        match llc.core_read(C1, LineAddr(3)) {
            LlcReadResult::Hit {
                migrated,
                io_first_consume,
                ..
            } => {
                assert!(!migrated, "already in an inclusive way");
                assert!(!io_first_consume, "already consumed");
            }
            LlcReadResult::Miss => panic!("cached"),
        }
        let p = llc.probe(LineAddr(3)).unwrap();
        assert!(p.in_mlc);
    }

    #[test]
    fn mlc_eviction_merges_inclusive_line() {
        let mut llc = llc();
        llc.dma_write(LineAddr(3), wl(0), DEV);
        llc.core_read(C0, LineAddr(3));
        llc.core_read(C1, LineAddr(3));
        // First core drops its copy: still shared.
        assert_eq!(
            llc.mlc_eviction(
                C0,
                LineAddr(3),
                false,
                LineMeta::io(wl(0), DEV),
                WayMask::ALL
            ),
            MlcEvictionOutcome::StillShared
        );
        // Second core drops: the line merges into the LLC (stays resident).
        assert_eq!(
            llc.mlc_eviction(
                C1,
                LineAddr(3),
                true,
                LineMeta::io(wl(0), DEV),
                WayMask::ALL
            ),
            MlcEvictionOutcome::MergedIntoLlc
        );
        let p = llc.probe(LineAddr(3)).unwrap();
        assert!(!p.in_mlc);
        assert!(p.dirty, "MLC dirtiness merged in");
        llc.assert_inclusive_invariant();
    }

    #[test]
    fn mlc_eviction_inserts_with_clos_mask_and_flags_bloat() {
        let mut llc = llc();
        let mask = WayMask::from_paper_range(5, 6).unwrap();
        let mut consumed_io = LineMeta::io(wl(1), DEV);
        consumed_io.consumed = true;
        // Track in ext dir first (as a real MLC fill would).
        llc.register_mlc_fill(C0, LineAddr(8));
        match llc.mlc_eviction(C0, LineAddr(8), false, consumed_io, mask) {
            MlcEvictionOutcome::Inserted { bloat, evicted } => {
                assert!(bloat, "consumed I/O line returning to LLC is DMA bloat");
                assert!(evicted.is_none());
            }
            other => panic!("expected insert, got {other:?}"),
        }
        let p = llc.probe(LineAddr(8)).unwrap();
        assert!(mask.contains_way(p.way), "CAT constrains victim insertion");
        assert!(!llc.ext_dir_tracks(LineAddr(8)));
    }

    #[test]
    fn clos_mask_constrains_but_hits_are_global() {
        let mut llc = llc();
        let left = WayMask::from_paper_range(2, 3).unwrap();
        llc.register_mlc_fill(C0, LineAddr(4));
        llc.mlc_eviction(C0, LineAddr(4), false, LineMeta::cpu(wl(0)), left);
        // A core whose CLOS excludes ways 2-3 still hits the line.
        assert!(matches!(
            llc.core_read(C1, LineAddr(4)),
            LlcReadResult::Hit { .. }
        ));
    }

    #[test]
    fn ext_dir_eviction_back_invalidates() {
        let mut llc = llc();
        // Fill all 10 exclusive extended-directory ways of set 0.
        for i in 0..EXT_DIR_EXCLUSIVE_WAYS as u64 {
            assert!(llc.register_mlc_fill(C0, LineAddr(i * 16)).is_none());
        }
        let forced = llc
            .register_mlc_fill(C1, LineAddr(160))
            .expect("dir set is full");
        assert_eq!(forced.addr, LineAddr(0), "LRU entry evicted");
        assert_eq!(forced.presence, 1);
        assert!(!llc.ext_dir_tracks(LineAddr(0)));
        assert!(llc.ext_dir_tracks(LineAddr(160)));
    }

    #[test]
    fn shared_ext_dir_entry_aggregates_presence() {
        let mut llc = llc();
        assert!(llc.register_mlc_fill(C0, LineAddr(4)).is_none());
        assert!(llc.register_mlc_fill(C1, LineAddr(4)).is_none());
        // Dropping one core keeps tracking alive.
        assert_eq!(
            llc.mlc_eviction(C0, LineAddr(4), false, LineMeta::cpu(wl(0)), WayMask::ALL),
            MlcEvictionOutcome::StillShared
        );
        assert!(llc.ext_dir_tracks(LineAddr(4)));
    }

    #[test]
    fn snoop_invalidate_clears_everything() {
        let mut llc = llc();
        llc.dma_write(LineAddr(2), wl(0), DEV);
        llc.core_read(C0, LineAddr(2));
        let presence = llc.snoop_invalidate(LineAddr(2));
        assert_eq!(presence, 1);
        assert!(llc.probe(LineAddr(2)).is_none());
        assert_eq!(llc.snoop_invalidate(LineAddr(2)), 0);
    }

    #[test]
    fn dma_read_paths() {
        let mut llc = llc();
        // LLC hit.
        llc.dma_write(LineAddr(1), wl(0), DEV);
        assert_eq!(llc.dma_read(LineAddr(1)), DmaReadResult::LlcHit);
        // MLC only.
        llc.register_mlc_fill(C0, LineAddr(17));
        assert_eq!(
            llc.dma_read(LineAddr(17)),
            DmaReadResult::MlcOnly { presence: 1 }
        );
        // Miss: no allocation on the pure-memory path (Kurth et al. [36]).
        assert_eq!(llc.dma_read(LineAddr(33)), DmaReadResult::Miss);
        assert!(llc.probe(LineAddr(33)).is_none());
    }

    #[test]
    fn egress_allocate_lands_in_inclusive_way() {
        let mut llc = llc();
        llc.register_mlc_fill(C0, LineAddr(17));
        let meta = LineMeta::cpu(wl(0));
        let evicted = llc.egress_allocate(LineAddr(17), meta, 1);
        assert!(evicted.is_none());
        let p = llc.probe(LineAddr(17)).unwrap();
        assert!(WayMask::INCLUSIVE.contains_way(p.way));
        assert!(p.in_mlc);
        assert!(!llc.ext_dir_tracks(LineAddr(17)));
        llc.assert_inclusive_invariant();
    }

    #[test]
    fn custom_dca_mask_is_honoured() {
        let mut llc = llc();
        let three = WayMask::from_paper_range(0, 2).unwrap();
        llc.set_dca_mask(three);
        for i in 0..3u64 {
            llc.dma_write(LineAddr(i * 16), wl(0), DEV);
        }
        assert_eq!(llc.occupancy_in(three), 3);
        assert_eq!(llc.dca_mask(), three);
    }

    #[test]
    fn geometry_validation_flows_through() {
        assert!(matches!(
            LlcGeometry::new(17),
            Err(A4Error::InvalidConfig { .. })
        ));
    }
}
