//! PCM-style event counters maintained by the hierarchy.
//!
//! A4 is driven entirely by hardware performance counters (§5 of the
//! paper): per-workload LLC hit rates, DCA hit/miss behaviour, memory
//! bandwidth and per-device I/O throughput. [`HierarchyStats`] is the
//! simulator's equivalent of Intel PCM: monotonically increasing counters
//! that the monitoring layer snapshots and diffs once per simulated second.

use crate::config::{MAX_DEVICES, MAX_WORKLOADS};
use a4_model::{DeviceId, WorkloadId};
use serde::{Deserialize, Serialize};

/// Counters attributed to one workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadCounters {
    /// Core accesses that hit the workload's MLC.
    pub mlc_hits: u64,
    /// Core accesses that hit the LLC (MLC misses served on chip).
    pub llc_hits: u64,
    /// Core accesses that missed the LLC and went to memory.
    pub llc_misses: u64,
    /// Lines this workload read from memory (equals `llc_misses` plus
    /// leaked-I/O refetches).
    pub mem_read_lines: u64,
    /// Dirty lines owned by this workload written back to memory.
    pub mem_write_lines: u64,
    /// DMA writes that write-updated a cached line owned by the workload.
    pub dca_updates: u64,
    /// DMA writes that write-allocated into the DCA ways.
    pub dca_allocs: u64,
    /// I/O lines of this workload evicted before consumption (DMA leak).
    pub dma_leaks: u64,
    /// Consumed I/O lines of this workload re-inserted into standard ways
    /// from an MLC (DMA bloat).
    pub dma_bloats: u64,
    /// C1 events: lines migrated into the inclusive ways on core read.
    pub migrations: u64,
    /// Lines owned by this workload evicted from the LLC by anyone.
    pub evictions_suffered: u64,
    /// MLC copies force-invalidated (directory or snoop back-invalidation).
    pub back_invalidations: u64,
    /// I/O lines consumed directly out of a DCA way (the DCA fast path).
    pub dca_consumed: u64,
}

impl WorkloadCounters {
    /// Total core-side accesses.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.mlc_hits + self.llc_hits + self.llc_misses
    }

    /// LLC accesses (= MLC misses).
    #[inline]
    pub fn llc_accesses(&self) -> u64 {
        self.llc_hits + self.llc_misses
    }

    /// LLC misses per LLC access (the paper's "misses per access").
    pub fn llc_miss_rate(&self) -> f64 {
        ratio(self.llc_misses, self.llc_accesses())
    }

    /// LLC hits per LLC access.
    pub fn llc_hit_rate(&self) -> f64 {
        ratio(self.llc_hits, self.llc_accesses())
    }

    /// MLC misses per core access.
    pub fn mlc_miss_rate(&self) -> f64 {
        ratio(self.llc_accesses(), self.accesses())
    }

    /// Overall hit rate of the cache hierarchy (any on-chip hit).
    pub fn chip_hit_rate(&self) -> f64 {
        ratio(self.mlc_hits + self.llc_hits, self.accesses())
    }

    /// Fraction of DCA-allocated lines that leaked before consumption —
    /// the "DCA miss rate" compared against `DMALK_DCA_MS_THR` (T2).
    pub fn dca_leak_rate(&self) -> f64 {
        ratio(self.dma_leaks, self.dca_allocs)
    }

    fn accumulate(&mut self, other: &Self) {
        self.mlc_hits += other.mlc_hits;
        self.llc_hits += other.llc_hits;
        self.llc_misses += other.llc_misses;
        self.mem_read_lines += other.mem_read_lines;
        self.mem_write_lines += other.mem_write_lines;
        self.dca_updates += other.dca_updates;
        self.dca_allocs += other.dca_allocs;
        self.dma_leaks += other.dma_leaks;
        self.dma_bloats += other.dma_bloats;
        self.migrations += other.migrations;
        self.evictions_suffered += other.evictions_suffered;
        self.back_invalidations += other.back_invalidations;
        self.dca_consumed += other.dca_consumed;
    }

    fn minus(&self, older: &Self) -> Self {
        WorkloadCounters {
            mlc_hits: self.mlc_hits - older.mlc_hits,
            llc_hits: self.llc_hits - older.llc_hits,
            llc_misses: self.llc_misses - older.llc_misses,
            mem_read_lines: self.mem_read_lines - older.mem_read_lines,
            mem_write_lines: self.mem_write_lines - older.mem_write_lines,
            dca_updates: self.dca_updates - older.dca_updates,
            dca_allocs: self.dca_allocs - older.dca_allocs,
            dma_leaks: self.dma_leaks - older.dma_leaks,
            dma_bloats: self.dma_bloats - older.dma_bloats,
            migrations: self.migrations - older.migrations,
            evictions_suffered: self.evictions_suffered - older.evictions_suffered,
            back_invalidations: self.back_invalidations - older.back_invalidations,
            dca_consumed: self.dca_consumed - older.dca_consumed,
        }
    }
}

/// Counters attributed to one PCIe device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCounters {
    /// Lines DMA-written by the device (ingress; "PCIe write" in PCM).
    pub dma_write_lines: u64,
    /// Subset of `dma_write_lines` that bypassed the LLC (DCA disabled).
    pub dma_to_memory_lines: u64,
    /// Lines DMA-read by the device (egress).
    pub dma_read_lines: u64,
    /// Write-updates of already-cached lines.
    pub dca_updates: u64,
    /// Write-allocations into the DCA ways.
    pub dca_allocs: u64,
    /// I/O lines written by this device evicted before consumption.
    pub dma_leaks: u64,
}

impl DeviceCounters {
    /// Fraction of this device's DCA allocations that leaked (T2 input).
    pub fn dca_leak_rate(&self) -> f64 {
        ratio(self.dma_leaks, self.dca_allocs)
    }

    fn minus(&self, older: &Self) -> Self {
        DeviceCounters {
            dma_write_lines: self.dma_write_lines - older.dma_write_lines,
            dma_to_memory_lines: self.dma_to_memory_lines - older.dma_to_memory_lines,
            dma_read_lines: self.dma_read_lines - older.dma_read_lines,
            dca_updates: self.dca_updates - older.dca_updates,
            dca_allocs: self.dca_allocs - older.dca_allocs,
            dma_leaks: self.dma_leaks - older.dma_leaks,
        }
    }
}

/// Aggregate counters for the whole hierarchy plus per-workload and
/// per-device breakdowns.
///
/// # Examples
///
/// ```
/// use a4_cache::HierarchyStats;
/// use a4_model::WorkloadId;
///
/// let stats = HierarchyStats::new();
/// assert_eq!(stats.workload(WorkloadId(0)).accesses(), 0);
/// assert_eq!(stats.total.mem_read_lines, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// System-wide totals (sums over all workloads plus unattributed I/O).
    pub total: WorkloadCounters,
    workloads: Vec<WorkloadCounters>,
    devices: Vec<DeviceCounters>,
}

impl Default for HierarchyStats {
    fn default() -> Self {
        Self::new()
    }
}

impl HierarchyStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        HierarchyStats {
            total: WorkloadCounters::default(),
            workloads: vec![WorkloadCounters::default(); MAX_WORKLOADS],
            devices: vec![DeviceCounters::default(); MAX_DEVICES],
        }
    }

    /// Counters of one workload (zeros for out-of-range ids).
    pub fn workload(&self, wl: WorkloadId) -> &WorkloadCounters {
        static ZERO: WorkloadCounters = WorkloadCounters {
            mlc_hits: 0,
            llc_hits: 0,
            llc_misses: 0,
            mem_read_lines: 0,
            mem_write_lines: 0,
            dca_updates: 0,
            dca_allocs: 0,
            dma_leaks: 0,
            dma_bloats: 0,
            migrations: 0,
            evictions_suffered: 0,
            back_invalidations: 0,
            dca_consumed: 0,
        };
        self.workloads.get(wl.index()).unwrap_or(&ZERO)
    }

    pub(crate) fn workload_mut(&mut self, wl: WorkloadId) -> &mut WorkloadCounters {
        let idx = wl.index().min(MAX_WORKLOADS - 1);
        &mut self.workloads[idx]
    }

    /// Counters of one device (zeros for out-of-range ids).
    pub fn device(&self, dev: DeviceId) -> &DeviceCounters {
        static ZERO: DeviceCounters = DeviceCounters {
            dma_write_lines: 0,
            dma_to_memory_lines: 0,
            dma_read_lines: 0,
            dca_updates: 0,
            dca_allocs: 0,
            dma_leaks: 0,
        };
        self.devices.get(dev.index()).unwrap_or(&ZERO)
    }

    pub(crate) fn device_mut(&mut self, dev: DeviceId) -> &mut DeviceCounters {
        let idx = dev.index().min(MAX_DEVICES - 1);
        &mut self.devices[idx]
    }

    /// Total lines moved to/from memory (core misses, write-backs and
    /// DCA-bypassing DMA).
    pub fn memory_lines(&self) -> (u64, u64) {
        (self.total.mem_read_lines, self.total.mem_write_lines)
    }

    /// Sum of DMA write lines over all devices.
    pub fn total_dma_write_lines(&self) -> u64 {
        self.devices.iter().map(|d| d.dma_write_lines).sum()
    }

    /// Computes the per-interval delta `self - older` field by field.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `older` has larger counters (snapshots
    /// must come from the same monotonic run).
    pub fn delta_since(&self, older: &HierarchyStats) -> HierarchyStats {
        let mut out = HierarchyStats::new();
        self.delta_into(older, &mut out);
        out
    }

    /// Computes the per-interval delta `self - older` into `out`, reusing
    /// `out`'s buffers — the allocation-free form of
    /// [`HierarchyStats::delta_since`] for per-interval monitoring paths.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `older` has larger counters (snapshots
    /// must come from the same monotonic run).
    pub fn delta_into(&self, older: &HierarchyStats, out: &mut HierarchyStats) {
        out.total = self.total.minus(&older.total);
        debug_assert_eq!(self.workloads.len(), older.workloads.len());
        out.workloads.clear();
        out.workloads.extend(
            self.workloads
                .iter()
                .zip(&older.workloads)
                .map(|(n, o)| n.minus(o)),
        );
        debug_assert_eq!(self.devices.len(), older.devices.len());
        out.devices.clear();
        out.devices.extend(
            self.devices
                .iter()
                .zip(&older.devices)
                .map(|(n, o)| n.minus(o)),
        );
    }

    /// Overwrites `self` with `other` without allocating (both sides have
    /// the fixed `MAX_WORKLOADS`/`MAX_DEVICES` table sizes, so the copy is
    /// two `memcpy`s) — the snapshot-roll counterpart of
    /// [`HierarchyStats::delta_into`].
    pub fn copy_from(&mut self, other: &HierarchyStats) {
        self.total = other.total;
        debug_assert_eq!(self.workloads.len(), other.workloads.len());
        self.workloads.copy_from_slice(&other.workloads);
        debug_assert_eq!(self.devices.len(), other.devices.len());
        self.devices.copy_from_slice(&other.devices);
    }

    pub(crate) fn bump<F: Fn(&mut WorkloadCounters)>(&mut self, wl: WorkloadId, f: F) {
        f(&mut self.total);
        f(self.workload_mut(wl));
    }

    /// Merges `other` into `self` (used when aggregating shards).
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.total.accumulate(&other.total);
        for (dst, src) in self.workloads.iter_mut().zip(&other.workloads) {
            dst.accumulate(src);
        }
        for (dst, src) in self.devices.iter_mut().zip(&other.devices) {
            dst.dma_write_lines += src.dma_write_lines;
            dst.dma_to_memory_lines += src.dma_to_memory_lines;
            dst.dma_read_lines += src.dma_read_lines;
            dst.dca_updates += src.dca_updates;
            dst.dca_allocs += src.dca_allocs;
            dst.dma_leaks += src.dma_leaks;
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let c = WorkloadCounters::default();
        assert_eq!(c.llc_miss_rate(), 0.0);
        assert_eq!(c.mlc_miss_rate(), 0.0);
        assert_eq!(c.dca_leak_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let c = WorkloadCounters {
            mlc_hits: 60,
            llc_hits: 30,
            llc_misses: 10,
            dca_allocs: 100,
            dma_leaks: 40,
            ..Default::default()
        };
        assert_eq!(c.accesses(), 100);
        assert_eq!(c.llc_accesses(), 40);
        assert!((c.llc_miss_rate() - 0.25).abs() < 1e-12);
        assert!((c.llc_hit_rate() - 0.75).abs() < 1e-12);
        assert!((c.mlc_miss_rate() - 0.4).abs() < 1e-12);
        assert!((c.chip_hit_rate() - 0.9).abs() < 1e-12);
        assert!((c.dca_leak_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn bump_updates_total_and_workload() {
        let mut s = HierarchyStats::new();
        s.bump(WorkloadId(3), |c| c.llc_hits += 2);
        assert_eq!(s.total.llc_hits, 2);
        assert_eq!(s.workload(WorkloadId(3)).llc_hits, 2);
        assert_eq!(s.workload(WorkloadId(4)).llc_hits, 0);
    }

    #[test]
    fn delta_since_subtracts() {
        let mut a = HierarchyStats::new();
        a.bump(WorkloadId(0), |c| c.llc_misses += 5);
        let snapshot = a.clone();
        a.bump(WorkloadId(0), |c| c.llc_misses += 7);
        let d = a.delta_since(&snapshot);
        assert_eq!(d.total.llc_misses, 7);
        assert_eq!(d.workload(WorkloadId(0)).llc_misses, 7);
    }

    #[test]
    fn out_of_range_ids_saturate() {
        let mut s = HierarchyStats::new();
        s.bump(WorkloadId(9999), |c| c.mlc_hits += 1);
        assert_eq!(
            s.workload(WorkloadId(9999)).mlc_hits,
            0,
            "reads clamp to zero view"
        );
        assert_eq!(s.total.mlc_hits, 1);
        let d = s.device(DeviceId(200));
        assert_eq!(d.dma_write_lines, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = HierarchyStats::new();
        let mut b = HierarchyStats::new();
        a.bump(WorkloadId(1), |c| c.llc_hits += 1);
        b.bump(WorkloadId(1), |c| c.llc_hits += 2);
        b.device_mut(DeviceId(0)).dma_write_lines = 9;
        a.merge(&b);
        assert_eq!(a.workload(WorkloadId(1)).llc_hits, 3);
        assert_eq!(a.device(DeviceId(0)).dma_write_lines, 9);
        assert_eq!(a.total_dma_write_lines(), 9);
    }
}
