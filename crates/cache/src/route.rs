//! Cross-socket routing: the UPI interconnect model and the DMA router
//! that steers device traffic to the owning socket's hierarchy.
//!
//! Multi-socket systems keep one [`CacheHierarchy`] per socket and carve
//! the line address space into one region per socket (see
//! [`a4_model::SOCKET_SHIFT`]), so every access can be routed to its home
//! hierarchy with one shift. Crossing sockets costs a [`UpiLink`] hop:
//!
//! * **cores** pay `hop_ns` of extra latency per remote line (charged by
//!   the simulator's execution context),
//! * **devices** route each DMA run through a [`DmaRouter`]; a run whose
//!   buffer is homed on another socket traverses the link, and — the
//!   DDIO-on-NUMA ground truth this model exists to reproduce — a
//!   cross-socket DMA write *cannot* DCA-inject into the remote LLC: it
//!   lands in memory exactly as if the port had DCA disabled.
//!
//! The link itself does per-direction line accounting (read = data pulled
//! toward the requester, write = data pushed to the remote home), which
//! experiments read back via the owning system's accessor.

use crate::hierarchy::CacheHierarchy;
use a4_model::{DeviceId, LineAddr, WorkloadId, LINE_BYTES};

/// The socket interconnect: a configurable hop latency plus per-direction
/// traffic accounting.
///
/// # Examples
///
/// ```
/// use a4_cache::UpiLink;
///
/// let mut upi = UpiLink::new(80);
/// upi.record_read_lines(4);
/// upi.record_write_lines(2);
/// assert_eq!(upi.hop_ns(), 80);
/// assert_eq!(upi.read_bytes(), 4 * 64);
/// assert_eq!(upi.crossed_lines(), 6);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpiLink {
    hop_ns: u64,
    read_lines: u64,
    write_lines: u64,
}

impl UpiLink {
    /// A link whose remote hops cost `hop_ns` nanoseconds each.
    pub fn new(hop_ns: u64) -> Self {
        UpiLink {
            hop_ns,
            read_lines: 0,
            write_lines: 0,
        }
    }

    /// Extra latency of one remote hop, in nanoseconds.
    #[inline]
    pub fn hop_ns(&self) -> u64 {
        self.hop_ns
    }

    /// Records `n` lines pulled across the link toward the requester.
    #[inline]
    pub fn record_read_lines(&mut self, n: u64) {
        self.read_lines += n;
    }

    /// Records `n` lines pushed across the link to the remote home.
    #[inline]
    pub fn record_write_lines(&mut self, n: u64) {
        self.write_lines += n;
    }

    /// Bytes pulled across the link since construction.
    pub fn read_bytes(&self) -> u64 {
        self.read_lines * LINE_BYTES
    }

    /// Bytes pushed across the link since construction.
    pub fn write_bytes(&self) -> u64 {
        self.write_lines * LINE_BYTES
    }

    /// Total lines that crossed the link in either direction.
    pub fn crossed_lines(&self) -> u64 {
        self.read_lines + self.write_lines
    }

    /// Snapshots the link's mutable traffic counters for a checkpoint,
    /// as `(read_lines, write_lines)`.
    pub fn save_state(&self) -> (u64, u64) {
        let _rebuilt_by_constructor = &self.hop_ns;
        (self.read_lines, self.write_lines)
    }

    /// Restores a [`UpiLink::save_state`] snapshot.
    pub fn restore_state(&mut self, st: (u64, u64)) {
        let _rebuilt_by_constructor = &self.hop_ns;
        let (read_lines, write_lines) = st;
        self.read_lines = read_lines;
        self.write_lines = write_lines;
    }
}

/// Routes one device's DMA runs to the home hierarchy of each buffer,
/// charging the [`UpiLink`] for cross-socket runs.
///
/// Built per device step by the simulator (the device's socket is fixed
/// at attach time; the target socket is a function of each buffer
/// address). Single-socket callers can wrap their only hierarchy with
/// [`DmaRouter::local`].
#[derive(Debug)]
pub struct DmaRouter<'a> {
    sockets: &'a mut [CacheHierarchy],
    dev_socket: usize,
    upi: &'a mut UpiLink,
}

impl<'a> DmaRouter<'a> {
    /// A router for a device attached to socket `dev_socket`.
    ///
    /// # Panics
    ///
    /// Panics if `sockets` is empty or `dev_socket` is out of range.
    pub fn new(sockets: &'a mut [CacheHierarchy], dev_socket: usize, upi: &'a mut UpiLink) -> Self {
        assert!(
            dev_socket < sockets.len(),
            "device socket {dev_socket} outside the {}-socket system",
            sockets.len()
        );
        DmaRouter {
            sockets,
            dev_socket,
            upi,
        }
    }

    /// A router over a single hierarchy (socket 0) — the single-socket
    /// form every pre-NUMA call site reduces to.
    pub fn local(hier: &'a mut CacheHierarchy, upi: &'a mut UpiLink) -> Self {
        DmaRouter {
            sockets: std::slice::from_mut(hier),
            dev_socket: 0,
            upi,
        }
    }

    /// The socket the device is attached to.
    #[inline]
    pub fn dev_socket(&self) -> usize {
        self.dev_socket
    }

    /// Home socket of `base`, clamped into the configured socket count
    /// (stray high addresses in hand-built tests fold onto the last
    /// socket rather than panicking).
    #[inline]
    fn home(&self, base: LineAddr) -> usize {
        base.home_socket().min(self.sockets.len() - 1)
    }

    /// Ingress DMA write of `[base, base + len)` — routed
    /// [`CacheHierarchy::dma_write_run`]. A run homed on the device's own
    /// socket behaves exactly as before; a cross-socket run traverses the
    /// UPI link and is forced to the memory path (`dca_enabled = false`):
    /// DDIO cannot inject into a remote socket's LLC.
    pub fn dma_write_run(
        &mut self,
        device: DeviceId,
        base: LineAddr,
        len: u64,
        owner: WorkloadId,
        dca_enabled: bool,
    ) {
        let home = self.home(base);
        if home == self.dev_socket {
            self.sockets[home].dma_write_run(device, base, len, owner, dca_enabled);
        } else {
            self.upi.record_write_lines(len);
            self.sockets[home].dma_write_run(device, base, len, owner, false);
        }
    }

    /// Egress DMA read of `[base, base + len)` — routed
    /// [`CacheHierarchy::dma_read_run`]; cross-socket runs pull their
    /// lines over the UPI link.
    pub fn dma_read_run(&mut self, device: DeviceId, base: LineAddr, len: u64) {
        let home = self.home(base);
        if home != self.dev_socket {
            self.upi.record_read_lines(len);
        }
        self.sockets[home].dma_read_run(device, base, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;
    use a4_model::SOCKET_SHIFT;

    const DEV: DeviceId = DeviceId(0);
    const WL: WorkloadId = WorkloadId(1);

    fn two_sockets() -> Vec<CacheHierarchy> {
        (0..2)
            .map(|_| CacheHierarchy::new(HierarchyConfig::small_test()))
            .collect()
    }

    #[test]
    fn local_runs_keep_dca_and_cross_none() {
        let mut socks = two_sockets();
        let mut upi = UpiLink::new(80);
        let mut router = DmaRouter::new(&mut socks, 0, &mut upi);
        router.dma_write_run(DEV, LineAddr(0x40), 4, WL, true);
        assert_eq!(upi.crossed_lines(), 0);
        assert_eq!(socks[0].stats().workload(WL).dca_allocs, 4);
        assert_eq!(socks[1].stats().device(DEV).dma_write_lines, 0);
    }

    #[test]
    fn remote_writes_cross_and_lose_dca() {
        let mut socks = two_sockets();
        let mut upi = UpiLink::new(80);
        let remote_buf = LineAddr::socket_base(1).offset(0x40);
        let mut router = DmaRouter::new(&mut socks, 0, &mut upi);
        router.dma_write_run(DEV, remote_buf, 4, WL, true);
        assert_eq!(upi.write_bytes(), 4 * 64);
        let d = socks[1].stats().device(DEV);
        assert_eq!(d.dma_write_lines, 4);
        assert_eq!(
            d.dma_to_memory_lines, 4,
            "remote DMA cannot DCA-inject: every line bypasses the LLC"
        );
        assert_eq!(socks[0].stats().device(DEV).dma_write_lines, 0);
    }

    #[test]
    fn remote_reads_cross_the_link() {
        let mut socks = two_sockets();
        let mut upi = UpiLink::new(80);
        let mut router = DmaRouter::new(&mut socks, 1, &mut upi);
        router.dma_read_run(DEV, LineAddr(0x80), 3);
        assert_eq!(upi.read_bytes(), 3 * 64);
        assert_eq!(socks[0].stats().device(DEV).dma_read_lines, 3);
    }

    #[test]
    fn stray_high_addresses_clamp_to_the_last_socket() {
        let mut socks = two_sockets();
        let mut upi = UpiLink::new(0);
        let mut router = DmaRouter::new(&mut socks, 0, &mut upi);
        router.dma_write_run(DEV, LineAddr(7 << SOCKET_SHIFT), 1, WL, true);
        assert_eq!(socks[1].stats().device(DEV).dma_write_lines, 1);
    }
}
