//! Cross-socket routing: the UPI fabric model and the DMA router that
//! steers device traffic to the owning socket's hierarchy.
//!
//! Multi-socket systems keep one [`CacheHierarchy`] per socket and carve
//! the line address space into one region per socket (see
//! [`a4_model::SOCKET_SHIFT`]), so every access can be routed to its home
//! hierarchy with one shift. Crossing sockets traverses the [`UpiFabric`]
//! — one [`UpiLink`] per unordered socket pair, joined by a
//! [`UpiTopology`] that prices each pair in hop counts:
//!
//! * **cores** pay `hops × hop_ns × queue_factor + serialization` of
//!   extra latency per remote line (charged by the simulator's execution
//!   context),
//! * **devices** route each DMA run through a [`DmaRouter`]; a run whose
//!   buffer is homed on another socket traverses the fabric, and — the
//!   DDIO-on-NUMA ground truth this model exists to reproduce — a
//!   cross-socket DMA write *cannot* DCA-inject into the remote LLC: it
//!   lands in memory exactly as if the port had DCA disabled.
//!
//! Each link does per-direction line accounting (read = data pulled
//! toward the requester, write = data pushed to the remote home) and,
//! when configured with a finite per-direction capacity, a loaded-latency
//! model mirroring the DRAM controller's: the previous interval's offered
//! load sets an M/M/1-flavoured inflation factor (`1 + α·ρ/(1−ρ)`,
//! clamped, EWMA-smoothed against interval-to-interval oscillation) for
//! the next interval, plus a per-line serialization term `64 B / capacity`
//! that is charged at any load. Offered load beyond capacity therefore
//! inflates per-line latency until throughput flattens at the link's
//! capacity — the saturation regime the fixed-hop model could never
//! enter.
//!
//! The [`RemoteCache`] is the requester-side half of the story: a small
//! per-socket, direct-mapped cache of remotely-homed lines that lets
//! consumers of a hot remote working set stop re-crossing the fabric for
//! every access. Its coherence contract is deliberately narrow (see the
//! type docs); I/O-buffer reads always bypass it so DMA-delivered data is
//! never served stale.

use crate::hierarchy::CacheHierarchy;
use a4_model::{DeviceId, LineAddr, WorkloadId, LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Queueing sensitivity α of the link's `1 + α·ρ/(1−ρ)` loaded-latency
/// factor (same shape as the DRAM model's).
const UPI_QUEUE_ALPHA: f64 = 0.6;

/// Utilization clamp: ρ is capped here to keep the factor finite.
const UPI_MAX_UTILIZATION: f64 = 0.95;

/// EWMA weight of the newest interval when smoothing the queue factor.
/// The one-interval feedback loop (offered load → next interval's
/// latency) overshoots around the saturation point; averaging the factor
/// with its previous value damps the oscillation while staying fully
/// deterministic — the link-layer analogue of credit pacing.
const UPI_FACTOR_EWMA: f64 = 0.5;

/// One socket-pair interconnect link: a configurable hop latency,
/// per-direction traffic accounting and — when a per-direction capacity
/// is configured — a utilization-driven queueing model.
///
/// # Examples
///
/// ```
/// use a4_cache::UpiLink;
///
/// let mut upi = UpiLink::new(80);
/// upi.record_read_lines(4);
/// upi.record_write_lines(2);
/// assert_eq!(upi.hop_ns(), 80);
/// assert_eq!(upi.read_bytes(), 4 * 64);
/// assert_eq!(upi.crossed_lines(), 6);
/// // Unthrottled links never inflate latency.
/// upi.end_interval(1e-6);
/// assert_eq!(upi.read_factor(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UpiLink {
    hop_ns: u64,
    /// Per-direction capacity in GB/s; `None` = unthrottled (the
    /// historical fixed-hop model).
    gbps: Option<f64>,
    read_lines: u64,
    write_lines: u64,
    interval_read_lines: u64,
    interval_write_lines: u64,
    read_factor: f64,
    write_factor: f64,
}

impl Default for UpiLink {
    fn default() -> Self {
        UpiLink::new(0)
    }
}

/// Serializable snapshot of one [`UpiLink`]'s mutable state (see
/// [`UpiLink::save_state`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpiLinkState {
    /// Cumulative lines pulled toward requesters.
    pub read_lines: u64,
    /// Cumulative lines pushed to remote homes.
    pub write_lines: u64,
    /// Lines pulled in the open interval.
    pub interval_read_lines: u64,
    /// Lines pushed in the open interval.
    pub interval_write_lines: u64,
    /// Current read-direction loaded-latency factor.
    pub read_factor: f64,
    /// Current write-direction loaded-latency factor.
    pub write_factor: f64,
}

impl UpiLink {
    /// An unthrottled link whose remote hops cost `hop_ns` nanoseconds
    /// each — the historical fixed-hop model.
    pub fn new(hop_ns: u64) -> Self {
        UpiLink::with_gbps(hop_ns, None)
    }

    /// A link with an optional per-direction capacity in GB/s. `None`
    /// behaves exactly like [`UpiLink::new`].
    pub fn with_gbps(hop_ns: u64, gbps: Option<f64>) -> Self {
        UpiLink {
            hop_ns,
            gbps,
            read_lines: 0,
            write_lines: 0,
            interval_read_lines: 0,
            interval_write_lines: 0,
            read_factor: 1.0,
            write_factor: 1.0,
        }
    }

    /// Extra latency of one remote hop, in nanoseconds (unloaded).
    #[inline]
    pub fn hop_ns(&self) -> u64 {
        self.hop_ns
    }

    /// Per-direction capacity in GB/s, if the link is throttled.
    #[inline]
    pub fn gbps(&self) -> Option<f64> {
        self.gbps
    }

    /// Records `n` lines pulled across the link toward the requester.
    #[inline]
    pub fn record_read_lines(&mut self, n: u64) {
        self.read_lines += n;
        self.interval_read_lines += n;
    }

    /// Records `n` lines pushed across the link to the remote home.
    #[inline]
    pub fn record_write_lines(&mut self, n: u64) {
        self.write_lines += n;
        self.interval_write_lines += n;
    }

    /// Cumulative lines pulled across the link since construction.
    #[inline]
    pub fn read_lines(&self) -> u64 {
        self.read_lines
    }

    /// Cumulative lines pushed across the link since construction.
    #[inline]
    pub fn write_lines(&self) -> u64 {
        self.write_lines
    }

    /// Bytes pulled across the link since construction.
    pub fn read_bytes(&self) -> u64 {
        self.read_lines * LINE_BYTES
    }

    /// Bytes pushed across the link since construction.
    pub fn write_bytes(&self) -> u64 {
        self.write_lines * LINE_BYTES
    }

    /// Total lines that crossed the link in either direction.
    pub fn crossed_lines(&self) -> u64 {
        self.read_lines + self.write_lines
    }

    /// Current loaded-latency factor (≥ 1) for the given direction —
    /// `1.0` exactly on unthrottled links, so the historical fixed-hop
    /// cost is reproduced bit for bit.
    #[inline]
    pub fn factor(&self, write: bool) -> f64 {
        if write {
            self.write_factor
        } else {
            self.read_factor
        }
    }

    /// Read-direction loaded-latency factor.
    #[inline]
    pub fn read_factor(&self) -> f64 {
        self.read_factor
    }

    /// Write-direction loaded-latency factor.
    #[inline]
    pub fn write_factor(&self) -> f64 {
        self.write_factor
    }

    /// Serialization time of one 64-byte line at the link's capacity, in
    /// nanoseconds (`0.0` on unthrottled links). Charged per line at any
    /// load: this is the term that hard-caps throughput at capacity once
    /// the queue factor has done its part.
    #[inline]
    pub fn ser_ns(&self) -> f64 {
        match self.gbps {
            Some(gbps) => LINE_BYTES as f64 / gbps,
            None => 0.0,
        }
    }

    /// Closes the current accounting interval of `dt_secs` seconds:
    /// derives next interval's per-direction loaded-latency factors from
    /// this interval's offered load (one-interval feedback, exactly like
    /// the DRAM controller) and resets the interval counters.
    pub fn end_interval(&mut self, dt_secs: f64) {
        if let Some(gbps) = self.gbps {
            if dt_secs > 0.0 {
                let peak = gbps * 1e9;
                let target = |lines: u64| {
                    let offered = (lines * LINE_BYTES) as f64 / dt_secs;
                    let rho = (offered / peak).min(UPI_MAX_UTILIZATION);
                    1.0 + UPI_QUEUE_ALPHA * rho / (1.0 - rho)
                };
                let blend = |old: f64, new: f64| old + UPI_FACTOR_EWMA * (new - old);
                self.read_factor = blend(self.read_factor, target(self.interval_read_lines));
                self.write_factor = blend(self.write_factor, target(self.interval_write_lines));
            }
        }
        self.interval_read_lines = 0;
        self.interval_write_lines = 0;
    }

    /// Snapshots the link's mutable state for a checkpoint.
    pub fn save_state(&self) -> UpiLinkState {
        let _rebuilt_by_constructor = (&self.hop_ns, &self.gbps);
        UpiLinkState {
            read_lines: self.read_lines,
            write_lines: self.write_lines,
            interval_read_lines: self.interval_read_lines,
            interval_write_lines: self.interval_write_lines,
            read_factor: self.read_factor,
            write_factor: self.write_factor,
        }
    }

    /// Restores a [`UpiLink::save_state`] snapshot.
    pub fn restore_state(&mut self, st: &UpiLinkState) {
        let _rebuilt_by_constructor = (&self.hop_ns, &self.gbps);
        self.read_lines = st.read_lines;
        self.write_lines = st.write_lines;
        self.interval_read_lines = st.interval_read_lines;
        self.interval_write_lines = st.interval_write_lines;
        self.read_factor = st.read_factor;
        self.write_factor = st.write_factor;
    }
}

/// How the sockets of a multi-socket system are wired together, pricing
/// each socket pair in UPI hop counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpiTopology {
    /// Fully connected: every pair is one hop apart. 2-socket systems are
    /// always effectively a mesh, which keeps the historical model's
    /// costs unchanged.
    #[default]
    Mesh,
    /// Sockets on a ring; a pair is `min(|a−b|, n−|a−b|)` hops apart —
    /// the glueless 4-socket Skylake-SP wiring.
    Ring,
}

impl UpiTopology {
    /// Hop count between two distinct sockets of an `n`-socket system.
    pub fn hops(self, a: usize, b: usize, n: usize) -> u64 {
        debug_assert!(a != b && a < n && b < n);
        match self {
            UpiTopology::Mesh => 1,
            UpiTopology::Ring => {
                let d = a.abs_diff(b);
                d.min(n - d) as u64
            }
        }
    }
}

/// The socket interconnect of one system: one [`UpiLink`] per unordered
/// socket pair plus the [`UpiTopology`] pricing each pair in hops.
///
/// Traffic between sockets `a` and `b` is accounted on the pair's own
/// link (per-pair counters — the aggregate-aliasing fix), while latency
/// scales with the pair's hop count. A single-socket fabric has no links
/// and charges nothing.
///
/// # Examples
///
/// ```
/// use a4_cache::{UpiFabric, UpiTopology};
///
/// let mut fabric = UpiFabric::new(4, 80, None, UpiTopology::Ring);
/// fabric.record_read_lines(0, 2, 8);
/// assert_eq!(fabric.link(0, 2).read_bytes(), 8 * 64);
/// assert_eq!(fabric.link(0, 1).read_bytes(), 0);
/// assert_eq!(fabric.hops(0, 2), 2);
/// assert_eq!(fabric.crossed_lines(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UpiFabric {
    sockets: usize,
    topology: UpiTopology,
    /// One link per unordered pair `(a, b)`, `a < b`, in
    /// [`UpiFabric::pairs`] order; empty on single-socket systems.
    links: Vec<UpiLink>,
}

impl Default for UpiFabric {
    /// A single-socket fabric: no links, nothing to charge.
    fn default() -> Self {
        UpiFabric::new(1, 0, None, UpiTopology::Mesh)
    }
}

impl UpiFabric {
    /// A fabric joining `sockets` sockets with identical links.
    ///
    /// # Panics
    ///
    /// Panics if `sockets` is zero.
    pub fn new(sockets: usize, hop_ns: u64, gbps: Option<f64>, topology: UpiTopology) -> Self {
        assert!(sockets > 0, "a system has at least one socket");
        let links = (0..sockets * (sockets - 1) / 2)
            .map(|_| UpiLink::with_gbps(hop_ns, gbps))
            .collect();
        UpiFabric {
            sockets,
            topology,
            links,
        }
    }

    /// Number of sockets the fabric joins.
    #[inline]
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// The hop-count topology.
    #[inline]
    pub fn topology(&self) -> UpiTopology {
        self.topology
    }

    /// All links, in [`UpiFabric::pairs`] order.
    #[inline]
    pub fn links(&self) -> &[UpiLink] {
        &self.links
    }

    /// The unordered socket pairs, in link-index order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.sockets).flat_map(move |a| (a + 1..self.sockets).map(move |b| (a, b)))
    }

    /// Index of pair `(a, b)` into [`UpiFabric::links`].
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either socket is out of range.
    #[inline]
    fn pair_index(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(
            lo != hi && hi < self.sockets,
            "invalid socket pair ({a}, {b})"
        );
        // Row-major upper triangle: row `lo` starts after the
        // `lo` rows of lengths n-1, n-2, ...
        lo * (2 * self.sockets - lo - 1) / 2 + (hi - lo - 1)
    }

    /// The link joining sockets `a` and `b` (order-insensitive).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either socket is out of range.
    #[inline]
    pub fn link(&self, a: usize, b: usize) -> &UpiLink {
        &self.links[self.pair_index(a, b)]
    }

    /// Hop count between sockets `a` and `b`.
    #[inline]
    pub fn hops(&self, a: usize, b: usize) -> u64 {
        self.topology.hops(a, b, self.sockets)
    }

    /// Records `n` lines pulled from home socket `home` toward requester
    /// socket `src` on the pair's link.
    #[inline]
    pub fn record_read_lines(&mut self, src: usize, home: usize, n: u64) {
        let i = self.pair_index(src, home);
        self.links[i].record_read_lines(n);
    }

    /// Records `n` lines pushed from socket `src` to home socket `home`.
    #[inline]
    pub fn record_write_lines(&mut self, src: usize, home: usize, n: u64) {
        let i = self.pair_index(src, home);
        self.links[i].record_write_lines(n);
    }

    /// Extra latency in nanoseconds of moving one line between `src` and
    /// `home` in the given direction, at the pair's current load:
    /// `hops × hop_ns × queue_factor + serialization`. `0.0` only if the
    /// pair's link has zero hop latency and no capacity configured.
    #[inline]
    pub fn extra_ns(&self, src: usize, home: usize, write: bool) -> f64 {
        let link = self.link(src, home);
        self.hops(src, home) as f64 * (link.hop_ns() as f64 * link.factor(write)) + link.ser_ns()
    }

    /// Total lines that crossed any link in either direction.
    pub fn crossed_lines(&self) -> u64 {
        self.links.iter().map(UpiLink::crossed_lines).sum()
    }

    /// Bytes pulled across all links since construction.
    pub fn read_bytes(&self) -> u64 {
        self.links.iter().map(UpiLink::read_bytes).sum()
    }

    /// Bytes pushed across all links since construction.
    pub fn write_bytes(&self) -> u64 {
        self.links.iter().map(UpiLink::write_bytes).sum()
    }

    /// Closes every link's accounting interval (see
    /// [`UpiLink::end_interval`]).
    pub fn end_interval(&mut self, dt_secs: f64) {
        for link in &mut self.links {
            link.end_interval(dt_secs);
        }
    }

    /// Snapshots every link's mutable state for a checkpoint, in link
    /// order.
    pub fn save_state(&self) -> Vec<UpiLinkState> {
        let _rebuilt_by_constructor = (&self.sockets, &self.topology);
        self.links.iter().map(UpiLink::save_state).collect()
    }

    /// Restores a [`UpiFabric::save_state`] snapshot. Returns `false` —
    /// leaving the fabric untouched — if the snapshot's link count does
    /// not match this fabric's shape.
    pub fn restore_state(&mut self, st: &[UpiLinkState]) -> bool {
        let _rebuilt_by_constructor = (&self.sockets, &self.topology);
        if st.len() != self.links.len() {
            return false;
        }
        for (link, s) in self.links.iter_mut().zip(st) {
            link.restore_state(s);
        }
        true
    }
}

/// A small per-socket cache of remotely-homed lines on the *requester*
/// side: consumers of a hot remote working set stop re-crossing the UPI
/// fabric for every access.
///
/// Modelled as a direct-mapped line cache (deterministic, no RNG, no
/// recency state). Its coherence contract is deliberately narrow:
///
/// * only **non-I/O core reads** are served from or fill it — I/O-buffer
///   reads (`read_io` paths) always bypass it, so DMA-delivered data is
///   never served stale;
/// * the requester's own **writes invalidate** its cached copy before
///   crossing the fabric (write-through to the home socket);
/// * cross-socket *shared mutable* buffers are not modelled — every
///   workload here owns the buffers it writes — so remote invalidation
///   traffic is out of scope by construction.
///
/// A capacity of zero disables the cache entirely (every lookup misses,
/// inserts are dropped), which reproduces the historical
/// always-re-cross model.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteCache {
    /// Direct-mapped tags; [`RemoteCache::EMPTY`] marks an empty slot.
    slots: Vec<u64>,
    hits: u64,
    misses: u64,
}

/// Serializable snapshot of one [`RemoteCache`]'s mutable state (see
/// [`RemoteCache::save_state`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemoteCacheState {
    /// Direct-mapped tag array.
    pub slots: Vec<u64>,
    /// Cumulative lookup hits.
    pub hits: u64,
    /// Cumulative lookup misses.
    pub misses: u64,
}

impl RemoteCache {
    /// Sentinel marking an empty slot. Line addresses are bounded by the
    /// socket regions (`MAX_SOCKETS << SOCKET_SHIFT`), far below it.
    const EMPTY: u64 = u64::MAX;

    /// A cache of `lines` direct-mapped slots; zero disables it.
    pub fn new(lines: usize) -> Self {
        RemoteCache {
            slots: vec![Self::EMPTY; lines],
            hits: 0,
            misses: 0,
        }
    }

    /// Configured capacity in lines.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Count of occupied slots.
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|&&s| s != Self::EMPTY).count()
    }

    /// Cumulative lookup hits.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative lookup misses.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    #[inline]
    fn slot_of(&self, addr: LineAddr) -> usize {
        (addr.0 % self.slots.len() as u64) as usize
    }

    /// Whether `addr` is cached; counts the probe as a hit or miss.
    #[inline]
    pub fn lookup(&mut self, addr: LineAddr) -> bool {
        if self.slots.is_empty() {
            self.misses += 1;
            return false;
        }
        let hit = self.slots[self.slot_of(addr)] == addr.0;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Caches `addr`, evicting whatever shared its slot.
    #[inline]
    pub fn insert(&mut self, addr: LineAddr) {
        if self.slots.is_empty() {
            return;
        }
        let slot = self.slot_of(addr);
        self.slots[slot] = addr.0;
    }

    /// Drops `addr` if cached (the requester's own store to the line).
    #[inline]
    pub fn invalidate(&mut self, addr: LineAddr) {
        if self.slots.is_empty() {
            return;
        }
        let slot = self.slot_of(addr);
        if self.slots[slot] == addr.0 {
            self.slots[slot] = Self::EMPTY;
        }
    }

    /// Snapshots the cache's mutable state for a checkpoint.
    pub fn save_state(&self) -> RemoteCacheState {
        RemoteCacheState {
            slots: self.slots.clone(),
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Restores a [`RemoteCache::save_state`] snapshot. Returns `false`
    /// — leaving the cache untouched — on a capacity mismatch.
    pub fn restore_state(&mut self, st: &RemoteCacheState) -> bool {
        if st.slots.len() != self.slots.len() {
            return false;
        }
        self.slots = st.slots.clone();
        self.hits = st.hits;
        self.misses = st.misses;
        true
    }
}

/// Routes one device's DMA runs to the home hierarchy of each buffer,
/// charging the [`UpiFabric`] for cross-socket runs.
///
/// Built per device step by the simulator (the device's socket is fixed
/// at attach time; the target socket is a function of each buffer
/// address). Single-socket callers can wrap their only hierarchy with
/// [`DmaRouter::local`].
#[derive(Debug)]
pub struct DmaRouter<'a> {
    sockets: &'a mut [CacheHierarchy],
    dev_socket: usize,
    upi: &'a mut UpiFabric,
}

impl<'a> DmaRouter<'a> {
    /// A router for a device attached to socket `dev_socket`.
    ///
    /// # Panics
    ///
    /// Panics if `sockets` is empty or `dev_socket` is out of range.
    pub fn new(
        sockets: &'a mut [CacheHierarchy],
        dev_socket: usize,
        upi: &'a mut UpiFabric,
    ) -> Self {
        assert!(
            dev_socket < sockets.len(),
            "device socket {dev_socket} outside the {}-socket system",
            sockets.len()
        );
        DmaRouter {
            sockets,
            dev_socket,
            upi,
        }
    }

    /// A router over a single hierarchy (socket 0) — the single-socket
    /// form every pre-NUMA call site reduces to.
    pub fn local(hier: &'a mut CacheHierarchy, upi: &'a mut UpiFabric) -> Self {
        DmaRouter {
            sockets: std::slice::from_mut(hier),
            dev_socket: 0,
            upi,
        }
    }

    /// The socket the device is attached to.
    #[inline]
    pub fn dev_socket(&self) -> usize {
        self.dev_socket
    }

    /// Home socket of `base`, clamped into the configured socket count
    /// (stray high addresses in hand-built tests fold onto the last
    /// socket rather than panicking).
    #[inline]
    fn home(&self, base: LineAddr) -> usize {
        base.home_socket().min(self.sockets.len() - 1)
    }

    /// Ingress DMA write of `[base, base + len)` — routed
    /// [`CacheHierarchy::dma_write_run`]. A run homed on the device's own
    /// socket behaves exactly as before; a cross-socket run traverses the
    /// fabric and is forced to the memory path (`dca_enabled = false`):
    /// DDIO cannot inject into a remote socket's LLC.
    pub fn dma_write_run(
        &mut self,
        device: DeviceId,
        base: LineAddr,
        len: u64,
        owner: WorkloadId,
        dca_enabled: bool,
    ) {
        let home = self.home(base);
        if home == self.dev_socket {
            self.sockets[home].dma_write_run(device, base, len, owner, dca_enabled);
        } else {
            self.upi.record_write_lines(self.dev_socket, home, len);
            self.sockets[home].dma_write_run(device, base, len, owner, false);
        }
    }

    /// Egress DMA read of `[base, base + len)` — routed
    /// [`CacheHierarchy::dma_read_run`]; cross-socket runs pull their
    /// lines over the fabric.
    pub fn dma_read_run(&mut self, device: DeviceId, base: LineAddr, len: u64) {
        let home = self.home(base);
        if home != self.dev_socket {
            self.upi.record_read_lines(self.dev_socket, home, len);
        }
        self.sockets[home].dma_read_run(device, base, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;
    use a4_model::SOCKET_SHIFT;

    const DEV: DeviceId = DeviceId(0);
    const WL: WorkloadId = WorkloadId(1);

    fn two_sockets() -> Vec<CacheHierarchy> {
        (0..2)
            .map(|_| CacheHierarchy::new(HierarchyConfig::small_test()))
            .collect()
    }

    fn two_socket_fabric() -> UpiFabric {
        UpiFabric::new(2, 80, None, UpiTopology::Mesh)
    }

    #[test]
    fn local_runs_keep_dca_and_cross_none() {
        let mut socks = two_sockets();
        let mut upi = two_socket_fabric();
        let mut router = DmaRouter::new(&mut socks, 0, &mut upi);
        router.dma_write_run(DEV, LineAddr(0x40), 4, WL, true);
        assert_eq!(upi.crossed_lines(), 0);
        assert_eq!(socks[0].stats().workload(WL).dca_allocs, 4);
        assert_eq!(socks[1].stats().device(DEV).dma_write_lines, 0);
    }

    #[test]
    fn remote_writes_cross_and_lose_dca() {
        let mut socks = two_sockets();
        let mut upi = two_socket_fabric();
        let remote_buf = LineAddr::socket_base(1).offset(0x40);
        let mut router = DmaRouter::new(&mut socks, 0, &mut upi);
        router.dma_write_run(DEV, remote_buf, 4, WL, true);
        assert_eq!(upi.write_bytes(), 4 * 64);
        assert_eq!(upi.link(0, 1).write_bytes(), 4 * 64);
        let d = socks[1].stats().device(DEV);
        assert_eq!(d.dma_write_lines, 4);
        assert_eq!(
            d.dma_to_memory_lines, 4,
            "remote DMA cannot DCA-inject: every line bypasses the LLC"
        );
        assert_eq!(socks[0].stats().device(DEV).dma_write_lines, 0);
    }

    #[test]
    fn remote_reads_cross_the_link() {
        let mut socks = two_sockets();
        let mut upi = two_socket_fabric();
        let mut router = DmaRouter::new(&mut socks, 1, &mut upi);
        router.dma_read_run(DEV, LineAddr(0x80), 3);
        assert_eq!(upi.read_bytes(), 3 * 64);
        assert_eq!(socks[0].stats().device(DEV).dma_read_lines, 3);
    }

    #[test]
    fn stray_high_addresses_clamp_to_the_last_socket() {
        let mut socks = two_sockets();
        let mut upi = two_socket_fabric();
        let mut router = DmaRouter::new(&mut socks, 0, &mut upi);
        router.dma_write_run(DEV, LineAddr(7 << SOCKET_SHIFT), 1, WL, true);
        assert_eq!(socks[1].stats().device(DEV).dma_write_lines, 1);
    }

    #[test]
    fn fabric_indexes_every_unordered_pair() {
        let fabric = UpiFabric::new(4, 80, None, UpiTopology::Mesh);
        let pairs: Vec<_> = fabric.pairs().collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(fabric.links().len(), 6);
        // pair_index is consistent with pairs() order and order-blind.
        for (i, (a, b)) in pairs.iter().copied().enumerate() {
            assert_eq!(fabric.pair_index(a, b), i);
            assert_eq!(fabric.pair_index(b, a), i);
        }
        assert!(UpiFabric::new(1, 80, None, UpiTopology::Mesh)
            .links()
            .is_empty());
    }

    #[test]
    fn traffic_lands_on_the_pair_link_only() {
        let mut fabric = UpiFabric::new(4, 80, None, UpiTopology::Mesh);
        fabric.record_read_lines(3, 1, 5);
        fabric.record_write_lines(1, 3, 2);
        assert_eq!(fabric.link(1, 3).read_lines(), 5);
        assert_eq!(fabric.link(1, 3).write_lines(), 2);
        for (a, b) in [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)] {
            assert_eq!(fabric.link(a, b).crossed_lines(), 0, "link ({a},{b})");
        }
        assert_eq!(fabric.crossed_lines(), 7);
    }

    #[test]
    fn ring_topology_counts_shortest_way_around() {
        let ring = UpiTopology::Ring;
        assert_eq!(ring.hops(0, 1, 4), 1);
        assert_eq!(ring.hops(0, 2, 4), 2);
        assert_eq!(ring.hops(0, 3, 4), 1, "wrap-around is shorter");
        assert_eq!(ring.hops(1, 3, 4), 2);
        assert_eq!(UpiTopology::Mesh.hops(0, 3, 4), 1);
        let fabric = UpiFabric::new(4, 100, None, UpiTopology::Ring);
        // Two hops double the unloaded latency.
        assert_eq!(fabric.extra_ns(0, 2, false), 200.0);
        assert_eq!(fabric.extra_ns(0, 3, false), 100.0);
    }

    #[test]
    fn unthrottled_links_reproduce_the_fixed_hop_cost() {
        let mut fabric = UpiFabric::new(2, 80, None, UpiTopology::Mesh);
        fabric.record_read_lines(0, 1, 1_000_000);
        fabric.end_interval(1e-6); // absurd offered load, no capacity
        assert_eq!(fabric.extra_ns(0, 1, false), 80.0);
        assert_eq!(fabric.extra_ns(0, 1, true), 80.0);
    }

    #[test]
    fn offered_load_beyond_capacity_inflates_latency() {
        // 1 GB/s per direction; one 1 µs interval carrying 64 KiB of
        // reads offers 64 GB/s — deep saturation.
        let mut link = UpiLink::with_gbps(80, Some(1.0));
        assert_eq!(link.ser_ns(), 64.0);
        assert_eq!(link.factor(false), 1.0, "idle link starts unloaded");
        link.record_read_lines(1024);
        link.end_interval(1e-6);
        let loaded = link.read_factor();
        assert!(loaded > 1.5, "saturated read factor: {loaded}");
        assert_eq!(link.write_factor(), 1.0, "directions are independent");
        // An idle interval decays the factor back toward 1 (EWMA).
        link.end_interval(1e-6);
        let decayed = link.read_factor();
        assert!(decayed < loaded && decayed > 1.0, "decayed: {decayed}");
    }

    #[test]
    fn fabric_checkpoint_roundtrip_restores_counters_and_factors() {
        let mut fabric = UpiFabric::new(3, 80, Some(2.0), UpiTopology::Ring);
        fabric.record_read_lines(0, 2, 512);
        fabric.record_write_lines(1, 2, 64);
        fabric.end_interval(1e-6);
        fabric.record_read_lines(0, 1, 3); // open-interval state
        let st = fabric.save_state();

        let mut restored = UpiFabric::new(3, 80, Some(2.0), UpiTopology::Ring);
        assert!(restored.restore_state(&st));
        assert_eq!(restored, fabric);
        // Shape mismatches are rejected untouched.
        let mut wrong = UpiFabric::new(2, 80, Some(2.0), UpiTopology::Ring);
        let before = wrong.clone();
        assert!(!wrong.restore_state(&st));
        assert_eq!(wrong, before);
    }

    #[test]
    fn remote_cache_is_direct_mapped_and_invalidates() {
        let mut rc = RemoteCache::new(4);
        let addr = LineAddr::socket_base(1).offset(6);
        assert!(!rc.lookup(addr));
        rc.insert(addr);
        assert!(rc.lookup(addr));
        assert_eq!((rc.hits(), rc.misses()), (1, 1));
        // A conflicting line (same slot modulo capacity) evicts it.
        rc.insert(addr.offset(4));
        assert!(!rc.lookup(addr));
        assert!(rc.lookup(addr.offset(4)));
        // The requester's own store drops the copy.
        rc.invalidate(addr.offset(4));
        assert!(!rc.lookup(addr.offset(4)));
        assert_eq!(rc.occupied(), 0);
    }

    #[test]
    fn zero_capacity_disables_the_remote_cache() {
        let mut rc = RemoteCache::new(0);
        let addr = LineAddr(5);
        rc.insert(addr);
        assert!(!rc.lookup(addr));
        rc.invalidate(addr); // no-op, no panic
        assert_eq!(rc.capacity(), 0);
    }

    #[test]
    fn remote_cache_checkpoint_roundtrip() {
        let mut rc = RemoteCache::new(8);
        rc.insert(LineAddr(3));
        rc.lookup(LineAddr(3));
        rc.lookup(LineAddr(4));
        let st = rc.save_state();
        let mut restored = RemoteCache::new(8);
        assert!(restored.restore_state(&st));
        assert_eq!(restored, rc);
        let mut wrong = RemoteCache::new(4);
        assert!(!wrong.restore_state(&st), "capacity mismatch is rejected");
    }
}
