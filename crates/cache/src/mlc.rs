//! The private Mid-Level Cache (L2) of one core.
//!
//! In the non-inclusive Skylake hierarchy the MLC is where core misses are
//! filled *first* (bypassing the LLC); the LLC only receives lines when the
//! MLC evicts them. The MLC is a plain set-associative LRU cache — all the
//! exotic behaviour lives in the LLC and its directory.

use crate::meta::LineMeta;
use crate::MlcGeometry;
use a4_model::LineAddr;

/// A line evicted from an MLC, to be offered to the LLC as a victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedMlcLine {
    /// Address of the evicted line.
    pub addr: LineAddr,
    /// True if the MLC copy was modified.
    pub dirty: bool,
    /// Metadata carried by the line.
    pub meta: LineMeta,
}

#[derive(Debug, Clone, Copy)]
struct MlcLine {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
    meta: LineMeta,
}

const INVALID: MlcLine = MlcLine {
    tag: 0,
    valid: false,
    dirty: false,
    lru: 0,
    meta: LineMeta {
        owner: a4_model::WorkloadId(0),
        io: false,
        consumed: true,
        device: None,
    },
};

/// One core's private mid-level cache.
///
/// # Examples
///
/// ```
/// use a4_cache::{LineMeta, Mlc, MlcGeometry};
/// use a4_model::{LineAddr, WorkloadId};
///
/// let mut mlc = Mlc::new(MlcGeometry::new(8, 2)?);
/// let meta = LineMeta::cpu(WorkloadId(0));
/// assert!(mlc.fill(LineAddr(1), meta, false).is_none());
/// assert!(mlc.lookup(LineAddr(1), false));
/// assert!(!mlc.lookup(LineAddr(2), false));
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mlc {
    geometry: MlcGeometry,
    lines: Vec<MlcLine>,
    tick: u64,
    live: usize,
}

impl Mlc {
    /// Creates an empty MLC with the given geometry.
    pub fn new(geometry: MlcGeometry) -> Self {
        Mlc {
            geometry,
            lines: vec![INVALID; geometry.sets() * geometry.ways()],
            tick: 0,
            live: 0,
        }
    }

    #[inline]
    fn set_range(&self, addr: LineAddr) -> (usize, u64) {
        let set = addr.set_index(self.geometry.sets());
        let tag = addr.tag(self.geometry.sets());
        (set * self.geometry.ways(), tag)
    }

    /// Looks up `addr`; on a hit updates recency and, for `write`, marks
    /// the line dirty. Returns whether it hit.
    pub fn lookup(&mut self, addr: LineAddr, write: bool) -> bool {
        let (base, tag) = self.set_range(addr);
        self.tick += 1;
        for line in &mut self.lines[base..base + self.geometry.ways()] {
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= write;
                return true;
            }
        }
        false
    }

    /// True if the line is present (no recency update).
    pub fn contains(&self, addr: LineAddr) -> bool {
        let (base, tag) = self.set_range(addr);
        self.lines[base..base + self.geometry.ways()]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Returns the metadata of a resident line, if present.
    pub fn meta(&self, addr: LineAddr) -> Option<LineMeta> {
        let (base, tag) = self.set_range(addr);
        self.lines[base..base + self.geometry.ways()]
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| l.meta)
    }

    /// Inserts a line, returning the evicted victim if the set was full.
    ///
    /// Filling a line that is already present updates it in place and
    /// returns `None`.
    pub fn fill(&mut self, addr: LineAddr, meta: LineMeta, dirty: bool) -> Option<EvictedMlcLine> {
        let (base, tag) = self.set_range(addr);
        let ways = self.geometry.ways();
        self.tick += 1;
        let set = &mut self.lines[base..base + ways];

        // Already present: refresh in place.
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            line.dirty |= dirty;
            line.meta = meta;
            return None;
        }

        // Free way if any.
        if let Some(line) = set.iter_mut().find(|l| !l.valid) {
            *line = MlcLine {
                tag,
                valid: true,
                dirty,
                lru: self.tick,
                meta,
            };
            self.live += 1;
            return None;
        }

        // Evict LRU.
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            .expect("mlc set has at least one way");
        let victim = set[victim_idx];
        set[victim_idx] = MlcLine {
            tag,
            valid: true,
            dirty,
            lru: self.tick,
            meta,
        };
        let sets = self.geometry.sets();
        let set_index = base / ways;
        let addr = LineAddr((victim.tag << sets.trailing_zeros()) | set_index as u64);
        Some(EvictedMlcLine {
            addr,
            dirty: victim.dirty,
            meta: victim.meta,
        })
    }

    /// Invalidates a line (back-invalidation or DMA snoop). Returns the
    /// dropped line's `(dirty, meta)` if it was present.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<(bool, LineMeta)> {
        let (base, tag) = self.set_range(addr);
        for line in &mut self.lines[base..base + self.geometry.ways()] {
            if line.valid && line.tag == tag {
                line.valid = false;
                self.live -= 1;
                return Some((line.dirty, line.meta));
            }
        }
        None
    }

    /// Number of valid lines currently resident.
    #[inline]
    pub fn live_lines(&self) -> usize {
        self.live
    }

    /// Capacity in lines.
    #[inline]
    pub fn capacity_lines(&self) -> usize {
        self.geometry.sets() * self.geometry.ways()
    }

    /// The cache's geometry.
    #[inline]
    pub fn geometry(&self) -> MlcGeometry {
        self.geometry
    }

    /// Drops every line (workload teardown in tests).
    pub fn flush(&mut self) {
        self.lines.iter_mut().for_each(|l| l.valid = false);
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::WorkloadId;
    use proptest::prelude::*;

    fn meta() -> LineMeta {
        LineMeta::cpu(WorkloadId(0))
    }

    fn tiny() -> Mlc {
        Mlc::new(MlcGeometry::new(4, 2).unwrap())
    }

    #[test]
    fn fill_then_hit() {
        let mut mlc = tiny();
        assert!(!mlc.lookup(LineAddr(5), false));
        assert!(mlc.fill(LineAddr(5), meta(), false).is_none());
        assert!(mlc.lookup(LineAddr(5), false));
        assert_eq!(mlc.live_lines(), 1);
    }

    #[test]
    fn lru_eviction_returns_correct_address() {
        let mut mlc = tiny();
        // Set 0 with 4 sets: addresses 0, 4, 8 map to set 0.
        mlc.fill(LineAddr(0), meta(), false);
        mlc.fill(LineAddr(4), meta(), true);
        // Touch 0 so 4 becomes LRU.
        assert!(mlc.lookup(LineAddr(0), false));
        let evicted = mlc.fill(LineAddr(8), meta(), false).expect("set was full");
        assert_eq!(evicted.addr, LineAddr(4));
        assert!(evicted.dirty);
        assert!(mlc.contains(LineAddr(0)));
        assert!(mlc.contains(LineAddr(8)));
        assert!(!mlc.contains(LineAddr(4)));
    }

    #[test]
    fn refill_updates_in_place() {
        let mut mlc = tiny();
        mlc.fill(LineAddr(3), meta(), false);
        assert!(mlc.fill(LineAddr(3), meta(), true).is_none());
        assert_eq!(mlc.live_lines(), 1);
        let (dirty, _) = mlc.invalidate(LineAddr(3)).unwrap();
        assert!(dirty, "dirty bit must accumulate on refill");
    }

    #[test]
    fn invalidate_removes() {
        let mut mlc = tiny();
        mlc.fill(LineAddr(9), meta(), true);
        assert_eq!(mlc.invalidate(LineAddr(9)), Some((true, meta())));
        assert_eq!(mlc.invalidate(LineAddr(9)), None);
        assert_eq!(mlc.live_lines(), 0);
    }

    #[test]
    fn write_lookup_sets_dirty() {
        let mut mlc = tiny();
        mlc.fill(LineAddr(1), meta(), false);
        assert!(mlc.lookup(LineAddr(1), true));
        assert!(mlc.invalidate(LineAddr(1)).unwrap().0);
    }

    #[test]
    fn flush_clears_everything() {
        let mut mlc = tiny();
        for i in 0..8 {
            mlc.fill(LineAddr(i), meta(), false);
        }
        mlc.flush();
        assert_eq!(mlc.live_lines(), 0);
        assert!(!mlc.contains(LineAddr(0)));
    }

    proptest! {
        /// No set ever holds two copies of the same tag, and occupancy
        /// never exceeds capacity.
        #[test]
        fn set_invariants_hold(addrs in prop::collection::vec(0u64..64, 1..200)) {
            let mut mlc = Mlc::new(MlcGeometry::new(8, 4).unwrap());
            for &a in &addrs {
                mlc.fill(LineAddr(a), meta(), a % 2 == 0);
                prop_assert!(mlc.live_lines() <= mlc.capacity_lines());
            }
            // Every address is either present exactly once or absent:
            // invalidating twice never succeeds twice.
            for &a in &addrs {
                if mlc.invalidate(LineAddr(a)).is_some() {
                    prop_assert!(mlc.invalidate(LineAddr(a)).is_none());
                }
            }
            prop_assert_eq!(mlc.live_lines(), 0);
        }

        /// The evicted address always maps to the same set as the fill.
        #[test]
        fn eviction_address_is_set_local(addrs in prop::collection::vec(0u64..1024, 50..150)) {
            let mut mlc = Mlc::new(MlcGeometry::new(8, 2).unwrap());
            for &a in &addrs {
                if let Some(ev) = mlc.fill(LineAddr(a), meta(), false) {
                    prop_assert_eq!(ev.addr.set_index(8), LineAddr(a).set_index(8));
                    prop_assert!(!mlc.contains(ev.addr));
                }
            }
        }
    }
}
