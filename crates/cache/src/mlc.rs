//! The private Mid-Level Cache (L2) of one core.
//!
//! In the non-inclusive Skylake hierarchy the MLC is where core misses are
//! filled *first* (bypassing the LLC); the LLC only receives lines when the
//! MLC evicts them. The MLC is a plain set-associative LRU cache — all the
//! exotic behaviour lives in the LLC and its directory.

use crate::lru::Recency;
use crate::meta::LineMeta;
use crate::walk::SetTagWalk;
use crate::MlcGeometry;
use a4_model::LineAddr;
use serde::{Deserialize, Serialize};

/// A line evicted from an MLC, to be offered to the LLC as a victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedMlcLine {
    /// Address of the evicted line.
    pub addr: LineAddr,
    /// True if the MLC copy was modified.
    pub dirty: bool,
    /// Metadata carried by the line.
    pub meta: LineMeta,
}

const INVALID_META: LineMeta = LineMeta {
    owner: a4_model::WorkloadId(0),
    io: false,
    consumed: true,
    device: None,
};

/// One way's full record (tag verified against digests + metadata).
#[derive(Debug, Clone, Copy)]
struct MlcWayLine {
    tag: u64,
    meta: LineMeta,
}

const INVALID_WAY: MlcWayLine = MlcWayLine {
    tag: 0,
    meta: INVALID_META,
};

/// One set's complete storage, 64-byte aligned: the scan fields (flag
/// word, recency permutation, padded 16-lane tag digests) fill the first
/// cache line and the way records follow in the same block — `lookup`
/// runs on *every* simulated core access, and a lookup-plus-fill chain
/// now stays within a handful of adjacent cache lines on one page.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(64))]
struct MlcSetBlock {
    /// Valid bitmap in the low lane, dirty bitmap in the high lane (one
    /// load-modify-store instead of two arrays).
    flags: u64,
    /// Exact-LRU recency permutation (see `lru::Recency`) — replaces
    /// per-way tick stores plus the eviction-time minimum scan.
    order: Recency,
    /// Tag digests (lanes beyond the way count unused, never written).
    tag16: [u16; 16],
    /// Way records (entries beyond the way count unused).
    ways: [MlcWayLine; 16],
}

/// One core's private mid-level cache.
///
/// # Examples
///
/// ```
/// use a4_cache::{LineMeta, Mlc, MlcGeometry};
/// use a4_model::{LineAddr, WorkloadId};
///
/// let mut mlc = Mlc::new(MlcGeometry::new(8, 2)?);
/// let meta = LineMeta::cpu(WorkloadId(0));
/// assert!(mlc.fill(LineAddr(1), meta, false).is_none());
/// assert!(mlc.lookup(LineAddr(1), false));
/// assert!(!mlc.lookup(LineAddr(2), false));
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mlc {
    geometry: MlcGeometry,
    // Precomputed address split (sets is a power of two).
    set_mask: u64,
    tag_shift: u32,
    // All per-set storage, one contiguous aligned block per set (see
    // [`MlcSetBlock`]).
    sets: Vec<MlcSetBlock>,
    // True while every resident tag fits 16 bits (see `Llc`).
    digests_exact: bool,
    live: usize,
}

impl Mlc {
    /// Creates an empty MLC with the given geometry.
    pub fn new(geometry: MlcGeometry) -> Self {
        Mlc {
            geometry,
            set_mask: geometry.sets() as u64 - 1,
            tag_shift: geometry.sets().trailing_zeros(),
            sets: vec![
                MlcSetBlock {
                    flags: 0,
                    order: Recency::identity(geometry.ways()),
                    tag16: [0; 16],
                    ways: [INVALID_WAY; 16],
                };
                geometry.sets()
            ],
            digests_exact: true,
            live: 0,
        }
    }

    #[inline]
    fn set_range(&self, addr: LineAddr) -> (usize, u64) {
        ((addr.0 & self.set_mask) as usize, addr.0 >> self.tag_shift)
    }

    /// Lane shift of the dirty bitmap within the per-set flag word.
    const FD: u32 = 32;

    /// Finds the way of `tag` within `set`, if resident.
    #[inline]
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        // Two-level scan: branchless full-width digest compare (one
        // vector op over the header's padded 16-lane stripe) narrows to
        // candidates verified against the full tags.
        let blk = &self.sets[set];
        let d = tag as u16;
        let mut cand = 0u32;
        for (w, &t) in blk.tag16.iter().enumerate() {
            cand |= u32::from(t == d) << w;
        }
        cand &= blk.flags as u32 & 0xFFFF;
        if cand == 0 {
            return None;
        }
        if self.digests_exact && tag <= u64::from(u16::MAX) {
            return Some(cand.trailing_zeros() as usize);
        }
        while cand != 0 {
            let w = cand.trailing_zeros() as usize;
            if blk.ways[w].tag == tag {
                return Some(w);
            }
            cand &= cand - 1;
        }
        None
    }

    /// Incremental `(set, tag)` cursor starting at `base`, for batched
    /// lookup/fill sequences over contiguous runs.
    #[inline]
    pub(crate) fn walk(&self, base: LineAddr) -> SetTagWalk {
        SetTagWalk::new(base, self.set_mask, self.tag_shift)
    }

    /// Warms one set's scan header with a discarded early load (see
    /// `Llc::prefetch_set`).
    #[inline]
    pub(crate) fn prefetch_set(&self, set: usize) {
        std::hint::black_box(self.sets[set].flags);
    }

    /// [`Mlc::prefetch_set`] by line address.
    #[inline]
    pub(crate) fn prefetch_addr(&self, addr: LineAddr) {
        self.prefetch_set((addr.0 & self.set_mask) as usize);
    }

    /// The address a [`Mlc::fill_after_miss_at`] into `set` would evict,
    /// if the set is full — a pure peek (no recency update) that lets a
    /// run warm the victim's downstream set before the fill happens.
    #[inline]
    pub(crate) fn peek_victim_addr(&self, set: usize) -> Option<LineAddr> {
        let ways = self.geometry.ways();
        let blk = &self.sets[set];
        let ways_mask = (1u64 << ways) - 1;
        if blk.flags & ways_mask != ways_mask {
            return None;
        }
        let victim = blk.order.victim(ways);
        Some(LineAddr(
            (blk.ways[victim].tag << self.tag_shift) | set as u64,
        ))
    }

    /// Looks up `addr`; on a hit updates recency and, for `write`, marks
    /// the line dirty. Returns whether it hit.
    pub fn lookup(&mut self, addr: LineAddr, write: bool) -> bool {
        let (set, tag) = self.set_range(addr);
        self.lookup_at(set, tag, write)
    }

    /// [`Mlc::lookup`] with a precomputed `(set, tag)` — the run-path
    /// entry point. Full batching (all lookups before all fills) would
    /// fork behaviour: a fill's eviction can invalidate a later line of
    /// the same run, so runs interleave lookup/fill per line and only the
    /// address split is amortized.
    #[inline]
    pub(crate) fn lookup_at(&mut self, set: usize, tag: u64, write: bool) -> bool {
        if let Some(w) = self.find_way(set, tag) {
            let ways = self.geometry.ways();
            let blk = &mut self.sets[set];
            blk.order.touch(w, ways);
            if write {
                blk.flags |= 1u64 << (w as u32 + Self::FD);
            }
            return true;
        }
        false
    }

    /// True if the line is present (no recency update).
    pub fn contains(&self, addr: LineAddr) -> bool {
        let (set, tag) = self.set_range(addr);
        self.find_way(set, tag).is_some()
    }

    /// Returns the metadata of a resident line, if present.
    pub fn meta(&self, addr: LineAddr) -> Option<LineMeta> {
        let (set, tag) = self.set_range(addr);
        self.find_way(set, tag).map(|w| self.sets[set].ways[w].meta)
    }

    /// Inserts a line, returning the evicted victim if the set was full.
    ///
    /// Filling a line that is already present updates it in place and
    /// returns `None`.
    pub fn fill(&mut self, addr: LineAddr, meta: LineMeta, dirty: bool) -> Option<EvictedMlcLine> {
        let (set, tag) = self.set_range(addr);

        // Already present: refresh in place.
        if let Some(w) = self.find_way(set, tag) {
            let ways = self.geometry.ways();
            let blk = &mut self.sets[set];
            blk.ways[w].meta = meta;
            blk.order.touch(w, ways);
            if dirty {
                blk.flags |= 1u64 << (w as u32 + Self::FD);
            }
            return None;
        }
        self.fill_fresh(set, tag, meta, dirty)
    }

    /// [`Mlc::fill`] for a line the caller just proved absent (a
    /// [`Mlc::lookup`] miss with no intervening fill of the same
    /// address): skips the already-present probe.
    pub fn fill_after_miss(
        &mut self,
        addr: LineAddr,
        meta: LineMeta,
        dirty: bool,
    ) -> Option<EvictedMlcLine> {
        let (set, tag) = self.set_range(addr);
        self.fill_after_miss_at(set, tag, meta, dirty)
    }

    /// [`Mlc::fill_after_miss`] with a precomputed `(set, tag)` (see
    /// [`Mlc::lookup_at`] for the run-path batching contract).
    #[inline]
    pub(crate) fn fill_after_miss_at(
        &mut self,
        set: usize,
        tag: u64,
        meta: LineMeta,
        dirty: bool,
    ) -> Option<EvictedMlcLine> {
        debug_assert!(
            self.find_way(set, tag).is_none(),
            "fill_after_miss on a resident line"
        );
        self.fill_fresh(set, tag, meta, dirty)
    }

    fn fill_fresh(
        &mut self,
        set: usize,
        tag: u64,
        meta: LineMeta,
        dirty: bool,
    ) -> Option<EvictedMlcLine> {
        let ways = self.geometry.ways();
        self.digests_exact &= tag <= u64::from(u16::MAX);
        let tag_shift = self.tag_shift;
        let blk = &mut self.sets[set];

        // Free way if any (lowest first).
        let ways_mask = (1u32 << ways) - 1;
        let free = !(blk.flags as u32) & ways_mask;
        if free != 0 {
            let w = free.trailing_zeros() as usize;
            blk.ways[w] = MlcWayLine { tag, meta };
            blk.tag16[w] = tag as u16;
            let bit = 1u64 << w;
            blk.flags = (blk.flags & !(bit << Self::FD))
                | bit
                | (u64::from(dirty) << (w as u32 + Self::FD));
            blk.order.touch(w, ways);
            self.live += 1;
            return None;
        }

        // Evict the exact-LRU way.
        let victim_idx = blk.order.victim(ways);
        let victim = blk.ways[victim_idx];
        let victim_dirty = blk.flags & (1 << (victim_idx as u32 + Self::FD)) != 0;
        blk.ways[victim_idx] = MlcWayLine { tag, meta };
        blk.tag16[victim_idx] = tag as u16;
        let bit = 1u64 << victim_idx;
        blk.flags =
            (blk.flags & !(bit << Self::FD)) | (u64::from(dirty) << (victim_idx as u32 + Self::FD));
        blk.order.touch(victim_idx, ways);
        let addr = LineAddr((victim.tag << tag_shift) | set as u64);
        Some(EvictedMlcLine {
            addr,
            dirty: victim_dirty,
            meta: victim.meta,
        })
    }

    /// Invalidates a line (back-invalidation or DMA snoop). Returns the
    /// dropped line's `(dirty, meta)` if it was present.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<(bool, LineMeta)> {
        let (set, tag) = self.set_range(addr);
        if let Some(w) = self.find_way(set, tag) {
            let blk = &mut self.sets[set];
            blk.flags &= !(1u64 << w);
            self.live -= 1;
            let dirty = blk.flags & (1 << (w as u32 + Self::FD)) != 0;
            return Some((dirty, blk.ways[w].meta));
        }
        None
    }

    /// Number of valid lines currently resident.
    #[inline]
    pub fn live_lines(&self) -> usize {
        self.live
    }

    /// Capacity in lines.
    #[inline]
    pub fn capacity_lines(&self) -> usize {
        self.geometry.sets() * self.geometry.ways()
    }

    /// The cache's geometry.
    #[inline]
    pub fn geometry(&self) -> MlcGeometry {
        self.geometry
    }

    /// Drops every line (workload teardown in tests).
    pub fn flush(&mut self) {
        self.sets
            .iter_mut()
            .for_each(|blk| blk.flags &= !0xFFFF_FFFF);
        self.live = 0;
    }

    /// Snapshots the complete mutable MLC state for a checkpoint.
    pub fn save_state(&self) -> MlcState {
        let _rebuilt_by_constructor = (&self.geometry, &self.set_mask, &self.tag_shift);
        MlcState {
            sets: self
                .sets
                .iter()
                .map(|blk| MlcSetBlockState {
                    flags: blk.flags,
                    order: blk.order.raw(),
                    tag16: blk.tag16.to_vec(),
                    ways: blk.ways.iter().map(|w| (w.tag, w.meta)).collect(),
                })
                .collect(),
            digests_exact: self.digests_exact,
            live: self.live,
        }
    }

    /// Restores a [`Mlc::save_state`] snapshot into this cache.
    ///
    /// Returns `false` (without touching any state) if the snapshot's
    /// shape does not match this cache's geometry.
    pub fn restore_state(&mut self, st: &MlcState) -> bool {
        let _rebuilt_by_constructor = (&self.geometry, &self.set_mask, &self.tag_shift);
        if st.sets.len() != self.sets.len()
            || st
                .sets
                .iter()
                .any(|s| s.tag16.len() != 16 || s.ways.len() != 16)
        {
            return false;
        }
        for (blk, s) in self.sets.iter_mut().zip(&st.sets) {
            blk.flags = s.flags;
            blk.order = Recency::from_raw(s.order);
            blk.tag16.copy_from_slice(&s.tag16);
            for (dst, &(tag, meta)) in blk.ways.iter_mut().zip(&s.ways) {
                *dst = MlcWayLine { tag, meta };
            }
        }
        self.digests_exact = st.digests_exact;
        self.live = st.live;
        true
    }
}

/// Serializable snapshot of one [`MlcSetBlock`] (see [`Mlc::save_state`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlcSetBlockState {
    /// Valid/dirty bitmap word.
    pub flags: u64,
    /// Packed LRU recency permutation ([`Recency::raw`]).
    pub order: u64,
    /// Tag digest lanes (always 16).
    pub tag16: Vec<u16>,
    /// Way records as `(tag, meta)` pairs (always 16).
    pub ways: Vec<(u64, LineMeta)>,
}

/// Serializable snapshot of the complete mutable [`Mlc`] state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlcState {
    /// Per-set storage snapshots.
    pub sets: Vec<MlcSetBlockState>,
    /// True while every resident tag fits 16 bits.
    pub digests_exact: bool,
    /// Number of valid lines resident.
    pub live: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::WorkloadId;
    use proptest::prelude::*;

    fn meta() -> LineMeta {
        LineMeta::cpu(WorkloadId(0))
    }

    fn tiny() -> Mlc {
        Mlc::new(MlcGeometry::new(4, 2).unwrap())
    }

    #[test]
    fn fill_then_hit() {
        let mut mlc = tiny();
        assert!(!mlc.lookup(LineAddr(5), false));
        assert!(mlc.fill(LineAddr(5), meta(), false).is_none());
        assert!(mlc.lookup(LineAddr(5), false));
        assert_eq!(mlc.live_lines(), 1);
    }

    #[test]
    fn lru_eviction_returns_correct_address() {
        let mut mlc = tiny();
        // Set 0 with 4 sets: addresses 0, 4, 8 map to set 0.
        mlc.fill(LineAddr(0), meta(), false);
        mlc.fill(LineAddr(4), meta(), true);
        // Touch 0 so 4 becomes LRU.
        assert!(mlc.lookup(LineAddr(0), false));
        let evicted = mlc.fill(LineAddr(8), meta(), false).expect("set was full");
        assert_eq!(evicted.addr, LineAddr(4));
        assert!(evicted.dirty);
        assert!(mlc.contains(LineAddr(0)));
        assert!(mlc.contains(LineAddr(8)));
        assert!(!mlc.contains(LineAddr(4)));
    }

    #[test]
    fn refill_updates_in_place() {
        let mut mlc = tiny();
        mlc.fill(LineAddr(3), meta(), false);
        assert!(mlc.fill(LineAddr(3), meta(), true).is_none());
        assert_eq!(mlc.live_lines(), 1);
        let (dirty, _) = mlc.invalidate(LineAddr(3)).unwrap();
        assert!(dirty, "dirty bit must accumulate on refill");
    }

    #[test]
    fn invalidate_removes() {
        let mut mlc = tiny();
        mlc.fill(LineAddr(9), meta(), true);
        assert_eq!(mlc.invalidate(LineAddr(9)), Some((true, meta())));
        assert_eq!(mlc.invalidate(LineAddr(9)), None);
        assert_eq!(mlc.live_lines(), 0);
    }

    #[test]
    fn write_lookup_sets_dirty() {
        let mut mlc = tiny();
        mlc.fill(LineAddr(1), meta(), false);
        assert!(mlc.lookup(LineAddr(1), true));
        assert!(mlc.invalidate(LineAddr(1)).unwrap().0);
    }

    #[test]
    fn flush_clears_everything() {
        let mut mlc = tiny();
        for i in 0..8 {
            mlc.fill(LineAddr(i), meta(), false);
        }
        mlc.flush();
        assert_eq!(mlc.live_lines(), 0);
        assert!(!mlc.contains(LineAddr(0)));
    }

    proptest! {
        /// No set ever holds two copies of the same tag, and occupancy
        /// never exceeds capacity.
        #[test]
        fn set_invariants_hold(addrs in prop::collection::vec(0u64..64, 1..200)) {
            let mut mlc = Mlc::new(MlcGeometry::new(8, 4).unwrap());
            for &a in &addrs {
                mlc.fill(LineAddr(a), meta(), a % 2 == 0);
                prop_assert!(mlc.live_lines() <= mlc.capacity_lines());
            }
            // Every address is either present exactly once or absent:
            // invalidating twice never succeeds twice.
            for &a in &addrs {
                if mlc.invalidate(LineAddr(a)).is_some() {
                    prop_assert!(mlc.invalidate(LineAddr(a)).is_none());
                }
            }
            prop_assert_eq!(mlc.live_lines(), 0);
        }

        /// The evicted address always maps to the same set as the fill.
        #[test]
        fn eviction_address_is_set_local(addrs in prop::collection::vec(0u64..1024, 50..150)) {
            let mut mlc = Mlc::new(MlcGeometry::new(8, 2).unwrap());
            for &a in &addrs {
                if let Some(ev) = mlc.fill(LineAddr(a), meta(), false) {
                    prop_assert_eq!(ev.addr.set_index(8), LineAddr(a).set_index(8));
                    prop_assert!(!mlc.contains(ev.addr));
                }
            }
        }
    }
}
