//! Per-line metadata carried through the hierarchy.

use a4_model::{DeviceId, WorkloadId};
use serde::{Deserialize, Serialize};

/// Metadata attached to every cached line.
///
/// The A4 contentions are all *attribution* questions — whose line evicted
/// whose — so every line remembers which workload owns it, whether it holds
/// I/O data, which device wrote it, and whether a core has consumed it
/// since the last DMA write. The consumed flag is what separates a benign
/// eviction from a *DMA leak*.
///
/// # Examples
///
/// ```
/// use a4_cache::LineMeta;
/// use a4_model::{DeviceId, WorkloadId};
///
/// let io = LineMeta::io(WorkloadId(3), DeviceId(0));
/// assert!(io.io && !io.consumed);
/// let cpu = LineMeta::cpu(WorkloadId(1));
/// assert!(!cpu.io && cpu.consumed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineMeta {
    /// Workload the line is attributed to (consumer for I/O lines).
    pub owner: WorkloadId,
    /// True if the line holds DMA-written I/O data.
    pub io: bool,
    /// For I/O lines: has any core read the line since its last DMA write?
    /// Always true for CPU lines (they are born from a core access).
    pub consumed: bool,
    /// Device that DMA-wrote the line, if any.
    pub device: Option<DeviceId>,
}

impl LineMeta {
    /// Metadata for a line created by a core access.
    pub fn cpu(owner: WorkloadId) -> Self {
        LineMeta {
            owner,
            io: false,
            consumed: true,
            device: None,
        }
    }

    /// Metadata for a freshly DMA-written I/O line (not yet consumed).
    pub fn io(owner: WorkloadId, device: DeviceId) -> Self {
        LineMeta {
            owner,
            io: true,
            consumed: false,
            device: Some(device),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        let cpu = LineMeta::cpu(WorkloadId(7));
        assert_eq!(cpu.owner, WorkloadId(7));
        assert!(cpu.consumed);
        assert!(cpu.device.is_none());

        let io = LineMeta::io(WorkloadId(2), DeviceId(1));
        assert!(io.io);
        assert!(!io.consumed);
        assert_eq!(io.device, Some(DeviceId(1)));
    }
}
