//! Scalar-vs-batched differential tests: the run-oriented access paths
//! (`dma_write_run` / `dma_read_run` / `core_*_run`) must be
//! *observationally pure* speed structures. Driving random run sequences
//! through two hierarchies — one on the batched APIs, one on per-line
//! scalar loops — must leave identical stats, identical victim-pick RNG
//! state and identical residency, for any interleaving, run length
//! (including set-count-crossing runs that exercise the chunking), DCA
//! state and CAT programming.

use a4_cache::{CacheHierarchy, HierarchyConfig};
use a4_model::{ClosId, CoreId, DeviceId, LineAddr, WayMask, WorkloadId};
use proptest::prelude::*;

/// One batched run (or control-plane op) of a random sequence.
#[derive(Debug, Clone)]
enum Run {
    CoreRead {
        core: u8,
        base: u64,
        len: u64,
        owner: u16,
    },
    CoreWrite {
        core: u8,
        base: u64,
        len: u64,
        owner: u16,
    },
    CoreReadIo {
        core: u8,
        base: u64,
        len: u64,
        owner: u16,
    },
    DmaWrite {
        base: u64,
        len: u64,
        owner: u16,
        dca: bool,
    },
    DmaRead {
        base: u64,
        len: u64,
    },
    SetMask {
        clos: u8,
        start: usize,
        len: usize,
    },
    Assign {
        core: u8,
        clos: u8,
    },
}

const DEV: DeviceId = DeviceId(0);

/// Runs up to 40 lines long on the 16-set `small_test` LLC: every run
/// class crosses the set count, so the batched paths' chunk boundaries
/// are exercised constantly.
fn run_strategy() -> impl Strategy<Value = Run> {
    let core = 0u8..4;
    let base = 0u64..512;
    let len = 1u64..40;
    let owner = 0u16..4;
    prop_oneof![
        (core.clone(), base.clone(), len.clone(), owner.clone()).prop_map(
            |(core, base, len, owner)| Run::CoreRead {
                core,
                base,
                len,
                owner
            }
        ),
        (core.clone(), base.clone(), len.clone(), owner.clone()).prop_map(
            |(core, base, len, owner)| Run::CoreWrite {
                core,
                base,
                len,
                owner
            }
        ),
        (core.clone(), base.clone(), len.clone(), owner.clone()).prop_map(
            |(core, base, len, owner)| Run::CoreReadIo {
                core,
                base,
                len,
                owner
            }
        ),
        (base.clone(), len.clone(), owner, any::<bool>()).prop_map(|(base, len, owner, dca)| {
            Run::DmaWrite {
                base,
                len,
                owner,
                dca,
            }
        }),
        (base, len).prop_map(|(base, len)| Run::DmaRead { base, len }),
        (0u8..4, 0usize..10, 1usize..6).prop_map(|(clos, start, len)| Run::SetMask {
            clos,
            start,
            len
        }),
        (core, 0u8..4).prop_map(|(core, clos)| Run::Assign { core, clos }),
    ]
}

/// Applies one run through the batched entry points.
fn apply_batched(h: &mut CacheHierarchy, run: &Run) {
    match *run {
        Run::CoreRead {
            core,
            base,
            len,
            owner,
        } => {
            h.core_read_run(CoreId(core), LineAddr(base), len, WorkloadId(owner));
        }
        Run::CoreWrite {
            core,
            base,
            len,
            owner,
        } => {
            h.core_write_run(CoreId(core), LineAddr(base), len, WorkloadId(owner));
        }
        Run::CoreReadIo {
            core,
            base,
            len,
            owner,
        } => {
            h.core_read_io_run(CoreId(core), LineAddr(base), len, WorkloadId(owner));
        }
        Run::DmaWrite {
            base,
            len,
            owner,
            dca,
        } => {
            h.dma_write_run(DEV, LineAddr(base), len, WorkloadId(owner), dca);
        }
        Run::DmaRead { base, len } => {
            h.dma_read_run(DEV, LineAddr(base), len);
        }
        Run::SetMask { .. } | Run::Assign { .. } => apply_control(h, run),
    }
}

/// Applies one run as per-line scalar calls, in line order.
fn apply_scalar(h: &mut CacheHierarchy, run: &Run) {
    match *run {
        Run::CoreRead {
            core,
            base,
            len,
            owner,
        } => {
            for l in 0..len {
                h.core_read(CoreId(core), LineAddr(base).offset(l), WorkloadId(owner));
            }
        }
        Run::CoreWrite {
            core,
            base,
            len,
            owner,
        } => {
            for l in 0..len {
                h.core_write(CoreId(core), LineAddr(base).offset(l), WorkloadId(owner));
            }
        }
        Run::CoreReadIo {
            core,
            base,
            len,
            owner,
        } => {
            for l in 0..len {
                h.core_read_io(CoreId(core), LineAddr(base).offset(l), WorkloadId(owner));
            }
        }
        Run::DmaWrite {
            base,
            len,
            owner,
            dca,
        } => {
            for l in 0..len {
                h.dma_write(DEV, LineAddr(base).offset(l), WorkloadId(owner), dca);
            }
        }
        Run::DmaRead { base, len } => {
            for l in 0..len {
                h.dma_read(DEV, LineAddr(base).offset(l));
            }
        }
        Run::SetMask { .. } | Run::Assign { .. } => apply_control(h, run),
    }
}

/// CAT reprogramming between runs (shared by both sides): the batched
/// paths hoist the CLOS mask per run, so masks changing *between* runs
/// must still be picked up.
fn apply_control(h: &mut CacheHierarchy, run: &Run) {
    match *run {
        Run::SetMask { clos, start, len } => {
            let end = (start + len).min(10);
            if let Ok(mask) = WayMask::from_range(start.min(9), end.max(start.min(9) + 1)) {
                let _ = h.clos_mut().set_mask(ClosId(clos), mask);
            }
        }
        Run::Assign { core, clos } => {
            let _ = h.clos_mut().assign_core(CoreId(core), ClosId(clos));
        }
        _ => unreachable!("control-plane ops only"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline differential: identical stats tables and identical
    /// RNG state after every run of a random sequence.
    #[test]
    fn batched_runs_match_scalar_loops(
        runs in prop::collection::vec(run_strategy(), 1..120)
    ) {
        let mut batched = CacheHierarchy::new(HierarchyConfig::small_test());
        let mut scalar = CacheHierarchy::new(HierarchyConfig::small_test());
        for (i, run) in runs.iter().enumerate() {
            apply_batched(&mut batched, run);
            apply_scalar(&mut scalar, run);
            prop_assert_eq!(
                batched.llc().rng_state(),
                scalar.llc().rng_state(),
                "RNG draw order diverged at run {} ({:?})", i, run
            );
            prop_assert!(
                batched.stats() == scalar.stats(),
                "stats diverged at run {} ({:?})", i, run
            );
        }
        // Residency must agree everywhere the sequence could have touched.
        for line in 0..560 {
            let addr = LineAddr(line);
            prop_assert_eq!(
                batched.llc().probe(addr),
                scalar.llc().probe(addr),
                "LLC residency diverged at {:?}", addr
            );
            prop_assert_eq!(
                batched.llc().ext_dir_tracks(addr),
                scalar.llc().ext_dir_tracks(addr),
                "ext-dir tracking diverged at {:?}", addr
            );
            for core in 0..4 {
                prop_assert_eq!(
                    batched.mlc(CoreId(core)).meta(addr),
                    scalar.mlc(CoreId(core)).meta(addr),
                    "MLC {} residency diverged at {:?}", core, addr
                );
            }
        }
    }
}

/// Zero-length runs are explicit no-ops on every path.
#[test]
fn zero_length_runs_are_noops() {
    let mut h = CacheHierarchy::new(HierarchyConfig::small_test());
    h.dma_write_run(DEV, LineAddr(0), 0, WorkloadId(0), true);
    h.dma_write_run(DEV, LineAddr(0), 0, WorkloadId(0), false);
    h.dma_read_run(DEV, LineAddr(0), 0);
    h.core_read_run(CoreId(0), LineAddr(0), 0, WorkloadId(0));
    let zero = CacheHierarchy::new(HierarchyConfig::small_test());
    assert!(h.stats() == zero.stats());
    assert_eq!(h.llc().rng_state(), zero.llc().rng_state());
}

/// A run much longer than the set count (chunked internally) matches the
/// scalar loop exactly — the wrap-around aliasing case.
#[test]
fn set_wrapping_runs_match() {
    let mut batched = CacheHierarchy::new(HierarchyConfig::small_test());
    let mut scalar = CacheHierarchy::new(HierarchyConfig::small_test());
    // 3.5 sweeps of the 16-set LLC in one run.
    batched.dma_write_run(DEV, LineAddr(5), 56, WorkloadId(1), true);
    for l in 0..56 {
        scalar.dma_write(DEV, LineAddr(5).offset(l), WorkloadId(1), true);
    }
    batched.core_read_io_run(CoreId(1), LineAddr(5), 56, WorkloadId(1));
    for l in 0..56 {
        scalar.core_read_io(CoreId(1), LineAddr(5).offset(l), WorkloadId(1));
    }
    assert!(batched.stats() == scalar.stats());
    assert_eq!(batched.llc().rng_state(), scalar.llc().rng_state());
}
