//! Property tests over random operation sequences: the structural
//! invariants of the modelled hierarchy must survive *any* interleaving
//! of core accesses, DMA traffic and CAT reprogramming.

use a4_cache::{CacheHierarchy, HierarchyConfig};
use a4_model::{ClosId, CoreId, DeviceId, LineAddr, WayMask, WorkloadId};
use proptest::prelude::*;

/// One step of a random workload/device interleaving.
#[derive(Debug, Clone)]
enum Op {
    Read { core: u8, line: u64 },
    Write { core: u8, line: u64 },
    ReadIo { core: u8, line: u64 },
    DmaWrite { line: u64, dca: bool },
    DmaRead { line: u64 },
    SetMask { clos: u8, start: usize, len: usize },
    Assign { core: u8, clos: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u64..256).prop_map(|(core, line)| Op::Read { core, line }),
        (0u8..4, 0u64..256).prop_map(|(core, line)| Op::Write { core, line }),
        (0u8..4, 0u64..256).prop_map(|(core, line)| Op::ReadIo { core, line }),
        (0u64..256, any::<bool>()).prop_map(|(line, dca)| Op::DmaWrite { line, dca }),
        (0u64..256).prop_map(|line| Op::DmaRead { line }),
        (0u8..4, 0usize..10, 1usize..6).prop_map(|(clos, start, len)| Op::SetMask {
            clos,
            start,
            len
        }),
        (0u8..4, 0u8..4).prop_map(|(core, clos)| Op::Assign { core, clos }),
    ]
}

fn apply(h: &mut CacheHierarchy, op: &Op) {
    let wl = WorkloadId(0);
    match *op {
        Op::Read { core, line } => {
            h.core_read(CoreId(core), LineAddr(line), wl);
        }
        Op::Write { core, line } => {
            h.core_write(CoreId(core), LineAddr(line), wl);
        }
        Op::ReadIo { core, line } => {
            h.core_read_io(CoreId(core), LineAddr(line), wl);
        }
        Op::DmaWrite { line, dca } => {
            h.dma_write(DeviceId(0), LineAddr(line), wl, dca);
        }
        Op::DmaRead { line } => {
            h.dma_read(DeviceId(0), LineAddr(line));
        }
        Op::SetMask { clos, start, len } => {
            if let Ok(mask) = WayMask::from_range(start, (start + len).min(11)) {
                let _ = h.clos_mut().set_mask(ClosId(clos), mask);
            }
        }
        Op::Assign { core, clos } => {
            let _ = h.clos_mut().assign_core(CoreId(core), ClosId(clos));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The inclusive-way invariant — every LLC-inclusive line sits in
    /// ways 9-10 with a non-empty presence bitmap — holds under any
    /// operation interleaving.
    #[test]
    fn inclusive_invariant_survives_chaos(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut h = CacheHierarchy::new(HierarchyConfig::small_test());
        for op in &ops {
            apply(&mut h, op);
            h.llc().assert_inclusive_invariant();
        }
    }

    /// MLC residency is always consistent with LLC-side tracking: any
    /// line present in some MLC is either an inclusive LLC line or has
    /// an extended-directory entry.
    #[test]
    fn mlc_residency_is_always_tracked(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut h = CacheHierarchy::new(HierarchyConfig::small_test());
        for op in &ops {
            apply(&mut h, op);
        }
        for line in 0..256u64 {
            let addr = LineAddr(line);
            let in_any_mlc = (0..4).any(|c| h.mlc(CoreId(c)).contains(addr));
            if in_any_mlc {
                let tracked_inclusive =
                    h.llc().probe(addr).map(|p| p.in_mlc).unwrap_or(false);
                let tracked_ext = h.llc().ext_dir_tracks(addr);
                prop_assert!(
                    tracked_inclusive || tracked_ext,
                    "line {addr} resident in an MLC but untracked by any directory"
                );
            }
        }
    }

    /// Counter sanity under chaos: hits + misses add up, and no counter
    /// ever exceeds the number of operations that could have produced it.
    #[test]
    fn counters_are_consistent(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut h = CacheHierarchy::new(HierarchyConfig::small_test());
        let mut core_ops = 0u64;
        let mut dma_writes = 0u64;
        for op in &ops {
            match op {
                Op::Read { .. } | Op::Write { .. } | Op::ReadIo { .. } => core_ops += 1,
                Op::DmaWrite { .. } => dma_writes += 1,
                _ => {}
            }
            apply(&mut h, op);
        }
        let t = &h.stats().total;
        prop_assert_eq!(t.accesses(), core_ops, "every core op is counted exactly once");
        let dev = h.stats().device(DeviceId(0));
        prop_assert_eq!(dev.dma_write_lines, dma_writes);
        prop_assert_eq!(
            dev.dca_allocs + dev.dca_updates + dev.dma_to_memory_lines,
            dma_writes,
            "every DMA write is exactly one of allocate/update/bypass"
        );
        prop_assert!(t.dma_leaks <= dev.dca_allocs, "leaks only from allocations");
    }

    /// DMA writes with DCA disabled never leave a copy in the LLC.
    #[test]
    fn dca_off_never_caches(lines in prop::collection::vec(0u64..128, 1..100)) {
        let mut h = CacheHierarchy::new(HierarchyConfig::small_test());
        for &l in &lines {
            h.dma_write(DeviceId(0), LineAddr(l), WorkloadId(0), false);
            prop_assert!(h.llc().probe(LineAddr(l)).is_none());
        }
    }

    /// CAT masks constrain victim-cache insertions: after confining a
    /// core to a mask and streaming through it, no line owned by that
    /// stream occupies a way outside the mask ∪ inclusive ways.
    #[test]
    fn clos_confines_insertions(start in 2usize..8, len in 1usize..3) {
        let mut h = CacheHierarchy::new(HierarchyConfig::small_test());
        let mask = WayMask::from_range(start, start + len).unwrap();
        h.clos_mut().set_mask(ClosId(1), mask).unwrap();
        h.clos_mut().assign_core(CoreId(0), ClosId(1)).unwrap();
        let wl = WorkloadId(5);
        for l in 0..200u64 {
            h.core_read(CoreId(0), LineAddr(l), wl);
        }
        for l in 0..200u64 {
            if let Some(p) = h.llc().probe(LineAddr(l)) {
                if p.meta.owner == wl {
                    prop_assert!(
                        mask.contains_way(p.way) || WayMask::INCLUSIVE.contains_way(p.way),
                        "line in way {} outside mask {} and inclusive ways",
                        p.way,
                        mask
                    );
                }
            }
        }
    }
}
