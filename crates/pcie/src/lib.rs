//! PCIe substrate for the A4 reproduction.
//!
//! Models the I/O side of the paper's server:
//!
//! * [`PerfCtrlSts`] — the hidden per-root-port register
//!   (`perfctrlsts_0`, offset `0x180` in the Skylake-SP datasheet) whose
//!   `NoSnoopOpWrEn` and `Use_Allocating_Flow_Wr` bits let A4 disable DCA
//!   for a *single device* at runtime (the paper's §4.2 knob),
//! * [`PcieRoot`] — ports, device attachment, and the per-device DCA
//!   resolution the DMA paths consult,
//! * [`NicModel`] — a 100 Gbps-class NIC with per-core Rx rings fed by an
//!   external packet generator (the paper's Pktgen client machine),
//! * [`NvmeModel`] — an NVMe SSD (or RAID-0 array) with submission /
//!   completion queues, an IOPS cap and a link-bandwidth cap, which
//!   together produce the paper's Fig. 5 throughput curve.
//!
//! Devices DMA at cache-line granularity straight into the
//! [`a4_cache::CacheHierarchy`], so every microarchitectural consequence
//! (DCA allocation, write update, DMA leak) falls out of the cache model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod nic;
mod nvme;
mod register;
mod root;

pub use nic::{NicConfig, NicModel, NicState, RxPacket, RxRing};
pub use nvme::{NvmeCommand, NvmeCompletion, NvmeConfig, NvmeModel, NvmeOp, NvmeState};
pub use register::PerfCtrlSts;
pub use root::{PcieRoot, PortState};
