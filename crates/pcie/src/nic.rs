//! NIC model: an external packet generator feeding per-core Rx rings.
//!
//! Matches the paper's setup: a client machine running DPDK Pktgen drives
//! a 100 Gbps ConnectX-6 class NIC at line rate; the NIC DMA-writes each
//! packet (one descriptor line + payload lines) into the next free slot of
//! the target core's Rx ring. When a ring is full the packet is dropped —
//! exactly the back-pressure behaviour that turns slow consumption into
//! packet loss and queueing latency.
//!
//! The DMA path goes through [`a4_cache::CacheHierarchy::dma_write`], so
//! DDIO write-allocate/write-update, DMA leak and all LLC contention
//! effects emerge from the cache model rather than being scripted here.

use a4_cache::DmaRouter;
use a4_model::{A4Error, Bandwidth, DeviceId, LineAddr, Result, SimTime, WorkloadId, LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Static NIC parameters.
///
/// # Examples
///
/// ```
/// use a4_pcie::NicConfig;
///
/// let cfg = NicConfig::connectx6_100g(4, 64, 1024);
/// assert_eq!(cfg.rings, 4);
/// assert_eq!(cfg.payload_lines(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicConfig {
    /// Offered load from the packet generator (long-term average).
    pub rate: Bandwidth,
    /// Wire size of one packet in bytes.
    pub packet_bytes: u64,
    /// Rx descriptor-ring entries per ring.
    pub ring_entries: usize,
    /// Number of Rx rings (one per serving core in the paper's setup).
    pub rings: usize,
    /// Microburst amplitude in `[0, 1)`: the instantaneous rate follows a
    /// square wave `rate x (1 +/- amplitude)` with period
    /// [`NicConfig::burst_period_ns`]. Real line-rate traffic arrives in
    /// bursts (batching in the generator, PCIe/DMA arbitration); without
    /// them the simulated receiver would sit in an artificial all-hit or
    /// all-leak steady state instead of the mixed regime real servers see.
    pub burst_amplitude: f64,
    /// Microburst square-wave period in nanoseconds.
    pub burst_period_ns: u64,
}

impl NicConfig {
    /// A 100 Gbps NIC with `rings` Rx rings of `ring_entries` entries and
    /// `packet_bytes`-byte packets, with default microbursting.
    pub fn connectx6_100g(rings: usize, ring_entries: usize, packet_bytes: u64) -> Self {
        NicConfig {
            rate: Bandwidth::from_gbps(100.0),
            packet_bytes,
            ring_entries,
            rings,
            burst_amplitude: 0.5,
            burst_period_ns: 40_000,
        }
    }

    /// Payload lines per packet.
    pub fn payload_lines(&self) -> u64 {
        self.packet_bytes.div_ceil(LINE_BYTES)
    }

    /// Lines per ring slot: one descriptor line plus the payload.
    pub fn slot_lines(&self) -> u64 {
        1 + self.payload_lines()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidConfig`] for zero-sized fields.
    pub fn validate(&self) -> Result<()> {
        if self.packet_bytes == 0 {
            return Err(A4Error::InvalidConfig {
                what: "packet size must be nonzero",
            });
        }
        if self.ring_entries == 0 || self.rings == 0 {
            return Err(A4Error::InvalidConfig {
                what: "ring geometry must be nonzero",
            });
        }
        if self.rate.as_bytes_per_sec() <= 0.0 {
            return Err(A4Error::InvalidConfig {
                what: "nic rate must be positive",
            });
        }
        if !(0.0..1.0).contains(&self.burst_amplitude) || self.burst_period_ns == 0 {
            return Err(A4Error::InvalidConfig {
                what: "burst parameters out of range",
            });
        }
        Ok(())
    }
}

/// One received packet handed to the consuming workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxPacket {
    /// Address of the descriptor line.
    pub desc: LineAddr,
    /// Address of the first payload line.
    pub payload: LineAddr,
    /// Number of payload lines.
    pub payload_lines: u64,
    /// Simulated time the NIC finished DMA-writing the packet.
    pub written_at: SimTime,
}

/// A single Rx ring (circular buffer of packet slots).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RxRing {
    base: LineAddr,
    entries: usize,
    slot_lines: u64,
    head: u64,
    tail: u64,
    stamps: Vec<SimTime>,
}

impl RxRing {
    fn new(base: LineAddr, entries: usize, slot_lines: u64) -> Self {
        RxRing {
            base,
            entries,
            slot_lines,
            head: 0,
            tail: 0,
            stamps: vec![SimTime::ZERO; entries],
        }
    }

    /// Number of packets waiting to be consumed.
    #[inline]
    pub fn occupancy(&self) -> usize {
        (self.head - self.tail) as usize
    }

    /// True when no free slot remains.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.occupancy() >= self.entries
    }

    /// Capacity in packets.
    #[inline]
    pub fn entries(&self) -> usize {
        self.entries
    }

    fn slot_addr(&self, seq: u64) -> LineAddr {
        self.base
            .offset((seq % self.entries as u64) * self.slot_lines)
    }

    fn produce(&mut self, now: SimTime) -> LineAddr {
        debug_assert!(!self.is_full());
        let slot = self.head;
        self.stamps[(slot % self.entries as u64) as usize] = now;
        self.head += 1;
        self.slot_addr(slot)
    }

    fn consume(&mut self, payload_lines: u64) -> Option<RxPacket> {
        if self.tail == self.head {
            return None;
        }
        let slot = self.tail;
        let addr = self.slot_addr(slot);
        let written_at = self.stamps[(slot % self.entries as u64) as usize];
        self.tail += 1;
        Some(RxPacket {
            desc: addr,
            payload: addr.next(),
            payload_lines,
            written_at,
        })
    }
}

/// The NIC device model.
///
/// # Examples
///
/// ```
/// use a4_cache::{CacheHierarchy, DmaRouter, HierarchyConfig, UpiFabric};
/// use a4_model::{DeviceId, LineAddr, SimTime, WorkloadId};
/// use a4_pcie::{NicConfig, NicModel};
///
/// let mut hier = CacheHierarchy::new(HierarchyConfig::small_test());
/// let mut upi = UpiFabric::default();
/// let cfg = NicConfig::connectx6_100g(1, 8, 256);
/// let mut nic = NicModel::new(DeviceId(0), cfg, LineAddr(0x10000))?;
///
/// // One quantum of line-rate traffic fills the ring and overflows into drops.
/// let mut port = DmaRouter::local(&mut hier, &mut upi);
/// nic.step(SimTime::ZERO, SimTime::from_micros(10), &mut port, true, WorkloadId(0));
/// assert!(nic.ring(0).is_full());
/// assert!(nic.dropped_packets() > 0);
/// assert!(nic.rx_pop(0).is_some());
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct NicModel {
    device: DeviceId,
    config: NicConfig,
    rings: Vec<RxRing>,
    byte_budget: f64,
    rr_cursor: usize,
    delivered_packets: u64,
    dropped_packets: u64,
    rx_bytes: u64,
    tx_lines_total: u64,
}

impl NicModel {
    /// Creates a NIC whose ring buffers start at `buffer_base` (rings are
    /// laid out contiguously).
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidConfig`] if `config` is invalid.
    pub fn new(device: DeviceId, config: NicConfig, buffer_base: LineAddr) -> Result<Self> {
        config.validate()?;
        let ring_span = config.ring_entries as u64 * config.slot_lines();
        let rings = (0..config.rings)
            .map(|i| {
                RxRing::new(
                    buffer_base.offset(i as u64 * ring_span),
                    config.ring_entries,
                    config.slot_lines(),
                )
            })
            .collect();
        Ok(NicModel {
            device,
            config,
            rings,
            byte_budget: 0.0,
            rr_cursor: 0,
            delivered_packets: 0,
            dropped_packets: 0,
            rx_bytes: 0,
            tx_lines_total: 0,
        })
    }

    /// The device id.
    #[inline]
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// Reconfigures the offered packet size (between experiment points).
    /// Rings are drained and re-laid-out.
    pub fn set_packet_bytes(&mut self, packet_bytes: u64) {
        self.config.packet_bytes = packet_bytes;
        let slot_lines = self.config.slot_lines();
        let ring_span = self.config.ring_entries as u64 * slot_lines;
        let base = self.rings[0].base;
        for (i, ring) in self.rings.iter_mut().enumerate() {
            *ring = RxRing::new(
                base.offset(i as u64 * ring_span),
                self.config.ring_entries,
                slot_lines,
            );
        }
    }

    /// One simulation quantum: DMA-write as many packets as the offered
    /// rate allows, dropping when the target ring is full. DMA runs go
    /// through `port`, which routes each one to the owning socket's
    /// hierarchy (and charges the UPI link for cross-socket buffers).
    pub fn step(
        &mut self,
        now: SimTime,
        dt: SimTime,
        port: &mut DmaRouter<'_>,
        dca_enabled: bool,
        owner: WorkloadId,
    ) {
        // Square-wave microbursts around the average rate.
        let phase = (now.as_nanos() / (self.config.burst_period_ns / 2)) % 2;
        let factor = if phase == 0 {
            1.0 + self.config.burst_amplitude
        } else {
            1.0 - self.config.burst_amplitude
        };
        self.byte_budget += self.config.rate.as_bytes_per_sec() * factor * dt.as_secs_f64();
        let pkt = self.config.packet_bytes as f64;
        let total_budget = self.byte_budget;
        let payload_lines = self.config.payload_lines();

        while self.byte_budget >= pkt {
            self.byte_budget -= pkt;
            // Interpolate the DMA completion time within the quantum.
            let frac = 1.0 - self.byte_budget / total_budget.max(pkt);
            let written_at =
                now + SimTime::from_nanos((dt.as_nanos() as f64 * frac.clamp(0.0, 1.0)) as u64);
            let ring_idx = self.rr_cursor % self.rings.len();
            // a4-lint: allow(counter-safety) -- round-robin cursor: only ever read modulo ring count, so u64 wrap-around is harmless by construction
            self.rr_cursor = self.rr_cursor.wrapping_add(1);
            let ring = &mut self.rings[ring_idx];
            if ring.is_full() {
                self.dropped_packets += 1;
                continue;
            }
            let slot = ring.produce(written_at);
            // One run per packet: descriptor line + payload lines.
            port.dma_write_run(self.device, slot, 1 + payload_lines, owner, dca_enabled);
            self.delivered_packets += 1;
            self.rx_bytes += self.config.packet_bytes;
        }
    }

    /// Pops the oldest packet of ring `ring`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `ring` is out of range.
    pub fn rx_pop(&mut self, ring: usize) -> Option<RxPacket> {
        let payload_lines = self.config.payload_lines();
        self.rings[ring].consume(payload_lines)
    }

    /// Read-only view of one ring.
    ///
    /// # Panics
    ///
    /// Panics if `ring` is out of range.
    pub fn ring(&self, ring: usize) -> &RxRing {
        &self.rings[ring]
    }

    /// Transmits a packet: the NIC DMA-reads `lines` lines from `addr`
    /// (egress path).
    pub fn tx_packet(&mut self, port: &mut DmaRouter<'_>, addr: LineAddr, lines: u64) {
        port.dma_read_run(self.device, addr, lines);
        self.tx_lines_total += lines;
    }

    /// Packets delivered into rings since construction.
    #[inline]
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Packets dropped because the target ring was full.
    #[inline]
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// Bytes delivered into rings since construction.
    #[inline]
    pub fn rx_bytes(&self) -> u64 {
        self.rx_bytes
    }

    /// Lines transmitted (DMA-read) since construction.
    #[inline]
    pub fn tx_lines(&self) -> u64 {
        self.tx_lines_total
    }

    /// Snapshots the complete mutable NIC state for a checkpoint.
    pub fn save_state(&self) -> NicState {
        let _rebuilt_by_constructor = (&self.device, &self.config);
        NicState {
            rings: self.rings.clone(),
            byte_budget: self.byte_budget,
            rr_cursor: self.rr_cursor,
            delivered_packets: self.delivered_packets,
            dropped_packets: self.dropped_packets,
            rx_bytes: self.rx_bytes,
            tx_lines_total: self.tx_lines_total,
        }
    }

    /// Restores a [`NicModel::save_state`] snapshot.
    ///
    /// Returns `false` (without touching any state) if the snapshot's
    /// ring count does not match this NIC's configuration.
    pub fn restore_state(&mut self, st: &NicState) -> bool {
        let _rebuilt_by_constructor = (&self.device, &self.config);
        if st.rings.len() != self.rings.len() {
            return false;
        }
        self.rings = st.rings.clone();
        self.byte_budget = st.byte_budget;
        self.rr_cursor = st.rr_cursor;
        self.delivered_packets = st.delivered_packets;
        self.dropped_packets = st.dropped_packets;
        self.rx_bytes = st.rx_bytes;
        self.tx_lines_total = st.tx_lines_total;
        true
    }
}

/// Serializable snapshot of the complete mutable [`NicModel`] state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NicState {
    /// Rx ring contents (head/tail cursors and arrival stamps).
    pub rings: Vec<RxRing>,
    /// Fractional byte budget carried between quanta.
    pub byte_budget: f64,
    /// Round-robin ring cursor.
    pub rr_cursor: usize,
    /// Packets delivered into rings since construction.
    pub delivered_packets: u64,
    /// Packets dropped because the target ring was full.
    pub dropped_packets: u64,
    /// Bytes delivered into rings since construction.
    pub rx_bytes: u64,
    /// Lines transmitted (DMA-read) since construction.
    pub tx_lines_total: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_cache::{CacheHierarchy, HierarchyConfig, UpiFabric};

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::small_test())
    }

    fn nic(rings: usize, entries: usize, pkt: u64) -> NicModel {
        NicModel::new(
            DeviceId(0),
            NicConfig::connectx6_100g(rings, entries, pkt),
            LineAddr(0x1000),
        )
        .expect("valid nic config")
    }

    #[test]
    fn config_validation() {
        assert!(NicConfig::connectx6_100g(0, 8, 64).validate().is_err());
        assert!(NicConfig::connectx6_100g(1, 0, 64).validate().is_err());
        assert!(NicConfig::connectx6_100g(1, 8, 0).validate().is_err());
        assert!(NicConfig::connectx6_100g(4, 2048, 1024).validate().is_ok());
    }

    #[test]
    fn line_rate_delivery_volume() {
        let mut h = hier();
        let mut cfg = NicConfig::connectx6_100g(2, 1_000_000, 1024);
        cfg.burst_amplitude = 0.0; // flat rate for exact volume accounting
        let mut nic = NicModel::new(DeviceId(0), cfg, LineAddr(0x1000)).unwrap();
        // 12.5e9 B/s * 1e-4 s = 1.25 MB = ~1220 packets of 1 KiB.
        nic.step(
            SimTime::ZERO,
            SimTime::from_micros(100),
            &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
            true,
            WorkloadId(0),
        );
        let pkts = nic.delivered_packets();
        assert!((1200..=1221).contains(&pkts), "delivered {pkts}");
        assert_eq!(nic.dropped_packets(), 0);
        assert_eq!(nic.rx_bytes(), pkts * 1024);
    }

    #[test]
    fn bursty_rate_averages_out() {
        let mut h = hier();
        let mut nic = nic(2, 1_000_000, 1024);
        // Step through several whole burst periods in 1 us quanta: the
        // average must converge to the configured rate.
        let mut now = SimTime::ZERO;
        for _ in 0..200 {
            nic.step(
                now,
                SimTime::from_micros(1),
                &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
                true,
                WorkloadId(0),
            );
            now += SimTime::from_micros(1);
        }
        // 200 us at 12.5 GB/s = 2.5 MB = ~2441 packets.
        let pkts = nic.delivered_packets();
        assert!((2380..=2500).contains(&pkts), "delivered {pkts}");
    }

    #[test]
    fn full_ring_drops() {
        let mut h = hier();
        let mut nic = nic(1, 4, 1024);
        nic.step(
            SimTime::ZERO,
            SimTime::from_micros(10),
            &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
            true,
            WorkloadId(0),
        );
        assert_eq!(nic.delivered_packets(), 4);
        assert!(nic.dropped_packets() > 0);
        assert!(nic.ring(0).is_full());
        // Consuming frees a slot and delivery resumes.
        assert!(nic.rx_pop(0).is_some());
        assert!(!nic.ring(0).is_full());
        let before = nic.delivered_packets();
        nic.step(
            SimTime::from_micros(10),
            SimTime::from_micros(1),
            &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
            true,
            WorkloadId(0),
        );
        assert_eq!(nic.delivered_packets(), before + 1);
    }

    #[test]
    fn packets_are_timestamped_monotonically() {
        let mut h = hier();
        let mut nic = nic(1, 64, 1024);
        nic.step(
            SimTime::ZERO,
            SimTime::from_micros(5),
            &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
            true,
            WorkloadId(0),
        );
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some(pkt) = nic.rx_pop(0) {
            assert!(pkt.written_at >= last, "timestamps must not go backwards");
            last = pkt.written_at;
            n += 1;
        }
        assert!(n > 0);
        assert!(last <= SimTime::from_micros(5));
    }

    #[test]
    fn rx_packet_layout_descriptor_then_payload() {
        let mut h = hier();
        let mut nic = nic(1, 8, 128);
        nic.step(
            SimTime::ZERO,
            SimTime::from_nanos(20),
            &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
            true,
            WorkloadId(0),
        );
        let pkt = nic.rx_pop(0).expect("one packet arrived");
        assert_eq!(pkt.payload, pkt.desc.next());
        assert_eq!(pkt.payload_lines, 2);
        // The DMA writes actually landed in the cache hierarchy.
        assert!(h.llc().probe(pkt.desc).is_some());
        assert!(h.llc().probe(pkt.payload).is_some());
    }

    #[test]
    fn round_robin_spreads_rings() {
        let mut h = hier();
        let mut nic = nic(4, 64, 1024);
        nic.step(
            SimTime::ZERO,
            SimTime::from_micros(2),
            &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
            true,
            WorkloadId(0),
        );
        let occs: Vec<_> = (0..4).map(|r| nic.ring(r).occupancy()).collect();
        let max = *occs.iter().max().unwrap();
        let min = *occs.iter().min().unwrap();
        assert!(max - min <= 1, "round-robin keeps rings balanced: {occs:?}");
    }

    #[test]
    fn set_packet_bytes_relays_out_rings() {
        let mut h = hier();
        let mut nic = nic(2, 8, 64);
        nic.step(
            SimTime::ZERO,
            SimTime::from_nanos(100),
            &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
            true,
            WorkloadId(0),
        );
        nic.set_packet_bytes(1514);
        assert_eq!(nic.config().payload_lines(), 24);
        assert_eq!(
            nic.ring(0).occupancy(),
            0,
            "rings drained on reconfiguration"
        );
    }

    #[test]
    fn tx_counts_lines() {
        let mut h = hier();
        let mut nic = nic(1, 8, 64);
        nic.tx_packet(
            &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
            LineAddr(0x99),
            16,
        );
        assert_eq!(nic.tx_lines(), 16);
        assert_eq!(h.stats().device(DeviceId(0)).dma_read_lines, 16);
    }
}
