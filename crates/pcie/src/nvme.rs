//! NVMe SSD model (single device or RAID-0 array).
//!
//! The paper's storage substrate is a RAID-0 of four Samsung 980 PRO SSDs
//! behind a PCIe Gen3 ×16 link (~13 GB/s). Two caps shape its behaviour:
//!
//! * a **link/media bandwidth cap** — large blocks saturate it,
//! * an **IOPS cap** — small blocks are command-rate-bound.
//!
//! Effective throughput is `min(link_bw, iops × block_size)`, which
//! reproduces the Fig. 5 curve: rising with block size until ~32–128 KB,
//! then flat — and *independent of DCA*, the paper's key observation (O2
//! groundwork). DMA writes stream through
//! [`a4_cache::CacheHierarchy::dma_write`] so DCA on/off only changes
//! *where* the lines land, never how fast the device goes.

use a4_cache::DmaRouter;
use a4_model::{A4Error, Bandwidth, DeviceId, LineAddr, Result, SimTime, WorkloadId, LINE_BYTES};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static NVMe parameters.
///
/// # Examples
///
/// ```
/// use a4_pcie::NvmeConfig;
///
/// let cfg = NvmeConfig::raid0_980pro_x4();
/// assert!(cfg.link.as_gb_s() > 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmeConfig {
    /// Aggregate link/media bandwidth.
    pub link: Bandwidth,
    /// Aggregate command completion rate (IOPS).
    pub iops: f64,
    /// Maximum outstanding commands the submission queues accept.
    pub queue_slots: usize,
    /// Commands transferred concurrently (RAID-0 striping across SSDs and
    /// per-SSD channel parallelism). This is what makes a deep queue of
    /// large blocks flood the DCA ways simultaneously.
    pub parallelism: usize,
}

impl NvmeConfig {
    /// The paper's array: 4× Samsung 980 PRO behind PCIe Gen3 ×16 —
    /// ~13 GB/s sequential, ~600 K random-read IOPS aggregate.
    pub fn raid0_980pro_x4() -> Self {
        NvmeConfig {
            link: Bandwidth::from_gb_s(13.0),
            iops: 600_000.0,
            queue_slots: 256,
            // 4 SSDs x 4 NAND-channel groups: 16 concurrent stripes. The
            // aggregate unconsumed in-flight volume (parallelism x block)
            // is what overruns the DCA ways for large blocks.
            parallelism: 16,
        }
    }

    /// Steady-state read throughput at a given block size (both caps).
    pub fn throughput_at(&self, block_bytes: u64) -> Bandwidth {
        let by_iops = self.iops * block_bytes as f64;
        Bandwidth::from_bytes_per_sec(by_iops.min(self.link.as_bytes_per_sec()))
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidConfig`] for non-positive rates or a
    /// zero-slot queue.
    pub fn validate(&self) -> Result<()> {
        if self.link.as_bytes_per_sec() <= 0.0 || self.iops <= 0.0 {
            return Err(A4Error::InvalidConfig {
                what: "nvme rates must be positive",
            });
        }
        if self.queue_slots == 0 || self.parallelism == 0 {
            return Err(A4Error::InvalidConfig {
                what: "nvme queue/parallelism must be nonzero",
            });
        }
        Ok(())
    }
}

/// Direction of an NVMe command from the host's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NvmeOp {
    /// Host read: the device DMA-writes the block into the host buffer.
    Read,
    /// Host write: the device DMA-reads the block from the host buffer.
    Write,
}

/// A submitted command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmeCommand {
    /// First line of the host buffer.
    pub buffer: LineAddr,
    /// Block length in lines.
    pub lines: u64,
    /// Read or write.
    pub op: NvmeOp,
}

/// A completed command popped from the completion queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmeCompletion {
    /// The original command.
    pub cmd: NvmeCommand,
    /// Completion time.
    pub completed_at: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    cmd: NvmeCommand,
    transferred: u64,
}

/// The NVMe device model.
///
/// # Examples
///
/// ```
/// use a4_cache::{CacheHierarchy, DmaRouter, HierarchyConfig, UpiFabric};
/// use a4_model::{DeviceId, LineAddr, SimTime, WorkloadId};
/// use a4_pcie::{NvmeCommand, NvmeConfig, NvmeModel, NvmeOp};
///
/// let mut hier = CacheHierarchy::new(HierarchyConfig::small_test());
/// let mut upi = UpiFabric::default();
/// let mut ssd = NvmeModel::new(DeviceId(1), NvmeConfig::raid0_980pro_x4())?;
/// ssd.submit(NvmeCommand { buffer: LineAddr(0x2000), lines: 64, op: NvmeOp::Read })?;
/// let mut port = DmaRouter::local(&mut hier, &mut upi);
/// ssd.step(SimTime::ZERO, SimTime::from_micros(10), &mut port, true, WorkloadId(1));
/// assert!(ssd.pop_completion().is_some());
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct NvmeModel {
    device: DeviceId,
    config: NvmeConfig,
    queue: VecDeque<Inflight>,
    completions: VecDeque<NvmeCompletion>,
    byte_budget: f64,
    cmd_budget: f64,
    read_bytes: u64,
    write_bytes: u64,
    commands_completed: u64,
}

impl NvmeModel {
    /// Creates an idle device.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidConfig`] if `config` is invalid.
    pub fn new(device: DeviceId, config: NvmeConfig) -> Result<Self> {
        config.validate()?;
        Ok(NvmeModel {
            device,
            config,
            queue: VecDeque::new(),
            completions: VecDeque::new(),
            byte_budget: 0.0,
            cmd_budget: 0.0,
            read_bytes: 0,
            write_bytes: 0,
            commands_completed: 0,
        })
    }

    /// The device id.
    #[inline]
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &NvmeConfig {
        &self.config
    }

    /// Submits a command.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidConfig`] for zero-length blocks and
    /// [`A4Error::Platform`] when the submission queue is full.
    pub fn submit(&mut self, cmd: NvmeCommand) -> Result<()> {
        if cmd.lines == 0 {
            return Err(A4Error::InvalidConfig {
                what: "nvme block must be nonzero",
            });
        }
        if self.queue.len() >= self.config.queue_slots {
            return Err(A4Error::Platform {
                what: "nvme submission queue full".into(),
            });
        }
        self.queue.push_back(Inflight {
            cmd,
            transferred: 0,
        });
        Ok(())
    }

    /// Outstanding (incomplete) commands.
    #[inline]
    pub fn outstanding(&self) -> usize {
        self.queue.len()
    }

    /// One simulation quantum: move block data under the byte budget and
    /// retire commands under the IOPS budget. DMA runs go through `port`,
    /// which routes each one to the owning socket's hierarchy (and
    /// charges the UPI link for cross-socket buffers).
    pub fn step(
        &mut self,
        now: SimTime,
        dt: SimTime,
        port: &mut DmaRouter<'_>,
        dca_enabled: bool,
        owner: WorkloadId,
    ) {
        self.byte_budget += self.config.link.as_bytes_per_sec() * dt.as_secs_f64();
        self.cmd_budget += self.config.iops * dt.as_secs_f64();
        // Budgets never pool across quiet periods beyond one quantum's
        // worth of headroom — an idle device does not bank bandwidth.
        let byte_cap = self.config.link.as_bytes_per_sec() * dt.as_secs_f64() * 2.0;
        let cmd_cap = (self.config.iops * dt.as_secs_f64() * 2.0).max(2.0);
        self.byte_budget = self.byte_budget.min(byte_cap.max(2.0 * LINE_BYTES as f64));
        self.cmd_budget = self.cmd_budget.min(cmd_cap);

        // Stripe the byte budget round-robin across the first
        // `parallelism` inflight commands, a few lines at a time.
        const CHUNK: u64 = 16;
        loop {
            let window = self.config.parallelism.min(self.queue.len());
            let affordable = (self.byte_budget / LINE_BYTES as f64) as u64;
            if window == 0 || affordable == 0 {
                break;
            }
            let mut moved = 0u64;
            for i in 0..window {
                let affordable = (self.byte_budget / LINE_BYTES as f64) as u64;
                if affordable == 0 {
                    break;
                }
                let entry = &mut self.queue[i];
                let remaining = entry.cmd.lines - entry.transferred;
                let n = remaining.min(CHUNK).min(affordable);
                if n == 0 {
                    continue;
                }
                let base = entry.cmd.buffer.offset(entry.transferred);
                let op = entry.cmd.op;
                // One run per chunk: host reads are ingress DMA-write
                // runs, host writes are egress DMA-read runs.
                match op {
                    NvmeOp::Read => port.dma_write_run(self.device, base, n, owner, dca_enabled),
                    NvmeOp::Write => port.dma_read_run(self.device, base, n),
                }
                entry.transferred += n;
                self.byte_budget -= (n * LINE_BYTES) as f64;
                match op {
                    NvmeOp::Read => self.read_bytes += n * LINE_BYTES,
                    NvmeOp::Write => self.write_bytes += n * LINE_BYTES,
                }
                moved += n;
            }
            if moved == 0 {
                break; // every windowed command is fully transferred
            }
        }

        // Retire fully transferred commands under the IOPS budget
        // (out-of-order completion, as NVMe allows).
        let mut i = 0;
        while i < self.queue.len().min(self.config.parallelism) {
            if self.queue[i].transferred == self.queue[i].cmd.lines {
                if self.cmd_budget < 1.0 {
                    break;
                }
                self.cmd_budget -= 1.0;
                let done = self.queue.remove(i).expect("index in range");
                self.completions.push_back(NvmeCompletion {
                    cmd: done.cmd,
                    completed_at: now + dt,
                });
                self.commands_completed += 1;
            } else {
                i += 1;
            }
        }
    }

    /// Pops the oldest completion, if any.
    pub fn pop_completion(&mut self) -> Option<NvmeCompletion> {
        self.completions.pop_front()
    }

    /// Pops the oldest `op`-direction completion whose buffer lies within
    /// `[base, base + lines)` — the per-process completion-queue view
    /// when several workloads (or a workload's read and write paths)
    /// share the device.
    ///
    /// Matching on the direction as well as the buffer range matters:
    /// FFSB's periodic write-back targets a buffer inside its read
    /// engine's slot range, and the historical range-only filter let the
    /// read path reap write completions it never submitted — the
    /// double-reap that wrapped `Fio::outstanding` in the shared-SSD
    /// colocations.
    pub fn pop_completion_in(
        &mut self,
        base: LineAddr,
        lines: u64,
        op: NvmeOp,
    ) -> Option<NvmeCompletion> {
        let idx = self.completions.iter().position(|c| {
            c.cmd.op == op && c.cmd.buffer >= base && c.cmd.buffer < base.offset(lines)
        })?;
        self.completions.remove(idx)
    }

    /// Bytes DMA-written to the host (host reads) since construction.
    #[inline]
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Bytes DMA-read from the host (host writes) since construction.
    #[inline]
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// Commands retired since construction.
    #[inline]
    pub fn commands_completed(&self) -> u64 {
        self.commands_completed
    }

    /// Snapshots the complete mutable NVMe state for a checkpoint.
    pub fn save_state(&self) -> NvmeState {
        let _rebuilt_by_constructor = (&self.device, &self.config);
        NvmeState {
            queue: self.queue.iter().map(|e| (e.cmd, e.transferred)).collect(),
            completions: self
                .completions
                .iter()
                .map(|c| (c.cmd, c.completed_at))
                .collect(),
            byte_budget: self.byte_budget,
            cmd_budget: self.cmd_budget,
            read_bytes: self.read_bytes,
            write_bytes: self.write_bytes,
            commands_completed: self.commands_completed,
        }
    }

    /// Restores a [`NvmeModel::save_state`] snapshot.
    ///
    /// Returns `false` (without touching any state) if the snapshot's
    /// queue depth exceeds this device's configured slot count.
    pub fn restore_state(&mut self, st: &NvmeState) -> bool {
        let _rebuilt_by_constructor = (&self.device, &self.config);
        if st.queue.len() > self.config.queue_slots {
            return false;
        }
        self.queue = st
            .queue
            .iter()
            .map(|&(cmd, transferred)| Inflight { cmd, transferred })
            .collect();
        self.completions = st
            .completions
            .iter()
            .map(|&(cmd, completed_at)| NvmeCompletion { cmd, completed_at })
            .collect();
        self.byte_budget = st.byte_budget;
        self.cmd_budget = st.cmd_budget;
        self.read_bytes = st.read_bytes;
        self.write_bytes = st.write_bytes;
        self.commands_completed = st.commands_completed;
        true
    }
}

/// Serializable snapshot of the complete mutable [`NvmeModel`] state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NvmeState {
    /// In-flight commands as `(command, lines transferred)` pairs, in
    /// submission-queue order.
    pub queue: Vec<(NvmeCommand, u64)>,
    /// Unreaped completions as `(command, completed_at)` pairs, in
    /// completion-queue order.
    pub completions: Vec<(NvmeCommand, SimTime)>,
    /// Fractional byte budget carried between quanta.
    pub byte_budget: f64,
    /// Fractional command (IOPS) budget carried between quanta.
    pub cmd_budget: f64,
    /// Bytes DMA-written to the host since construction.
    pub read_bytes: u64,
    /// Bytes DMA-read from the host since construction.
    pub write_bytes: u64,
    /// Commands retired since construction.
    pub commands_completed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_cache::{CacheHierarchy, HierarchyConfig, UpiFabric};

    fn hier() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::small_test())
    }

    fn ssd() -> NvmeModel {
        NvmeModel::new(DeviceId(1), NvmeConfig::raid0_980pro_x4()).expect("valid config")
    }

    const WL: WorkloadId = WorkloadId(1);

    #[test]
    fn throughput_curve_shape() {
        let cfg = NvmeConfig::raid0_980pro_x4();
        // IOPS-bound at 4 KB: 600 K x 4 KB = 2.4 GB/s.
        assert!((cfg.throughput_at(4096).as_gb_s() - 2.4576).abs() < 0.01);
        // Link-bound at 128 KB and beyond.
        assert!((cfg.throughput_at(128 * 1024).as_gb_s() - 13.0).abs() < 1e-9);
        assert!((cfg.throughput_at(2 * 1024 * 1024).as_gb_s() - 13.0).abs() < 1e-9);
        // Monotone non-decreasing.
        let mut last = 0.0;
        for kb in [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048] {
            let t = cfg.throughput_at(kb * 1024).as_gb_s();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn read_block_lands_in_cache_and_completes() {
        let mut h = hier();
        let mut ssd = ssd();
        ssd.submit(NvmeCommand {
            buffer: LineAddr(0x100),
            lines: 16,
            op: NvmeOp::Read,
        })
        .unwrap();
        ssd.step(
            SimTime::ZERO,
            SimTime::from_micros(10),
            &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
            true,
            WL,
        );
        let done = ssd
            .pop_completion()
            .expect("block transferred in one quantum");
        assert_eq!(done.cmd.lines, 16);
        assert_eq!(ssd.read_bytes(), 16 * 64);
        assert_eq!(h.stats().device(DeviceId(1)).dma_write_lines, 16);
        assert_eq!(ssd.outstanding(), 0);
    }

    #[test]
    fn large_block_spans_quanta() {
        let mut h = hier();
        let mut ssd = ssd();
        // 13 GB/s * 1 us = 13 KB ~ 203 lines; a 1024-line (64 KB) block
        // needs several quanta.
        ssd.submit(NvmeCommand {
            buffer: LineAddr(0),
            lines: 1024,
            op: NvmeOp::Read,
        })
        .unwrap();
        let mut quanta = 0;
        let mut now = SimTime::ZERO;
        while ssd.pop_completion().is_none() {
            ssd.step(
                now,
                SimTime::from_micros(1),
                &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
                true,
                WL,
            );
            now += SimTime::from_micros(1);
            quanta += 1;
            assert!(quanta < 100, "must complete eventually");
        }
        assert!(
            quanta >= 4,
            "64 KB cannot fit one 1 us quantum, took {quanta}"
        );
    }

    #[test]
    fn iops_cap_limits_small_blocks() {
        let mut h = hier();
        let mut ssd = ssd();
        // Offer far more 1-line commands than the IOPS budget allows.
        for i in 0..200u64 {
            ssd.submit(NvmeCommand {
                buffer: LineAddr(i * 64),
                lines: 1,
                op: NvmeOp::Read,
            })
            .unwrap();
        }
        // 100 us at 600 K IOPS = 60 completions.
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            ssd.step(
                now,
                SimTime::from_micros(10),
                &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
                true,
                WL,
            );
            now += SimTime::from_micros(10);
        }
        let done = ssd.commands_completed();
        assert!(
            (55..=72).contains(&done),
            "IOPS-bound completion count, got {done}"
        );
    }

    #[test]
    fn queue_full_is_reported() {
        let mut ssd = NvmeModel::new(
            DeviceId(1),
            NvmeConfig {
                queue_slots: 2,
                ..NvmeConfig::raid0_980pro_x4()
            },
        )
        .unwrap();
        let cmd = NvmeCommand {
            buffer: LineAddr(0),
            lines: 1,
            op: NvmeOp::Read,
        };
        ssd.submit(cmd).unwrap();
        ssd.submit(cmd).unwrap();
        assert!(matches!(ssd.submit(cmd), Err(A4Error::Platform { .. })));
        assert!(matches!(
            ssd.submit(NvmeCommand {
                buffer: LineAddr(0),
                lines: 0,
                op: NvmeOp::Read
            }),
            Err(A4Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn write_command_uses_egress_path() {
        let mut h = hier();
        let mut ssd = ssd();
        ssd.submit(NvmeCommand {
            buffer: LineAddr(0x40),
            lines: 8,
            op: NvmeOp::Write,
        })
        .unwrap();
        ssd.step(
            SimTime::ZERO,
            SimTime::from_micros(5),
            &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
            true,
            WL,
        );
        assert_eq!(ssd.write_bytes(), 8 * 64);
        assert_eq!(h.stats().device(DeviceId(1)).dma_read_lines, 8);
        assert_eq!(h.stats().device(DeviceId(1)).dma_write_lines, 0);
    }

    #[test]
    fn dca_off_does_not_change_throughput() {
        // The paper's Fig. 5a: storage throughput is insensitive to DCA.
        for dca in [true, false] {
            let mut h = hier();
            let mut ssd = ssd();
            let mut now = SimTime::ZERO;
            let mut completed = 0u64;
            let mut next_buf = 0u64;
            for _ in 0..50u64 {
                // Keep the queue deep (QD ~ 16), as FIO would.
                while ssd.outstanding() < 16 {
                    ssd.submit(NvmeCommand {
                        buffer: LineAddr(next_buf * 2048),
                        lines: 512,
                        op: NvmeOp::Read,
                    })
                    .unwrap();
                    next_buf += 1;
                }
                ssd.step(
                    now,
                    SimTime::from_micros(10),
                    &mut DmaRouter::local(&mut h, &mut UpiFabric::default()),
                    dca,
                    WL,
                );
                now += SimTime::from_micros(10);
                while ssd.pop_completion().is_some() {
                    completed += 1;
                }
            }
            // 500 us * 13 GB/s = 6.5 MB = ~198 blocks of 32 KB.
            assert!((150..=210).contains(&completed), "dca={dca}: {completed}");
        }
    }
}
