//! The PCIe root complex: ports, attached devices, per-device DCA state.

use crate::register::PerfCtrlSts;
use a4_model::{A4Error, DeviceClass, DeviceId, PortId, Result};
use serde::{Deserialize, Serialize};

/// One root port with its control register and attached device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortState {
    /// The port's `perfctrlsts_0` register.
    pub reg: PerfCtrlSts,
    /// Attached device, if any.
    pub device: Option<DeviceId>,
    /// Class of the attached device.
    pub class: Option<DeviceClass>,
}

/// The root complex A4's control plane programs.
///
/// # Examples
///
/// ```
/// use a4_model::{DeviceClass, DeviceId, PortId};
/// use a4_pcie::PcieRoot;
///
/// let mut root = PcieRoot::new(4);
/// root.attach(PortId(0), DeviceId(0), DeviceClass::Nic)?;
/// root.attach(PortId(2), DeviceId(1), DeviceClass::Nvme)?;
/// assert!(root.dca_enabled(DeviceId(1)));
/// root.set_device_dca(DeviceId(1), false)?;       // [SSD-DCA off]
/// assert!(!root.dca_enabled(DeviceId(1)));
/// assert!(root.dca_enabled(DeviceId(0)), "the NIC keeps its fast path");
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcieRoot {
    ports: Vec<PortState>,
}

impl PcieRoot {
    /// Creates a root complex with `ports` empty ports, all with power-on
    /// register state (DCA enabled).
    pub fn new(ports: usize) -> Self {
        PcieRoot {
            ports: vec![
                PortState {
                    reg: PerfCtrlSts::power_on(),
                    device: None,
                    class: None
                };
                ports
            ],
        }
    }

    /// Number of ports.
    #[inline]
    pub fn ports(&self) -> usize {
        self.ports.len()
    }

    /// Attaches a device to a port.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidDevice`] if the port is out of range or
    /// already occupied, or the device is already attached elsewhere.
    pub fn attach(&mut self, port: PortId, device: DeviceId, class: DeviceClass) -> Result<()> {
        if self.find_port(device).is_some() {
            return Err(A4Error::InvalidDevice { device: device.0 });
        }
        let slot = self
            .ports
            .get_mut(port.index())
            .ok_or(A4Error::InvalidDevice { device: device.0 })?;
        if slot.device.is_some() {
            return Err(A4Error::InvalidDevice { device: device.0 });
        }
        slot.device = Some(device);
        slot.class = Some(class);
        Ok(())
    }

    /// Detaches whatever device sits on `port` (hot-unplug).
    pub fn detach(&mut self, port: PortId) -> Option<DeviceId> {
        let slot = self.ports.get_mut(port.index())?;
        let dev = slot.device.take();
        slot.class = None;
        slot.reg = PerfCtrlSts::power_on();
        dev
    }

    /// The port a device is attached to.
    pub fn find_port(&self, device: DeviceId) -> Option<PortId> {
        self.ports
            .iter()
            .position(|p| p.device == Some(device))
            .map(|i| PortId(i as u8))
    }

    /// The state of one port.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidDevice`] for out-of-range ports.
    pub fn port(&self, port: PortId) -> Result<&PortState> {
        self.ports
            .get(port.index())
            .ok_or(A4Error::InvalidDevice { device: port.0 })
    }

    /// Whether DMA writes from `device` currently use DCA.
    ///
    /// Unattached devices resolve to `true`, matching a hierarchy driven
    /// without explicit port modelling.
    pub fn dca_enabled(&self, device: DeviceId) -> bool {
        match self.find_port(device) {
            Some(port) => self.ports[port.index()].reg.dca_enabled(),
            None => true,
        }
    }

    /// Programs the DCA state of the port a device sits on — A4's
    /// *selective DCA disabling* (F2).
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidDevice`] if the device is not attached.
    pub fn set_device_dca(&mut self, device: DeviceId, enable: bool) -> Result<()> {
        let port = self
            .find_port(device)
            .ok_or(A4Error::InvalidDevice { device: device.0 })?;
        let reg = &mut self.ports[port.index()].reg;
        if enable {
            reg.enable_dca();
        } else {
            reg.disable_dca();
        }
        Ok(())
    }

    /// Sets DCA for every port at once (the BIOS-knob baseline the paper
    /// contrasts against — it cannot discriminate between devices).
    pub fn set_global_dca(&mut self, enable: bool) {
        for p in &mut self.ports {
            if enable {
                p.reg.enable_dca();
            } else {
                p.reg.disable_dca();
            }
        }
    }

    /// Iterates over attached `(device, class, dca_enabled)` triples.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, DeviceClass, bool)> + '_ {
        self.ports
            .iter()
            .filter_map(|p| Some((p.device?, p.class?, p.reg.dca_enabled())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> PcieRoot {
        let mut r = PcieRoot::new(3);
        r.attach(PortId(0), DeviceId(0), DeviceClass::Nic).unwrap();
        r.attach(PortId(1), DeviceId(1), DeviceClass::Nvme).unwrap();
        r
    }

    #[test]
    fn attach_and_lookup() {
        let r = root();
        assert_eq!(r.find_port(DeviceId(0)), Some(PortId(0)));
        assert_eq!(r.find_port(DeviceId(1)), Some(PortId(1)));
        assert_eq!(r.find_port(DeviceId(9)), None);
        assert_eq!(r.ports(), 3);
        assert_eq!(r.devices().count(), 2);
    }

    #[test]
    fn attach_rejects_conflicts() {
        let mut r = root();
        // Port occupied.
        assert!(r.attach(PortId(0), DeviceId(5), DeviceClass::Nvme).is_err());
        // Device already attached.
        assert!(r.attach(PortId(2), DeviceId(0), DeviceClass::Nic).is_err());
        // Port out of range.
        assert!(r.attach(PortId(9), DeviceId(5), DeviceClass::Nvme).is_err());
    }

    #[test]
    fn selective_dca_targets_one_device() {
        let mut r = root();
        r.set_device_dca(DeviceId(1), false).unwrap();
        assert!(!r.dca_enabled(DeviceId(1)));
        assert!(r.dca_enabled(DeviceId(0)));
        r.set_device_dca(DeviceId(1), true).unwrap();
        assert!(r.dca_enabled(DeviceId(1)));
        assert!(r.set_device_dca(DeviceId(9), false).is_err());
    }

    #[test]
    fn global_dca_hits_every_port() {
        let mut r = root();
        r.set_global_dca(false);
        assert!(!r.dca_enabled(DeviceId(0)));
        assert!(!r.dca_enabled(DeviceId(1)));
        r.set_global_dca(true);
        assert!(r.dca_enabled(DeviceId(0)));
    }

    #[test]
    fn detach_resets_port() {
        let mut r = root();
        r.set_device_dca(DeviceId(0), false).unwrap();
        assert_eq!(r.detach(PortId(0)), Some(DeviceId(0)));
        assert_eq!(r.find_port(DeviceId(0)), None);
        assert!(
            r.port(PortId(0)).unwrap().reg.dca_enabled(),
            "register reset at unplug"
        );
        assert_eq!(r.detach(PortId(0)), None);
    }

    #[test]
    fn unattached_devices_default_to_dca_on() {
        let r = PcieRoot::new(1);
        assert!(r.dca_enabled(DeviceId(7)));
    }
}
