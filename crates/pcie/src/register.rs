//! The hidden `perfctrlsts_0` per-port register.
//!
//! The Intel Xeon Scalable (Skylake-SP) datasheet volume 2 documents a
//! per-root-port register `perfctrlsts_0` (offset `0x180`). Two of its
//! bits steer how inbound (DMA write) transactions allocate in the LLC:
//!
//! * bit 3 — `NoSnoopOpWrEn`: honour the *no-snoop* hint on inbound
//!   writes, letting them bypass the cache hierarchy;
//! * bit 7 — `Use_Allocating_Flow_Wr`: use the DDIO allocating flow for
//!   inbound writes (write-allocate into the DCA ways).
//!
//! DCA is effectively **disabled for the port** when `NoSnoopOpWrEn` is
//! set *and* `Use_Allocating_Flow_Wr` is cleared — the combination the A4
//! paper's §4.2 uses to switch DDIO off for one SSD while the NIC keeps
//! its low-latency path. (The same bits are used by the `ddio-bench`
//! tooling the paper's artifact references.)

use serde::{Deserialize, Serialize};
use std::fmt;

/// Bit index of `NoSnoopOpWrEn`.
const NO_SNOOP_OP_WR_EN: u32 = 3;
/// Bit index of `Use_Allocating_Flow_Wr`.
const USE_ALLOCATING_FLOW_WR: u32 = 7;

/// Software view of one port's `perfctrlsts_0` register.
///
/// # Examples
///
/// ```
/// use a4_pcie::PerfCtrlSts;
///
/// let mut reg = PerfCtrlSts::power_on();
/// assert!(reg.dca_enabled());
/// reg.disable_dca();
/// assert!(!reg.dca_enabled());
/// assert!(reg.no_snoop_op_wr_en());
/// assert!(!reg.use_allocating_flow_wr());
/// reg.enable_dca();
/// assert!(reg.dca_enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfCtrlSts {
    raw: u64,
}

impl PerfCtrlSts {
    /// Register offset within the port's configuration space.
    pub const OFFSET: u16 = 0x180;

    /// Power-on default: allocating flow enabled, no-snoop honouring off —
    /// i.e. DDIO active, as shipped on every Skylake-SP.
    pub fn power_on() -> Self {
        PerfCtrlSts {
            raw: 1 << USE_ALLOCATING_FLOW_WR,
        }
    }

    /// Builds a view from a raw register value (e.g. read via `setpci`).
    pub fn from_raw(raw: u64) -> Self {
        PerfCtrlSts { raw }
    }

    /// The raw register value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.raw
    }

    /// Reads `NoSnoopOpWrEn` (bit 3).
    #[inline]
    pub fn no_snoop_op_wr_en(self) -> bool {
        self.raw & (1 << NO_SNOOP_OP_WR_EN) != 0
    }

    /// Reads `Use_Allocating_Flow_Wr` (bit 7).
    #[inline]
    pub fn use_allocating_flow_wr(self) -> bool {
        self.raw & (1 << USE_ALLOCATING_FLOW_WR) != 0
    }

    /// True if inbound DMA writes from this port use DCA.
    #[inline]
    pub fn dca_enabled(self) -> bool {
        self.use_allocating_flow_wr() && !self.no_snoop_op_wr_en()
    }

    /// Disables DCA for the port (set `NoSnoopOpWrEn`, clear
    /// `Use_Allocating_Flow_Wr`) — the A4 §4.2 sequence.
    pub fn disable_dca(&mut self) {
        self.raw |= 1 << NO_SNOOP_OP_WR_EN;
        self.raw &= !(1 << USE_ALLOCATING_FLOW_WR);
    }

    /// Re-enables DCA for the port (the power-on configuration).
    pub fn enable_dca(&mut self) {
        self.raw &= !(1 << NO_SNOOP_OP_WR_EN);
        self.raw |= 1 << USE_ALLOCATING_FLOW_WR;
    }
}

impl Default for PerfCtrlSts {
    fn default() -> Self {
        Self::power_on()
    }
}

impl fmt::Display for PerfCtrlSts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "perfctrlsts_0={:#06x} (NoSnoopOpWrEn={}, Use_Allocating_Flow_Wr={}, dca={})",
            self.raw,
            self.no_snoop_op_wr_en() as u8,
            self.use_allocating_flow_wr() as u8,
            if self.dca_enabled() { "on" } else { "off" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_on_has_dca_enabled() {
        let reg = PerfCtrlSts::power_on();
        assert!(reg.dca_enabled());
        assert!(!reg.no_snoop_op_wr_en());
        assert!(reg.use_allocating_flow_wr());
        assert_eq!(reg, PerfCtrlSts::default());
    }

    #[test]
    fn disable_enable_roundtrip() {
        let mut reg = PerfCtrlSts::power_on();
        reg.disable_dca();
        assert!(!reg.dca_enabled());
        reg.enable_dca();
        assert!(reg.dca_enabled());
        assert_eq!(reg.raw(), PerfCtrlSts::power_on().raw());
    }

    #[test]
    fn other_bits_are_preserved() {
        // A real register carries unrelated fields; toggling DCA must not
        // clobber them.
        let mut reg = PerfCtrlSts::from_raw(0xff00 | (1 << 7));
        assert!(reg.dca_enabled());
        reg.disable_dca();
        assert_eq!(reg.raw() & 0xff00, 0xff00);
        reg.enable_dca();
        assert_eq!(reg.raw() & 0xff00, 0xff00);
    }

    #[test]
    fn half_configured_states_are_not_dca() {
        // Both bits set: no-snoop wins, DCA off.
        let both = PerfCtrlSts::from_raw((1 << 3) | (1 << 7));
        assert!(!both.dca_enabled());
        // Neither bit: allocating flow disabled, DCA off.
        let neither = PerfCtrlSts::from_raw(0);
        assert!(!neither.dca_enabled());
    }

    #[test]
    fn display_mentions_state() {
        let reg = PerfCtrlSts::power_on();
        let text = reg.to_string();
        assert!(text.contains("dca=on"));
    }
}
