//! Vendored stand-in for `serde_json`: JSON rendering and parsing over the
//! [`serde::Value`] data model of the sibling vendored serde crate.
//!
//! Supports exactly the entry points this workspace uses: [`to_string`],
//! [`to_string_pretty`] and [`from_str`].

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces; the
/// `Result` mirrors the real serde_json signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64, always with a decimal point or
                // exponent, which keeps the value a JSON number.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !fields.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', n * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    fields.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(fields));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // workspace's writer; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole unescaped run up to the next quote
                    // or backslash in one UTF-8 validation. Validating (or
                    // decoding) per character would re-scan the tail of the
                    // input for every byte, turning map-heavy documents —
                    // one key string per field — quadratic in input size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(run);
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&12345.0f64).unwrap(), "12345.0");
        assert_eq!(from_str::<f64>("12345.0").unwrap(), 12345.0);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_nested() {
        let v = vec![vec![1u64, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        let back: Vec<Vec<u64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_runs_mix_escapes_and_multibyte() {
        // The unescaped-run fast path must compose with escapes and
        // multi-byte UTF-8 on either side of them.
        let original = "pré\"fix\\λ\nrest—tail";
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        // A string-key-heavy document stays cheap to parse: this is the
        // shape that regressed to quadratic when each key character
        // re-validated the remaining input.
        let doc: Vec<std::collections::BTreeMap<String, u64>> = (0..512)
            .map(|i| [("alpha".to_string(), i), ("beta".to_string(), i * 2)].into())
            .collect();
        let json = to_string(&doc).unwrap();
        assert_eq!(
            from_str::<Vec<std::collections::BTreeMap<String, u64>>>(&json).unwrap(),
            doc
        );
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![1.25f64, 2.5];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
