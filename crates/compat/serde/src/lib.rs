//! Vendored stand-in for the `serde` crate.
//!
//! The build environment is fully offline, so this workspace vendors the
//! tiny subset of the serde API it actually uses: the [`Serialize`] and
//! [`Deserialize`] traits plus their derive macros (re-exported from the
//! sibling `serde_derive` proc-macro crate). Instead of serde's visitor
//! architecture, both traits go through a self-describing [`Value`] tree,
//! which is all `serde_json`'s `to_string`/`from_str` need.
//!
//! Only plain `#[derive(Serialize, Deserialize)]` plus the
//! `#[serde(default)]` field attribute are supported — the one attribute
//! schema evolution needs (absent fields fall back to
//! `Default::default()`); everything else matches what this workspace
//! uses and any other `#[serde(...)]` attribute is a compile error.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `name` in a [`Value::Map`].
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a map or lacks the field.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up `name` in a [`Value::Map`], tolerating its absence.
    ///
    /// The `#[serde(default)]` deserialization path: an absent field is
    /// `Ok(None)` (the caller substitutes `Default::default()`), but a
    /// non-map value is still a shape error.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a map.
    pub fn opt_field(&self, name: &str) -> Result<Option<&Value>, Error> {
        match self {
            Value::Map(fields) => Ok(fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)),
            other => Err(Error::new(format!(
                "expected map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up element `idx` in a [`Value::Array`].
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an array or is too short.
    pub fn get_index(&self, idx: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items
                .get(idx)
                .ok_or_else(|| Error::new(format!("missing tuple element {idx}"))),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// A short name for the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if `v` does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    ref other => {
                        return Err(Error::new(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

macro_rules! impl_int {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| Error::new(format!("integer {n} out of range")))?,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => {
                        return Err(Error::new(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // Values beyond u64 fall back to a decimal string so nothing is
        // silently truncated; `Deserialize` below accepts both forms.
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U64(n) => Ok(u128::from(*n)),
            Value::I64(n) if *n >= 0 => Ok(*n as u128),
            Value::Str(s) => s
                .parse::<u128>()
                .map_err(|_| Error::new(format!("invalid u128 string `{s}`"))),
            other => Err(Error::new(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => Value::I64(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::I64(n) => Ok(i128::from(*n)),
            Value::U64(n) => Ok(i128::from(*n)),
            Value::Str(s) => s
                .parse::<i128>()
                .map_err(|_| Error::new(format!("invalid i128 string `{s}`"))),
            other => Err(Error::new(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN),
            ref other => Err(Error::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::new(format!("expected array of length {N}, found {len}")))
    }
}

impl Serialize for std::sync::Arc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.as_ref().to_owned())
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(std::sync::Arc::from(s.as_str())),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected map, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($t::from_value(v.get_index($idx)?)?,)+))
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));
