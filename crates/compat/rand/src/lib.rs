//! Vendored stand-in for the `rand` crate.
//!
//! The build environment is offline, so this crate provides the small
//! slice of the rand 0.8 API the simulator uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen` and `gen_range` (for `Range` bounds). The generator is
//! xoshiro256++ seeded through SplitMix64 — fast, deterministic, and
//! statistically solid for simulation workloads; it makes no attempt to
//! be cryptographically secure (neither does the real `SmallRng`).

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain
/// (the stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform bits
    /// for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_sampling {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                // Multiply-shift bounded sampling (Lemire); the tiny bias
                // for huge spans is irrelevant to simulation workloads.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )+};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the stand-in for rand's `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for checkpointing. Restoring via
        /// [`SmallRng::from_state`] reproduces the stream exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`SmallRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_and_floats_are_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams should differ, {same}/64 collisions");
    }
}
