//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! for the vendored serde stand-in (the build environment is offline, so
//! `syn`/`quote` are unavailable and the item is parsed directly from the
//! raw token stream).
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * unit structs,
//! * enums whose variants are unit (with optional discriminants), tuple,
//!   or struct-like.
//!
//! Named fields may carry `#[serde(default)]`: deserialization then
//! substitutes `Default::default()` when the key is absent, which is how
//! the versioned `ScenarioSpec` schema stays loadable across field
//! additions. Generics and every other `#[serde(...)]` attribute are
//! intentionally rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier plus whether `#[serde(default)]` was
/// attached (absent keys then fall back to `Default::default()`).
struct FieldDef {
    name: String,
    default: bool,
}

enum Fields {
    Named(Vec<FieldDef>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (the vendored `to_value` form).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (the vendored `from_value` form).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("::std::compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = skip_attrs_and_vis(&tokens, &mut i)?;
    if attrs.default {
        return Err("#[serde(default)] is only supported on named struct fields".to_string());
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive on generic type `{name}` is not supported by the vendored serde"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Serde-relevant outer attributes collected while skipping.
#[derive(Default)]
struct Attrs {
    /// `#[serde(default)]` was present.
    default: bool,
}

/// Advances `i` past any outer attributes (`#[...]`, including expanded
/// doc comments) and a `pub` / `pub(...)` visibility qualifier,
/// collecting `#[serde(...)]` content along the way.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<Attrs, String> {
    let mut attrs = Attrs::default();
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    parse_attr(g.stream(), &mut attrs)?;
                }
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return Ok(attrs),
        }
    }
}

/// Interprets one outer-attribute body: `serde(default)` sets the flag,
/// any other `serde(...)` payload is rejected (so silently-ignored
/// attributes can't hide schema bugs), and every non-serde attribute
/// (doc comments, `derive`, ...) is ignored.
fn parse_attr(body: TokenStream, attrs: &mut Attrs) -> Result<(), String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(()),
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => return Err(format!("malformed #[serde(...)] attribute: {other:?}")),
    };
    for t in inner {
        match &t {
            TokenTree::Ident(id) if id.to_string() == "default" => attrs.default = true,
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => {
                return Err(format!(
                    "unsupported #[serde({other})]: the vendored serde only knows `default`"
                ))
            }
        }
    }
    Ok(())
}

/// Extracts the fields of a named-fields body (name plus any
/// `#[serde(default)]` marker), skipping each type by scanning to the
/// next top-level comma (tracking `<`/`>` nesting; parens and brackets
/// arrive pre-grouped).
fn parse_named_fields(body: TokenStream) -> Result<Vec<FieldDef>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_to_top_level_comma(&tokens, &mut i);
        fields.push(FieldDef {
            name,
            default: attrs.default,
        });
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct / tuple-variant body: one per
/// non-empty comma-separated segment.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        count += 1;
        skip_to_top_level_comma(&tokens, &mut i);
    }
    count
}

/// Advances `i` past tokens until just after the next comma at angle-depth
/// zero (or to the end of the stream).
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attrs_and_vis(&tokens, &mut i)?;
        if attrs.default {
            return Err("#[serde(default)] is only supported on named struct fields".to_string());
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= <discriminant>` and the trailing comma.
        skip_to_top_level_comma(&tokens, &mut i);
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => named_to_map(names, |f| format!("&self.{f}")),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => tuple_to_array(*n, |idx| format!("&self.{idx}")),
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),\n"
                        ));
                    }
                    Fields::Named(fields) => {
                        let pat = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let inner = named_to_map(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {pat} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vname:?}), {inner})]),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let pat = binds.join(", ");
                        // Newtype variants serialize transparently (the
                        // real serde representation `{"Variant": value}`),
                        // matching the `Tuple(1)` deserialize arm; wider
                        // tuples become arrays.
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            tuple_to_array(*n, |idx| format!("__f{idx}"))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({pat}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vname:?}), {inner})]),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

fn named_to_map(fields: &[FieldDef], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            let f = f.name.as_str();
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({}))",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

/// One named-field initializer of the generated `from_value` body:
/// `#[serde(default)]` fields tolerate an absent key by substituting
/// `Default::default()`, everything else requires the key.
fn field_init(f: &FieldDef, src: &str) -> String {
    let name = f.name.as_str();
    if f.default {
        format!(
            "{name}: match {src}.opt_field({name:?})? {{ \
                 ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?, \
                 ::std::option::Option::None => ::std::default::Default::default() }}"
        )
    } else {
        format!("{name}: ::serde::Deserialize::from_value({src}.get_field({name:?})?)?")
    }
}

fn tuple_to_array(n: usize, access: impl Fn(usize) -> String) -> String {
    let entries: Vec<String> = (0..n)
        .map(|idx| format!("::serde::Serialize::to_value({})", access(idx)))
        .collect();
    format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names.iter().map(|f| field_init(f, "v")).collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|idx| {
                            format!("::serde::Deserialize::from_value(v.get_index({idx})?)?")
                        })
                        .collect();
                    format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .collect();
            let data: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .collect();
            let mut arms = String::new();
            if !unit.is_empty() {
                let mut inner = String::new();
                for v in &unit {
                    inner.push_str(&format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),\n",
                        v.name, v.name
                    ));
                }
                arms.push_str(&format!(
                    "::serde::Value::Str(__s) => match __s.as_str() {{ {inner} \
                         __other => ::std::result::Result::Err(::serde::Error::new(\
                             ::std::format!(\"unknown variant `{{__other}}` of {name}\"))) }},\n"
                ));
            }
            if !data.is_empty() {
                let mut inner = String::new();
                for v in &data {
                    let vname = &v.name;
                    let build = match &v.fields {
                        Fields::Named(fields) => {
                            let inits: Vec<String> =
                                fields.iter().map(|f| field_init(f, "__content")).collect();
                            format!("{name}::{vname} {{ {} }}", inits.join(", "))
                        }
                        Fields::Tuple(1) => {
                            format!("{name}::{vname}(::serde::Deserialize::from_value(__content)?)")
                        }
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|idx| {
                                    format!(
                                        "::serde::Deserialize::from_value(__content.get_index({idx})?)?"
                                    )
                                })
                                .collect();
                            format!("{name}::{vname}({})", inits.join(", "))
                        }
                        Fields::Unit => unreachable!(),
                    };
                    inner.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({build}),\n"
                    ));
                }
                arms.push_str(&format!(
                    "::serde::Value::Map(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __content) = &__fields[0];\n\
                         match __tag.as_str() {{ {inner} \
                             __other => ::std::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))) }}\n\
                     }},\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{ {arms} __other => ::std::result::Result::Err(::serde::Error::new(\
                             ::std::format!(\"invalid representation of enum {name}: {{}}\", __other.kind()))) }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
