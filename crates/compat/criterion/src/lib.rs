//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment is offline, so this crate provides the small
//! slice of the Criterion API the `a4-bench` targets use: [`Criterion`],
//! benchmark groups with `sample_size` / `throughput` / `bench_function`,
//! a [`Bencher`] whose `iter` times the closure, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — a fixed warm-up iteration plus a
//! capped number of timed iterations, reporting mean wall-clock time (and
//! element throughput when configured). There is no outlier analysis, no
//! HTML report, and no baseline comparison; the point is that `cargo
//! bench` runs and prints comparable numbers between commits.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier, matching
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of one benchmark, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs (min 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() / b.iterations.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  ({:.3e} elem/s)", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  ({:.3e} B/s)", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!("bench: {}/{id}  time: {:.6} s/iter{rate}", self.name, mean);
        self
    }

    /// Ends the group (kept for API parity; drop does the same).
    pub fn finish(self) {}
}

/// Times the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed iterations.
    /// The closure's return value is passed through [`black_box`] so the
    /// computation cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a runnable group function, matching
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target, matching
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        let mut runs = 0u32;
        g.sample_size(3)
            .bench_function("count", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 timed iterations.
        assert_eq!(runs, 4);
        g.finish();
    }
}
