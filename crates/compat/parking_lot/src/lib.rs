//! Vendored stand-in for `parking_lot`: a [`Mutex`]/[`RwLock`] with
//! parking_lot's poison-free API, implemented over the standard-library
//! primitives (a poisoned std lock simply yields its inner guard — the
//! data is still protected, and this workspace holds no invariants that
//! poisoning would guard).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};

/// Re-exported guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Re-exported guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Re-exported guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
