//! Collection strategies (`prop::collection::vec`).

use crate::{SampleRange, Strategy, TestRng};
use std::ops::Range;

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = usize::sample_range(rng, &self.size);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}
