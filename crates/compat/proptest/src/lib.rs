//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment is offline, so this crate provides the slice of
//! the proptest API this workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`, range / tuple / `any::<T>()` strategies,
//! [`collection::vec`], the [`prop_oneof!`] union, and the [`proptest!`]
//! / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! Semantics are deliberately simpler than real proptest: cases are
//! generated from a deterministic per-case seed, failures report the
//! generated inputs but are **not shrunk**, and `prop_assume!` counts the
//! case as passed rather than retrying. That is enough to preserve the
//! bug-finding power of the invariant checks while keeping the vendored
//! code small.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::Range;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Strategy};

/// Deterministic generator handed to [`Strategy::sample`] (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Runner configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the heavier hierarchy
        // property tests fast in CI while still exploring broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Everything a property-test module needs, star-importable.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{ProptestConfig, TestRng};

    /// Namespaced access mirroring proptest's `prop::` module tree
    /// (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

impl<T: SampleRange> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range(rng, self)
    }
}

/// Numeric types usable as `low..high` range strategies.
pub trait SampleRange: Copy + Debug + 'static {
    /// Uniform draw from `range`.
    fn sample_range(rng: &mut TestRng, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for $t {
            fn sample_range(rng: &mut TestRng, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range strategy");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::new(
                    0xA4_5EED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let described = ::std::format!(
                    ::std::concat!($(::std::stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(message) = outcome {
                    ::std::panic!(
                        "property `{}` failed on case {}/{}:\n  {}\n  with {}",
                        ::std::stringify!($name),
                        case + 1,
                        config.cases,
                        message,
                        described,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "{} at {}:{}",
                ::std::format!($($fmt)+),
                ::std::file!(),
                ::std::line!(),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pa_left, __pa_right) = (&$left, &$right);
        $crate::prop_assert!(
            *__pa_left == *__pa_right,
            "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
            ::std::stringify!($left),
            ::std::stringify!($right),
            __pa_left,
            __pa_right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pa_left, __pa_right) = (&$left, &$right);
        $crate::prop_assert!(
            *__pa_left == *__pa_right,
            "{} (left: {:?}, right: {:?})",
            ::std::format!($($fmt)+),
            __pa_left,
            __pa_right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pa_left, __pa_right) = (&$left, &$right);
        $crate::prop_assert!(
            *__pa_left != *__pa_right,
            "assertion failed: `{} != {}` (both {:?})",
            ::std::stringify!($left),
            ::std::stringify!($right),
            __pa_left
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (This stand-in counts the case as passed instead of resampling.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Picks uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
