//! The [`Strategy`] trait and its combinators.

use crate::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying a bounded number of
    /// times (mirrors `prop_filter`; the label is kept for API parity).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        label: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            label,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    label: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.label
        );
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<bool>()`, `any::<u64>()`...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Boxes a strategy for storage in a [`Union`] (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice between several strategies with a common value type.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Creates a union over `arms`; must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}
