//! DRAM model for the A4 reproduction.
//!
//! The paper's figures report *memory read/write bandwidth* as the primary
//! witness of LLC contention (a workload whose lines get evicted shows up
//! as extra memory traffic) and the effectiveness of DCA (DMA leak turns
//! nominally cache-resident I/O into memory reads). This crate provides:
//!
//! * per-interval byte accounting split into reads and writes,
//! * a utilization-driven queueing-delay factor that slows *every* memory
//!   access down as bandwidth saturates — the mechanism by which one
//!   workload's LLC misses hurt another workload's IPC.
//!
//! The latency model is a standard M/M/1-flavoured inflation,
//! `base × (1 + α·ρ/(1−ρ))` clamped at high utilization, which is enough
//! to reproduce the paper's *shapes* (who interferes with whom and where
//! the crossovers are).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use a4_model::{A4Error, Bandwidth, Bytes, Result, SimTime, LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Static description of the memory subsystem.
///
/// # Examples
///
/// ```
/// use a4_mem::MemoryConfig;
///
/// let cfg = MemoryConfig::ddr4_2666_6ch();
/// assert!(cfg.peak_bandwidth().as_gb_s() > 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Number of DDR channels.
    pub channels: usize,
    /// Peak bandwidth of one channel.
    pub channel_bandwidth: Bandwidth,
    /// Unloaded (idle) access latency in nanoseconds.
    pub base_latency_ns: f64,
    /// Queueing sensitivity α in `base × (1 + α·ρ/(1−ρ))`.
    pub queue_alpha: f64,
    /// Utilization clamp: ρ is capped here to keep latency finite.
    pub max_utilization: f64,
}

impl MemoryConfig {
    /// The paper's server: 6 channels of DDR4-2666 (Table 1), ≈128 GB/s
    /// peak, ~90 ns idle latency.
    pub fn ddr4_2666_6ch() -> Self {
        MemoryConfig {
            channels: 6,
            channel_bandwidth: Bandwidth::from_gb_s(21.3),
            base_latency_ns: 90.0,
            queue_alpha: 0.6,
            max_utilization: 0.95,
        }
    }

    /// Aggregate peak bandwidth across channels.
    pub fn peak_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(
            self.channel_bandwidth.as_bytes_per_sec() * self.channels as f64,
        )
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidConfig`] for zero channels/bandwidth or a
    /// utilization clamp outside `(0, 1)`.
    pub fn validate(&self) -> Result<()> {
        if self.channels == 0 {
            return Err(A4Error::InvalidConfig {
                what: "memory channels must be nonzero",
            });
        }
        if self.channel_bandwidth.as_bytes_per_sec() <= 0.0 {
            return Err(A4Error::InvalidConfig {
                what: "channel bandwidth must be positive",
            });
        }
        if !(0.0 < self.max_utilization && self.max_utilization < 1.0) {
            return Err(A4Error::InvalidConfig {
                what: "max utilization must be in (0,1)",
            });
        }
        if self.base_latency_ns <= 0.0 || self.queue_alpha < 0.0 {
            return Err(A4Error::InvalidConfig {
                what: "latency parameters must be positive",
            });
        }
        Ok(())
    }
}

/// Per-interval traffic snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryTraffic {
    /// Bytes read from DRAM in the interval.
    pub read: Bytes,
    /// Bytes written to DRAM in the interval.
    pub written: Bytes,
}

impl MemoryTraffic {
    /// Total bytes moved.
    pub fn total(&self) -> Bytes {
        self.read + self.written
    }
}

/// The memory controller: traffic accounting plus the loaded-latency model.
///
/// The simulator calls [`MemoryController::record_read_lines`] /
/// [`MemoryController::record_write_lines`] as the cache hierarchy reports
/// misses and write-backs, and rolls the interval over with
/// [`MemoryController::end_interval`]. The *previous* interval's
/// utilization drives [`MemoryController::latency_factor`] for the current
/// one — a one-interval feedback delay that keeps the model deterministic
/// and cheap.
///
/// # Examples
///
/// ```
/// use a4_mem::{MemoryConfig, MemoryController};
/// use a4_model::SimTime;
///
/// let mut mem = MemoryController::new(MemoryConfig::ddr4_2666_6ch())?;
/// mem.record_read_lines(1000);
/// let traffic = mem.end_interval(SimTime::from_micros(10));
/// assert_eq!(traffic.read.as_u64(), 64_000);
/// assert!(mem.latency_factor() >= 1.0);
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    config: MemoryConfig,
    read_lines: u64,
    write_lines: u64,
    latency_factor: f64,
    utilization: f64,
    cumulative: MemoryTraffic,
}

impl MemoryController {
    /// Creates an idle controller.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidConfig`] if `config` is invalid.
    pub fn new(config: MemoryConfig) -> Result<Self> {
        config.validate()?;
        Ok(MemoryController {
            config,
            read_lines: 0,
            write_lines: 0,
            latency_factor: 1.0,
            utilization: 0.0,
            cumulative: MemoryTraffic::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Accounts `lines` cache lines read from DRAM.
    #[inline]
    pub fn record_read_lines(&mut self, lines: u64) {
        self.read_lines += lines;
    }

    /// Accounts `lines` cache lines written to DRAM.
    #[inline]
    pub fn record_write_lines(&mut self, lines: u64) {
        self.write_lines += lines;
    }

    /// Closes the current interval of length `dt`: returns its traffic,
    /// updates the utilization estimate and resets the interval counters.
    pub fn end_interval(&mut self, dt: SimTime) -> MemoryTraffic {
        let traffic = MemoryTraffic {
            read: Bytes::new(self.read_lines * LINE_BYTES),
            written: Bytes::new(self.write_lines * LINE_BYTES),
        };
        self.cumulative.read += traffic.read;
        self.cumulative.written += traffic.written;
        let secs = dt.as_secs_f64();
        if secs > 0.0 {
            let offered = traffic.total().as_u64() as f64 / secs;
            let rho = (offered / self.config.peak_bandwidth().as_bytes_per_sec())
                .min(self.config.max_utilization);
            self.utilization = rho;
            self.latency_factor = 1.0 + self.config.queue_alpha * rho / (1.0 - rho);
        }
        self.read_lines = 0;
        self.write_lines = 0;
        traffic
    }

    /// Utilization ρ measured over the last closed interval.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Current loaded-latency inflation factor (≥ 1).
    #[inline]
    pub fn latency_factor(&self) -> f64 {
        self.latency_factor
    }

    /// Loaded access latency in nanoseconds.
    pub fn access_latency_ns(&self) -> f64 {
        self.config.base_latency_ns * self.latency_factor
    }

    /// All traffic since construction.
    pub fn cumulative_traffic(&self) -> MemoryTraffic {
        self.cumulative
    }

    /// Snapshots the complete mutable controller state for a checkpoint.
    pub fn save_state(&self) -> MemControllerState {
        let _rebuilt_by_constructor = &self.config;
        MemControllerState {
            read_lines: self.read_lines,
            write_lines: self.write_lines,
            latency_factor: self.latency_factor,
            utilization: self.utilization,
            cumulative: self.cumulative,
        }
    }

    /// Restores a [`MemoryController::save_state`] snapshot.
    pub fn restore_state(&mut self, st: &MemControllerState) {
        let _rebuilt_by_constructor = &self.config;
        self.read_lines = st.read_lines;
        self.write_lines = st.write_lines;
        self.latency_factor = st.latency_factor;
        self.utilization = st.utilization;
        self.cumulative = st.cumulative;
    }
}

/// Serializable snapshot of the complete mutable [`MemoryController`]
/// state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemControllerState {
    /// Lines read from DRAM in the open interval.
    pub read_lines: u64,
    /// Lines written to DRAM in the open interval.
    pub write_lines: u64,
    /// Loaded-latency inflation factor from the last closed interval.
    pub latency_factor: f64,
    /// Utilization ρ measured over the last closed interval.
    pub utilization: f64,
    /// All traffic since construction.
    pub cumulative: MemoryTraffic,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn controller() -> MemoryController {
        MemoryController::new(MemoryConfig::ddr4_2666_6ch()).expect("valid config")
    }

    #[test]
    fn config_validation() {
        let mut cfg = MemoryConfig::ddr4_2666_6ch();
        cfg.validate().unwrap();
        cfg.channels = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = MemoryConfig::ddr4_2666_6ch();
        cfg.max_utilization = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = MemoryConfig::ddr4_2666_6ch();
        cfg.base_latency_ns = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn idle_memory_has_unit_factor() {
        let mut mem = controller();
        assert_eq!(mem.latency_factor(), 1.0);
        let t = mem.end_interval(SimTime::from_micros(10));
        assert_eq!(t.total(), Bytes::ZERO);
        assert_eq!(mem.latency_factor(), 1.0);
        assert!((mem.access_latency_ns() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn traffic_accounting_and_reset() {
        let mut mem = controller();
        mem.record_read_lines(10);
        mem.record_write_lines(5);
        let t = mem.end_interval(SimTime::from_micros(1));
        assert_eq!(t.read.as_u64(), 640);
        assert_eq!(t.written.as_u64(), 320);
        // Interval counters reset.
        let t2 = mem.end_interval(SimTime::from_micros(1));
        assert_eq!(t2.total(), Bytes::ZERO);
        assert_eq!(mem.cumulative_traffic().read.as_u64(), 640);
    }

    #[test]
    fn saturation_inflates_latency() {
        let mut mem = controller();
        // Offer 2x the peak bandwidth in one interval.
        let peak = mem.config().peak_bandwidth();
        let dt = SimTime::from_micros(100);
        let lines = (peak.bytes_in(dt).as_u64() * 2) / LINE_BYTES;
        mem.record_read_lines(lines);
        mem.end_interval(dt);
        assert!(
            (mem.utilization() - 0.95).abs() < 1e-9,
            "clamped at max utilization"
        );
        assert!(
            mem.latency_factor() > 5.0,
            "near-saturation latency blows up"
        );
        // An idle interval recovers.
        mem.end_interval(dt);
        assert_eq!(mem.latency_factor(), 1.0);
    }

    #[test]
    fn moderate_load_moderate_inflation() {
        let mut mem = controller();
        let dt = SimTime::from_micros(100);
        let half = mem.config().peak_bandwidth().bytes_in(dt).as_u64() / 2 / LINE_BYTES;
        mem.record_read_lines(half);
        mem.end_interval(dt);
        assert!((mem.utilization() - 0.5).abs() < 0.01);
        let f = mem.latency_factor();
        assert!(f > 1.2 && f < 2.0, "factor {f}");
    }

    proptest! {
        #[test]
        fn latency_factor_is_monotone_in_load(a in 0u64..2_000_000, b in 0u64..2_000_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let dt = SimTime::from_micros(100);
            let mut m1 = controller();
            m1.record_read_lines(lo);
            m1.end_interval(dt);
            let mut m2 = controller();
            m2.record_read_lines(hi);
            m2.end_interval(dt);
            prop_assert!(m2.latency_factor() >= m1.latency_factor());
            prop_assert!(m1.latency_factor() >= 1.0);
        }

        #[test]
        fn reads_plus_writes_equals_total(r in 0u64..10_000, w in 0u64..10_000) {
            let mut mem = controller();
            mem.record_read_lines(r);
            mem.record_write_lines(w);
            let t = mem.end_interval(SimTime::from_micros(10));
            prop_assert_eq!(t.total().as_u64(), (r + w) * LINE_BYTES);
        }
    }
}
