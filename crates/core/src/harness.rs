//! Run harness: drives a [`System`] under an [`LlcPolicy`] and collects
//! per-second samples, mirroring the paper's 70 s runs (warm-up +
//! measurement windows, §6).

use crate::LlcPolicy;
use a4_model::WorkloadId;
use a4_sim::{LatencyKind, MonitorSample, System};
use serde::{Deserialize, Serialize};

/// A completed run: every monitoring sample plus aggregate helpers.
///
/// Serializable so sweep engines can cache reports on disk and rebuild
/// figure tables without re-simulating (see `a4-experiments`).
#[derive(Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// The policy's display name.
    pub policy: String,
    /// One sample per logical second (measurement window only).
    pub samples: Vec<MonitorSample>,
}

impl RunReport {
    /// Mean of a per-workload metric over the measurement window.
    pub fn mean_of(&self, id: WorkloadId, f: impl Fn(&a4_sim::WorkloadSample) -> f64) -> f64 {
        let values: Vec<f64> = self
            .samples
            .iter()
            .filter_map(|s| s.workload(id))
            .map(&f)
            .collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Mean IPC of a workload.
    pub fn ipc(&self, id: WorkloadId) -> f64 {
        self.mean_of(id, |w| w.ipc)
    }

    /// Mean LLC hit rate of a workload.
    pub fn llc_hit_rate(&self, id: WorkloadId) -> f64 {
        self.mean_of(id, |w| w.llc_hit_rate)
    }

    /// Mean LLC miss rate of a workload.
    pub fn llc_miss_rate(&self, id: WorkloadId) -> f64 {
        self.mean_of(id, |w| w.llc_miss_rate)
    }

    /// Total operations completed by a workload across the window.
    pub fn total_ops(&self, id: WorkloadId) -> u64 {
        self.samples
            .iter()
            .filter_map(|s| s.workload(id))
            .map(|w| w.ops)
            .sum()
    }

    /// Total I/O bytes of a workload across the window.
    pub fn total_io_bytes(&self, id: WorkloadId) -> u64 {
        self.samples
            .iter()
            .filter_map(|s| s.workload(id))
            .map(|w| w.io_bytes)
            .sum()
    }

    /// Length of the measurement window in *simulated* seconds: the sum
    /// of the samples' interval lengths.
    ///
    /// This is the only correct denominator for paper-comparable
    /// throughput (matching [`a4_sim::MonitorSample::dilated_gbps`]):
    /// one monitoring sample covers one *logical* second, whose simulated
    /// length is `quantum × quanta_per_second` (1 ms on the scaled Xeon,
    /// 10 µs on the small test config). Hardcoding `samples.len() × 1e-3`
    /// — the pattern this helper replaced — silently assumes the Xeon
    /// config and is wrong by orders of magnitude on any other.
    pub fn measured_secs(&self) -> f64 {
        self.samples.iter().map(|s| s.interval.as_secs_f64()).sum()
    }

    /// Paper-comparable I/O throughput of a workload over the window, in
    /// GB/s (total payload bytes over simulated window length).
    pub fn io_gbps(&self, id: WorkloadId) -> f64 {
        let secs = self.measured_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.total_io_bytes(id) as f64 / secs / 1e9
    }

    /// Paper-comparable DMA-read (device egress) throughput of a device
    /// over the window, in GB/s.
    pub fn device_dma_read_gbps(&self, id: a4_model::DeviceId) -> f64 {
        let secs = self.measured_secs();
        if secs == 0.0 {
            return 0.0;
        }
        let bytes: u64 = self
            .samples
            .iter()
            .filter_map(|s| s.device(id))
            .map(|d| d.dma_read_bytes)
            .sum();
        bytes as f64 / secs / 1e9
    }

    /// Total instructions of a workload across the window.
    pub fn total_instructions(&self, id: WorkloadId) -> u64 {
        self.samples
            .iter()
            .filter_map(|s| s.workload(id))
            .map(|w| w.instructions)
            .sum()
    }

    /// Instructions summed over every workload (facade quick check).
    pub fn total_instructions_all(&self) -> u64 {
        self.samples
            .iter()
            .flat_map(|s| s.workloads.iter())
            .map(|w| w.instructions)
            .sum()
    }

    /// Count-weighted mean latency of one histogram slot, in ns.
    pub fn mean_latency_ns(&self, id: WorkloadId, kind: LatencyKind) -> f64 {
        let mut total = 0.0;
        let mut count = 0u64;
        for s in &self.samples {
            if let Some(w) = s.workload(id) {
                let stat = w.latency_of(kind);
                total += stat.mean_ns * stat.count as f64;
                count += stat.count;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Maximum per-interval p99 of one histogram slot (a conservative
    /// tail estimate across the window), in ns.
    pub fn p99_latency_ns(&self, id: WorkloadId, kind: LatencyKind) -> u64 {
        self.samples
            .iter()
            .filter_map(|s| s.workload(id))
            .map(|w| w.latency_of(kind).p99_ns)
            .max()
            .unwrap_or(0)
    }

    /// Mean system memory read bandwidth over the window, GB/s.
    pub fn mem_read_gbps(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.mem_read_gbps()))
    }

    /// Mean system memory write bandwidth over the window, GB/s.
    pub fn mem_write_gbps(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.mem_write_gbps()))
    }

    /// Total bytes pulled across one specific UPI link (socket pair
    /// `a`↔`b`, order-insensitive) over the window — per-link, so a
    /// crossing is attributable to its pair rather than aliased into a
    /// fabric-wide aggregate.
    pub fn upi_link_read_bytes(&self, a: usize, b: usize) -> u64 {
        self.samples
            .iter()
            .filter_map(|s| s.upi_link(a, b))
            .map(|l| l.read_bytes)
            .sum()
    }

    /// Total bytes pushed across one specific UPI link over the window.
    pub fn upi_link_write_bytes(&self, a: usize, b: usize) -> u64 {
        self.samples
            .iter()
            .filter_map(|s| s.upi_link(a, b))
            .map(|l| l.write_bytes)
            .sum()
    }

    /// Paper-comparable read throughput of one UPI link over the
    /// window, GB/s.
    pub fn upi_link_read_gbps(&self, a: usize, b: usize) -> f64 {
        let secs = self.measured_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.upi_link_read_bytes(a, b) as f64 / secs / 1e9
    }

    /// Paper-comparable write throughput of one UPI link over the
    /// window, GB/s.
    pub fn upi_link_write_gbps(&self, a: usize, b: usize) -> f64 {
        let secs = self.measured_secs();
        if secs == 0.0 {
            return 0.0;
        }
        self.upi_link_write_bytes(a, b) as f64 / secs / 1e9
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let values: Vec<f64> = iter.collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Owns a [`System`] plus a policy and runs the measurement protocol.
///
/// # Examples
///
/// ```
/// use a4_core::{DefaultPolicy, Harness};
/// use a4_sim::{System, SystemConfig};
///
/// let sys = System::new(SystemConfig::small_test());
/// let mut harness = Harness::new(sys);
/// harness.attach_policy(Box::new(DefaultPolicy::new()));
/// let report = harness.run(2, 3); // 2 s warm-up, 3 s measurement
/// assert_eq!(report.samples.len(), 3);
/// ```
#[derive(Debug)]
pub struct Harness {
    system: System,
    policy: Option<Box<dyn LlcPolicy>>,
}

impl Harness {
    /// Wraps a configured system (workloads and devices already added).
    pub fn new(system: System) -> Self {
        Harness {
            system,
            policy: None,
        }
    }

    /// Wraps a configured system with a policy already attached — the
    /// single entry point `ScenarioSpec::build` uses.
    pub fn with_policy(system: System, policy: Box<dyn LlcPolicy>) -> Self {
        Harness {
            system,
            policy: Some(policy),
        }
    }

    /// Unwraps the harness back into its system (for tests that drive
    /// the control loop manually).
    pub fn into_system(self) -> System {
        self.system
    }

    /// Installs the LLC-management policy (none = uncontrolled hardware
    /// defaults).
    pub fn attach_policy(&mut self, policy: Box<dyn LlcPolicy>) {
        self.policy = Some(policy);
    }

    /// The system, for further configuration between runs.
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// Read-only system access.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Read-only policy access (for checkpointing).
    pub fn policy(&self) -> Option<&dyn LlcPolicy> {
        self.policy.as_deref()
    }

    /// Mutable policy access (for checkpoint restore).
    pub fn policy_mut(&mut self) -> Option<&mut (dyn LlcPolicy + 'static)> {
        self.policy.as_deref_mut()
    }

    /// Runs `warmup` logical seconds (policy active, samples discarded)
    /// followed by `measure` recorded seconds.
    pub fn run(&mut self, warmup: u64, measure: u64) -> RunReport {
        let mut samples = Vec::with_capacity(measure as usize);
        for second in 0..warmup + measure {
            self.system.run_logical_seconds(1);
            let sample = self.system.sample();
            if let Some(policy) = self.policy.as_mut() {
                policy.tick(&mut self.system, &sample);
            }
            if second >= warmup {
                samples.push(sample);
            }
        }
        RunReport {
            policy: self
                .policy
                .as_ref()
                .map_or("none".into(), |p| p.name().to_string()),
            samples,
        }
    }

    /// Convenience wrapper: run `seconds` with no warm-up.
    pub fn run_secs(&mut self, seconds: u64) -> RunReport {
        self.run(0, seconds)
    }

    /// The supervised variant of [`Harness::run`]: after every logical
    /// second (sample taken, policy ticked, sample recorded) the
    /// supervisor observes the run and may abort it.
    ///
    /// Resume support: `start_second` is the count of logical seconds a
    /// previous incarnation already completed, and `samples` seeds the
    /// report with the measurement samples it already recorded — pass
    /// `0` and `Vec::new()` for a fresh run. The loop then covers
    /// seconds `start_second..warmup + measure` and produces a report
    /// bit-identical to an uninterrupted run, provided the system and
    /// policy were restored from a checkpoint taken at `start_second`.
    pub fn run_supervised(
        &mut self,
        warmup: u64,
        measure: u64,
        start_second: u64,
        samples: Vec<MonitorSample>,
        supervisor: &mut dyn RunSupervisor,
    ) -> Result<RunReport, RunAborted> {
        let mut samples = samples;
        samples.reserve(measure as usize);
        for second in start_second..warmup + measure {
            self.system.run_logical_seconds(1);
            let sample = self.system.sample();
            if let Some(policy) = self.policy.as_mut() {
                policy.tick(&mut self.system, &sample);
            }
            if second >= warmup {
                samples.push(sample);
            }
            let ctx = SupervisorCtx {
                second: second + 1,
                warmup,
                system: &self.system,
                policy: self.policy.as_deref(),
                samples: &samples,
            };
            if let Err(reason) = supervisor.after_second(ctx) {
                return Err(RunAborted {
                    second: second + 1,
                    reason,
                });
            }
        }
        Ok(RunReport {
            policy: self
                .policy
                .as_ref()
                .map_or("none".into(), |p| p.name().to_string()),
            samples,
        })
    }
}

/// What a [`RunSupervisor`] sees after each completed logical second.
#[derive(Debug)]
pub struct SupervisorCtx<'a> {
    /// Logical seconds completed so far (1-based after the first).
    pub second: u64,
    /// The run's warm-up length, so supervisors can tell measurement
    /// samples from discarded ones.
    pub warmup: u64,
    /// The system, for state snapshots and quantum accounting.
    pub system: &'a System,
    /// The attached policy, for state snapshots.
    pub policy: Option<&'a dyn LlcPolicy>,
    /// Measurement samples recorded so far (seeded ones included).
    pub samples: &'a [MonitorSample],
}

/// A supervised run stopped early: carries the abort point and the
/// supervisor's reason (e.g. a watchdog's exhausted quantum budget).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunAborted {
    /// Logical seconds completed when the run was aborted.
    pub second: u64,
    /// Human-readable abort reason.
    pub reason: String,
}

impl std::fmt::Display for RunAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "run aborted after {} s: {}", self.second, self.reason)
    }
}

impl std::error::Error for RunAborted {}

/// Observes a supervised run once per logical second — the hook the
/// sweep layer uses for periodic checkpointing and runaway-cell
/// watchdogs.
pub trait RunSupervisor {
    /// Called after each logical second. Returning `Err(reason)` aborts
    /// the run with a [`RunAborted`].
    fn after_second(&mut self, ctx: SupervisorCtx<'_>) -> Result<(), String>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DefaultPolicy;
    use a4_model::{CoreId, LineAddr, Priority, WorkloadKind};
    use a4_sim::{CoreCtx, SystemConfig, Workload, WorkloadInfo};

    #[derive(Debug)]
    struct Busy(LineAddr);
    impl Workload for Busy {
        fn info(&self) -> WorkloadInfo {
            WorkloadInfo {
                name: "busy".into(),
                kind: WorkloadKind::NonIo,
                device: None,
            }
        }
        fn step(&mut self, ctx: &mut CoreCtx<'_>) {
            while ctx.has_budget() {
                ctx.read(self.0);
                ctx.compute(10.0, 10);
                ctx.add_ops(1);
            }
        }
    }

    #[test]
    fn warmup_samples_are_discarded() {
        let mut sys = System::new(SystemConfig::small_test());
        let base = sys.alloc_lines(1);
        let id = sys
            .add_workload(Box::new(Busy(base)), vec![CoreId(0)], Priority::High)
            .unwrap();
        let mut h = Harness::new(sys);
        h.attach_policy(Box::new(DefaultPolicy::new()));
        let report = h.run(3, 4);
        assert_eq!(report.samples.len(), 4);
        assert_eq!(report.policy, "Default");
        assert!(report.ipc(id) > 0.0);
        assert!(report.total_ops(id) > 0);
        assert!(report.total_instructions(id) > 0);
        assert!(report.total_instructions_all() >= report.total_instructions(id));
    }

    #[test]
    fn runs_without_policy() {
        let sys = System::new(SystemConfig::small_test());
        let mut h = Harness::new(sys);
        let report = h.run_secs(2);
        assert_eq!(report.policy, "none");
        assert_eq!(report.samples.len(), 2);
        assert_eq!(report.mem_read_gbps(), 0.0);
    }

    /// A report of `n` synthetic samples, each covering one 1 ms logical
    /// second with `io_bytes` of workload-0 I/O payload.
    fn synthetic_io_report(n: usize, io_bytes: u64) -> RunReport {
        let samples = (1..=n)
            .map(|sec| a4_sim::MonitorSample {
                t: a4_model::SimTime::from_millis(sec as u64),
                logical_second: sec as u64,
                workloads: vec![a4_sim::WorkloadSample {
                    id: WorkloadId(0),
                    name: "io".into(),
                    kind: a4_model::WorkloadKind::StorageIo,
                    priority: Priority::High,
                    accesses: 0,
                    llc_hit_rate: 0.0,
                    llc_miss_rate: 0.0,
                    mlc_miss_rate: 0.0,
                    instructions: 0,
                    ipc: 0.0,
                    ops: 1,
                    io_bytes,
                    latency: [a4_sim::LatencyStat::default(); 8],
                    dca_allocs: 0,
                    dca_updates: 0,
                    dma_leaks: 0,
                    dma_bloats: 0,
                    migrations: 0,
                    dca_leak_rate: 0.0,
                    mem_read_bytes: 0,
                    mem_write_bytes: 0,
                }],
                devices: vec![],
                upi: vec![],
                mem_read: a4_model::Bytes::ZERO,
                mem_written: a4_model::Bytes::ZERO,
                time_dilation: 1000.0,
                interval: a4_model::SimTime::from_millis(1),
            })
            .collect();
        RunReport {
            policy: "none".into(),
            samples,
        }
    }

    /// Regression test pinning the samples→seconds conversion: one
    /// monitoring sample covers one *logical* second of simulated time
    /// (1 ms on the scaled Xeon), so throughput must divide by the
    /// samples' actual interval lengths — never by `samples.len()`
    /// (which treats a logical second as a real second, deflating GB/s
    /// by the dilation factor of ~1000×), and never by a hardcoded
    /// `len × 1e-3` (which breaks on any non-Xeon config).
    #[test]
    fn io_gbps_derives_seconds_from_sample_intervals() {
        // 4 samples × 1 ms × 2.5 MB: 10 MB over 4 ms = 2.5 GB/s.
        let report = synthetic_io_report(4, 2_500_000);
        let id = WorkloadId(0);
        assert_eq!(report.total_io_bytes(id), 10_000_000);
        assert!((report.measured_secs() - 4e-3).abs() < 1e-12);
        assert!((report.io_gbps(id) - 2.5).abs() < 1e-9);
        // The buggy conversion (`samples.len()` as seconds) would report
        // 1000× less.
        let buggy = report.total_io_bytes(id) as f64 / report.samples.len() as f64 / 1e9;
        assert!(report.io_gbps(id) > buggy * 999.0);
    }

    #[test]
    fn io_gbps_is_config_independent() {
        // small_test: logical second = 10 × 1 µs = 10 µs, so the old
        // hardcoded `len × 1e-3` would be wrong by 100×.
        let mut sys = System::new(SystemConfig::small_test());
        let base = sys.alloc_lines(1);
        sys.add_workload(Box::new(Busy(base)), vec![CoreId(0)], Priority::High)
            .unwrap();
        let mut h = Harness::new(sys);
        let report = h.run_secs(3);
        assert!((report.measured_secs() - 3e-5).abs() < 1e-15);
    }

    /// A deterministic small system with one busy HPW and the A4
    /// controller, built identically on every call.
    fn supervised_fixture() -> Harness {
        let mut sys = System::new(SystemConfig::small_test());
        let base = sys.alloc_lines(1);
        sys.add_workload(Box::new(Busy(base)), vec![CoreId(0)], Priority::High)
            .unwrap();
        Harness::with_policy(
            sys,
            Box::new(crate::A4Controller::new(crate::A4Config::default())),
        )
    }

    struct Noop;
    impl RunSupervisor for Noop {
        fn after_second(&mut self, _ctx: SupervisorCtx<'_>) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn supervised_run_matches_unsupervised() {
        let mut a = supervised_fixture();
        let ra = a.run(2, 3);
        let mut b = supervised_fixture();
        let rb = b.run_supervised(2, 3, 0, Vec::new(), &mut Noop).unwrap();
        assert_eq!(
            serde_json::to_string(&ra.samples).unwrap(),
            serde_json::to_string(&rb.samples).unwrap(),
            "the supervisor hook must not perturb the run"
        );
    }

    /// Checkpoints system + policy + samples at one logical second.
    struct CkptAt {
        at: u64,
        system: Option<String>,
        policy: Option<String>,
        samples: Vec<a4_sim::MonitorSample>,
    }
    impl RunSupervisor for CkptAt {
        fn after_second(&mut self, ctx: SupervisorCtx<'_>) -> Result<(), String> {
            if ctx.second == self.at {
                self.system = Some(serde_json::to_string(&ctx.system.save_state()).unwrap());
                self.policy =
                    Some(serde_json::to_string(&ctx.policy.unwrap().save_ckpt()).unwrap());
                self.samples = ctx.samples.to_vec();
            }
            Ok(())
        }
    }

    /// The tentpole guarantee at harness level: restore a mid-run
    /// checkpoint (system state + policy state + recorded samples) into
    /// a freshly built harness and finish the run — the report must be
    /// bit-identical to an uninterrupted one.
    #[test]
    fn resumed_run_is_bit_identical() {
        let reference = supervised_fixture()
            .run_supervised(2, 5, 0, Vec::new(), &mut Noop)
            .unwrap();

        // Interrupted incarnation: checkpoint after second 4 (inside the
        // measurement window, A4 already past its first re-zones), then
        // pretend the process died.
        let mut ckpt = CkptAt {
            at: 4,
            system: None,
            policy: None,
            samples: Vec::new(),
        };
        let _ = supervised_fixture()
            .run_supervised(2, 5, 0, Vec::new(), &mut ckpt)
            .unwrap();

        // Fresh process: rebuild, restore, resume at second 4.
        let mut resumed = supervised_fixture();
        let sys_state: a4_sim::SystemState = serde_json::from_str(&ckpt.system.unwrap()).unwrap();
        assert!(resumed.system_mut().restore_state(&sys_state));
        let pol_state: crate::PolicyState = serde_json::from_str(&ckpt.policy.unwrap()).unwrap();
        assert!(resumed.policy_mut().unwrap().restore_ckpt(&pol_state));
        let report = resumed
            .run_supervised(2, 5, 4, ckpt.samples, &mut Noop)
            .unwrap();

        assert_eq!(report.samples.len(), reference.samples.len());
        assert_eq!(
            serde_json::to_string(&reference.samples).unwrap(),
            serde_json::to_string(&report.samples).unwrap(),
            "resume must be bit-identical to the uninterrupted run"
        );
    }

    struct AbortAt(u64);
    impl RunSupervisor for AbortAt {
        fn after_second(&mut self, ctx: SupervisorCtx<'_>) -> Result<(), String> {
            if ctx.second >= self.0 {
                Err(format!("quantum budget exhausted at {}", ctx.second))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn supervisor_abort_is_a_typed_error() {
        let err = supervised_fixture()
            .run_supervised(1, 10, 0, Vec::new(), &mut AbortAt(3))
            .unwrap_err();
        assert_eq!(err.second, 3);
        assert!(err.reason.contains("quantum budget"), "{}", err.reason);
        assert!(err.to_string().contains("aborted after 3 s"));
    }

    #[test]
    fn aggregates_handle_missing_workloads() {
        let sys = System::new(SystemConfig::small_test());
        let mut h = Harness::new(sys);
        let report = h.run_secs(1);
        let ghost = a4_model::WorkloadId(42);
        assert_eq!(report.ipc(ghost), 0.0);
        assert_eq!(report.total_ops(ghost), 0);
        assert_eq!(
            report.p99_latency_ns(ghost, a4_sim::LatencyKind::NetTotal),
            0
        );
    }
}
