//! Run harness: drives a [`System`] under an [`LlcPolicy`] and collects
//! per-second samples, mirroring the paper's 70 s runs (warm-up +
//! measurement windows, §6).

use crate::LlcPolicy;
use a4_model::WorkloadId;
use a4_sim::{LatencyKind, MonitorSample, System};

/// A completed run: every monitoring sample plus aggregate helpers.
#[derive(Debug)]
pub struct RunReport {
    /// The policy's display name.
    pub policy: String,
    /// One sample per logical second (measurement window only).
    pub samples: Vec<MonitorSample>,
}

impl RunReport {
    /// Mean of a per-workload metric over the measurement window.
    pub fn mean_of(&self, id: WorkloadId, f: impl Fn(&a4_sim::WorkloadSample) -> f64) -> f64 {
        let values: Vec<f64> = self
            .samples
            .iter()
            .filter_map(|s| s.workload(id))
            .map(&f)
            .collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Mean IPC of a workload.
    pub fn ipc(&self, id: WorkloadId) -> f64 {
        self.mean_of(id, |w| w.ipc)
    }

    /// Mean LLC hit rate of a workload.
    pub fn llc_hit_rate(&self, id: WorkloadId) -> f64 {
        self.mean_of(id, |w| w.llc_hit_rate)
    }

    /// Mean LLC miss rate of a workload.
    pub fn llc_miss_rate(&self, id: WorkloadId) -> f64 {
        self.mean_of(id, |w| w.llc_miss_rate)
    }

    /// Total operations completed by a workload across the window.
    pub fn total_ops(&self, id: WorkloadId) -> u64 {
        self.samples
            .iter()
            .filter_map(|s| s.workload(id))
            .map(|w| w.ops)
            .sum()
    }

    /// Total I/O bytes of a workload across the window.
    pub fn total_io_bytes(&self, id: WorkloadId) -> u64 {
        self.samples
            .iter()
            .filter_map(|s| s.workload(id))
            .map(|w| w.io_bytes)
            .sum()
    }

    /// Total instructions of a workload across the window.
    pub fn total_instructions(&self, id: WorkloadId) -> u64 {
        self.samples
            .iter()
            .filter_map(|s| s.workload(id))
            .map(|w| w.instructions)
            .sum()
    }

    /// Instructions summed over every workload (facade quick check).
    pub fn total_instructions_all(&self) -> u64 {
        self.samples
            .iter()
            .flat_map(|s| s.workloads.iter())
            .map(|w| w.instructions)
            .sum()
    }

    /// Count-weighted mean latency of one histogram slot, in ns.
    pub fn mean_latency_ns(&self, id: WorkloadId, kind: LatencyKind) -> f64 {
        let mut total = 0.0;
        let mut count = 0u64;
        for s in &self.samples {
            if let Some(w) = s.workload(id) {
                let stat = w.latency_of(kind);
                total += stat.mean_ns * stat.count as f64;
                count += stat.count;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Maximum per-interval p99 of one histogram slot (a conservative
    /// tail estimate across the window), in ns.
    pub fn p99_latency_ns(&self, id: WorkloadId, kind: LatencyKind) -> u64 {
        self.samples
            .iter()
            .filter_map(|s| s.workload(id))
            .map(|w| w.latency_of(kind).p99_ns)
            .max()
            .unwrap_or(0)
    }

    /// Mean system memory read bandwidth over the window, GB/s.
    pub fn mem_read_gbps(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.mem_read_gbps()))
    }

    /// Mean system memory write bandwidth over the window, GB/s.
    pub fn mem_write_gbps(&self) -> f64 {
        mean(self.samples.iter().map(|s| s.mem_write_gbps()))
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let values: Vec<f64> = iter.collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Owns a [`System`] plus a policy and runs the measurement protocol.
///
/// # Examples
///
/// ```
/// use a4_core::{DefaultPolicy, Harness};
/// use a4_sim::{System, SystemConfig};
///
/// let sys = System::new(SystemConfig::small_test());
/// let mut harness = Harness::new(sys);
/// harness.attach_policy(Box::new(DefaultPolicy::new()));
/// let report = harness.run(2, 3); // 2 s warm-up, 3 s measurement
/// assert_eq!(report.samples.len(), 3);
/// ```
#[derive(Debug)]
pub struct Harness {
    system: System,
    policy: Option<Box<dyn LlcPolicy>>,
}

impl Harness {
    /// Wraps a configured system (workloads and devices already added).
    pub fn new(system: System) -> Self {
        Harness {
            system,
            policy: None,
        }
    }

    /// Installs the LLC-management policy (none = uncontrolled hardware
    /// defaults).
    pub fn attach_policy(&mut self, policy: Box<dyn LlcPolicy>) {
        self.policy = Some(policy);
    }

    /// The system, for further configuration between runs.
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// Read-only system access.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Runs `warmup` logical seconds (policy active, samples discarded)
    /// followed by `measure` recorded seconds.
    pub fn run(&mut self, warmup: u64, measure: u64) -> RunReport {
        let mut samples = Vec::with_capacity(measure as usize);
        for second in 0..warmup + measure {
            self.system.run_logical_seconds(1);
            let sample = self.system.sample();
            if let Some(policy) = self.policy.as_mut() {
                policy.tick(&mut self.system, &sample);
            }
            if second >= warmup {
                samples.push(sample);
            }
        }
        RunReport {
            policy: self
                .policy
                .as_ref()
                .map_or("none".into(), |p| p.name().to_string()),
            samples,
        }
    }

    /// Convenience wrapper: run `seconds` with no warm-up.
    pub fn run_secs(&mut self, seconds: u64) -> RunReport {
        self.run(0, seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DefaultPolicy;
    use a4_model::{CoreId, LineAddr, Priority, WorkloadKind};
    use a4_sim::{CoreCtx, SystemConfig, Workload, WorkloadInfo};

    #[derive(Debug)]
    struct Busy(LineAddr);
    impl Workload for Busy {
        fn info(&self) -> WorkloadInfo {
            WorkloadInfo {
                name: "busy".into(),
                kind: WorkloadKind::NonIo,
                device: None,
            }
        }
        fn step(&mut self, ctx: &mut CoreCtx<'_>) {
            while ctx.has_budget() {
                ctx.read(self.0);
                ctx.compute(10.0, 10);
                ctx.add_ops(1);
            }
        }
    }

    #[test]
    fn warmup_samples_are_discarded() {
        let mut sys = System::new(SystemConfig::small_test());
        let base = sys.alloc_lines(1);
        let id = sys
            .add_workload(Box::new(Busy(base)), vec![CoreId(0)], Priority::High)
            .unwrap();
        let mut h = Harness::new(sys);
        h.attach_policy(Box::new(DefaultPolicy::new()));
        let report = h.run(3, 4);
        assert_eq!(report.samples.len(), 4);
        assert_eq!(report.policy, "Default");
        assert!(report.ipc(id) > 0.0);
        assert!(report.total_ops(id) > 0);
        assert!(report.total_instructions(id) > 0);
        assert!(report.total_instructions_all() >= report.total_instructions(id));
    }

    #[test]
    fn runs_without_policy() {
        let sys = System::new(SystemConfig::small_test());
        let mut h = Harness::new(sys);
        let report = h.run_secs(2);
        assert_eq!(report.policy, "none");
        assert_eq!(report.samples.len(), 2);
        assert_eq!(report.mem_read_gbps(), 0.0);
    }

    #[test]
    fn aggregates_handle_missing_workloads() {
        let sys = System::new(SystemConfig::small_test());
        let mut h = Harness::new(sys);
        let report = h.run_secs(1);
        let ghost = a4_model::WorkloadId(42);
        assert_eq!(report.ipc(ghost), 0.0);
        assert_eq!(report.total_ops(ghost), 0);
        assert_eq!(
            report.p99_latency_ns(ghost, a4_sim::LatencyKind::NetTotal),
            0
        );
    }
}
