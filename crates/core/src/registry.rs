//! The controller's per-workload bookkeeping.

use a4_model::{DeviceId, Priority, WorkloadId, WorkloadKind};
use serde::{Deserialize, Serialize};

/// Why a workload is currently treated as an antagonist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AntagonistKind {
    /// Storage-I/O workload causing DMA leak (§5.4): its device's DCA was
    /// disabled and the workload demoted to LPW.
    StorageIo {
        /// The device whose DCA A4 disabled.
        device: DeviceId,
        /// Storage throughput (interval I/O bytes) at detection time, the
        /// reference for phase-change restoration.
        io_bytes_at_detection: u64,
    },
    /// Non-I/O streaming workload (§5.5) under pseudo LLC bypassing.
    NonIo {
        /// LLC miss rate at detection time, the restoration reference.
        llc_miss_at_detection: f64,
    },
}

/// Mutable controller state for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadState {
    /// The workload.
    pub id: WorkloadId,
    /// Traffic class.
    pub kind: WorkloadKind,
    /// The user-declared QoS priority.
    pub original_priority: Priority,
    /// The priority A4 currently enforces (antagonists are demoted).
    pub effective_priority: Priority,
    /// Antagonist status, if detected.
    pub antagonist: Option<AntagonistKind>,
    /// HPW LLC hit rate recorded at the initial partitions (the T1
    /// baseline). `None` until the first post-re-zone sample.
    pub baseline_hit_rate: Option<f64>,
    /// The device the workload drives, if any.
    pub device: Option<DeviceId>,
    /// Current trash-way mask width while under pseudo bypassing (number
    /// of ways; counts down towards 1).
    pub trash_ways: Option<usize>,
    /// Metrics of the previous tick, for stability checks:
    /// (llc_miss_rate, io_bytes).
    pub last_metrics: (f64, u64),
}

impl WorkloadState {
    /// Fresh state for a newly observed workload.
    pub fn new(
        id: WorkloadId,
        kind: WorkloadKind,
        priority: Priority,
        device: Option<DeviceId>,
    ) -> Self {
        WorkloadState {
            id,
            kind,
            original_priority: priority,
            effective_priority: priority,
            antagonist: None,
            baseline_hit_rate: None,
            device,
            trash_ways: None,
            last_metrics: (0.0, 0),
        }
    }

    /// True if A4 currently treats the workload as high priority.
    pub fn is_hpw(&self) -> bool {
        self.effective_priority.is_high()
    }

    /// True if this is an I/O HPW (gets the DCA Zone and an unrestricted
    /// mask).
    pub fn is_io_hpw(&self) -> bool {
        self.is_hpw() && self.kind.is_io()
    }

    /// Demotes the workload to LPW as an antagonist.
    pub fn demote(&mut self, why: AntagonistKind) {
        self.antagonist = Some(why);
        self.effective_priority = Priority::Low;
    }

    /// Restores the original priority and clears antagonist status.
    pub fn restore(&mut self) {
        self.antagonist = None;
        self.effective_priority = self.original_priority;
        self.trash_ways = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demote_restore_cycle() {
        let mut w = WorkloadState::new(
            WorkloadId(1),
            WorkloadKind::StorageIo,
            Priority::High,
            Some(DeviceId(1)),
        );
        assert!(w.is_hpw());
        assert!(w.is_io_hpw());
        w.demote(AntagonistKind::StorageIo {
            device: DeviceId(1),
            io_bytes_at_detection: 500,
        });
        assert!(!w.is_hpw());
        assert!(w.antagonist.is_some());
        w.restore();
        assert!(w.is_hpw());
        assert!(w.antagonist.is_none());
        assert!(w.trash_ways.is_none());
    }

    #[test]
    fn non_io_hpw_is_not_io_hpw() {
        let w = WorkloadState::new(WorkloadId(0), WorkloadKind::NonIo, Priority::High, None);
        assert!(w.is_hpw());
        assert!(!w.is_io_hpw());
    }
}
