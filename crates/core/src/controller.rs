//! The A4 controller: the execution flow of the paper's Fig. 9.
//!
//! Once per monitoring interval (logical second) the controller:
//!
//! 1. synchronizes its workload registry (launches, terminations,
//!    priority transitions ⇒ re-zoning);
//! 2. runs **storage-antagonist detection** (§5.4): a storage-I/O
//!    workload whose device leaks (T2), whose own LLC miss rate is high
//!    (T4) and which dominates PCIe write throughput (T3) gets its
//!    device's DCA disabled and is demoted to LPW;
//! 3. runs **non-I/O antagonist detection** (§5.5) once the LP Zone has
//!    settled: MLC *and* LLC miss rates above T5 ⇒ pseudo LLC bypassing;
//!    the shared trash mask then shrinks one way at a time towards way 8
//!    while the system stays stable;
//! 4. advances the **LP-Zone expansion** loop (§5.2): grow one way to the
//!    left every `expand_period` ticks unless an HPW's hit rate drops
//!    more than T1 below its initial-partition baseline;
//! 5. after `stable_interval` stable ticks, performs the **revert probe**
//!    (§5.6): one interval at the initial partitions measures the
//!    attainable hit rates; a deviation beyond T1 triggers re-zoning.

use crate::registry::{AntagonistKind, WorkloadState};
use crate::thresholds::Thresholds;
use crate::zones::Zones;
use crate::{LlcPolicy, PolicyState};
#[cfg(test)]
use a4_model::Priority;
use a4_model::{ClosId, WayMask, WorkloadId, WorkloadKind};
use a4_sim::{MonitorSample, System};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Relative throughput change treated as a major phase change (storage
/// antagonist restoration, §5.6).
const PHASE_FLUCTUATION: f64 = 0.30;

/// Cumulative feature levels matching the paper's A4-a … A4-d variants
/// (Fig. 10 / Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FeatureLevel {
    /// Priority-based LLC zoning only (Fig. 10a).
    A,
    /// + safeguarding I/O buffers: DCA Zone, LP off inclusive ways
    ///   (Fig. 10b).
    B,
    /// + selective per-device DCA disabling for storage antagonists
    ///   (Fig. 10c).
    C,
    /// + pseudo LLC bypassing via trash ways (Fig. 10d).
    D,
}

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct A4Config {
    /// Detection and timing thresholds.
    pub thresholds: Thresholds,
    /// Enabled mechanism level.
    pub level: FeatureLevel,
}

impl Default for A4Config {
    /// Full A4 (level D) with the simulator-calibrated thresholds.
    fn default() -> Self {
        A4Config {
            thresholds: Thresholds::scaled_sim(),
            level: FeatureLevel::D,
        }
    }
}

impl A4Config {
    /// A specific feature level with the given thresholds.
    pub fn with_level(level: FeatureLevel, thresholds: Thresholds) -> Self {
        A4Config { thresholds, level }
    }
}

/// Controller phase (exposed for tests and tracing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// Fresh zones just applied; baselines recorded on the next sample.
    Initializing,
    /// LP Zone expansion loop.
    Expanding {
        /// Tick of the last expansion.
        last_expand: u64,
    },
    /// Allocation settled.
    Stable {
        /// Tick stability began.
        since: u64,
    },
    /// One-interval revert to the initial partitions (§5.6).
    RevertProbe {
        /// LP mask to restore afterwards.
        saved_lp: WayMask,
    },
}

const CLOS_IO_HPW: ClosId = ClosId(0); // unrestricted
const CLOS_HP: ClosId = ClosId(1);
const CLOS_LP: ClosId = ClosId(2);
const CLOS_TRASH: ClosId = ClosId(3);

/// Serializable mutable state of an [`A4Controller`] — everything the
/// control loop updates across ticks. The configuration and display
/// name are structural (rebuilt by [`A4Controller::new`]) and excluded;
/// the map-shaped fields travel as sorted `(key, value)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct A4State {
    /// Phase-machine position.
    pub phase: Phase,
    /// Zone layout for the current mix.
    pub zones: Zones,
    /// Current LP Zone mask.
    pub lp: WayMask,
    /// Current trash mask.
    pub trash: WayMask,
    /// Whether the trash-shrink loop has stopped.
    pub trash_frozen: bool,
    /// Registry entries, sorted by workload id.
    pub registry: Vec<(WorkloadId, WorkloadState)>,
    /// Ticks since construction.
    pub tick: u64,
    /// Hit rates recorded before a revert probe, sorted by workload id.
    pub pre_probe_hits: Vec<(WorkloadId, f64)>,
    /// Memory-bandwidth reference for the stability gate.
    pub last_mem_bytes: u64,
    /// Whether CAT masks need reprogramming on the next tick.
    pub masks_dirty: bool,
}

/// The A4 runtime controller.
///
/// # Examples
///
/// ```
/// use a4_core::{A4Config, A4Controller, FeatureLevel, LlcPolicy, Thresholds};
///
/// let a4 = A4Controller::new(A4Config::with_level(FeatureLevel::B, Thresholds::paper()));
/// assert_eq!(a4.name(), "A4-b");
/// ```
#[derive(Debug)]
pub struct A4Controller {
    cfg: A4Config,
    name: String,
    phase: Phase,
    zones: Zones,
    lp: WayMask,
    trash: WayMask,
    trash_frozen: bool,
    registry: BTreeMap<WorkloadId, WorkloadState>,
    tick: u64,
    pre_probe_hits: BTreeMap<WorkloadId, f64>,
    last_mem_bytes: u64,
    masks_dirty: bool,
}

impl A4Controller {
    /// Creates a controller; zones are computed on the first tick.
    pub fn new(cfg: A4Config) -> Self {
        let name = match cfg.level {
            FeatureLevel::A => "A4-a",
            FeatureLevel::B => "A4-b",
            FeatureLevel::C => "A4-c",
            FeatureLevel::D => "A4-d",
        };
        let zones = Zones::priority_only();
        A4Controller {
            cfg,
            name: name.into(),
            phase: Phase::Initializing,
            lp: zones.lp,
            trash: Zones::trash_mask(),
            trash_frozen: false,
            zones,
            registry: BTreeMap::new(),
            tick: 0,
            pre_probe_hits: BTreeMap::new(),
            last_mem_bytes: 0,
            masks_dirty: true,
        }
    }

    /// Current phase (for tests and tracing).
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Current LP Zone mask.
    pub fn lp_zone(&self) -> WayMask {
        self.lp
    }

    /// Current trash mask (pseudo LLC bypassing).
    pub fn trash_mask(&self) -> WayMask {
        self.trash
    }

    /// Controller state for one workload, if registered.
    pub fn workload_state(&self, id: WorkloadId) -> Option<&WorkloadState> {
        self.registry.get(&id)
    }

    /// True if the workload is currently flagged as an antagonist.
    pub fn is_antagonist(&self, id: WorkloadId) -> bool {
        self.registry
            .get(&id)
            .is_some_and(|w| w.antagonist.is_some())
    }

    fn any_io_hpw(&self) -> bool {
        self.registry.values().any(|w| w.is_io_hpw())
    }

    /// Step 1 of Fig. 9: reconcile the registry with the live workload
    /// set. Returns true if the mix changed.
    fn sync_registry(&mut self, sample: &MonitorSample) -> bool {
        let mut changed = false;
        let live: Vec<WorkloadId> = sample.workloads.iter().map(|w| w.id).collect();
        // Terminations.
        let gone: Vec<WorkloadId> = self
            .registry
            .keys()
            .copied()
            .filter(|id| !live.contains(id))
            .collect();
        for id in gone {
            self.registry.remove(&id);
            changed = true;
        }
        // Launches.
        for w in &sample.workloads {
            if let std::collections::btree_map::Entry::Vacant(e) = self.registry.entry(w.id) {
                let device = sample
                    .devices
                    .iter()
                    .find(|d| match w.kind {
                        WorkloadKind::NetworkIo => d.class == a4_model::DeviceClass::Nic,
                        WorkloadKind::StorageIo => d.class == a4_model::DeviceClass::Nvme,
                        WorkloadKind::NonIo => false,
                    })
                    .map(|d| d.id);
                e.insert(WorkloadState::new(w.id, w.kind, w.priority, device));
                changed = true;
            }
        }
        changed
    }

    /// §5.4: storage antagonist detection and restoration.
    fn storage_antagonists(&mut self, sys: &mut System, sample: &MonitorSample) -> bool {
        let t = self.cfg.thresholds;
        let storage_share = sample.storage_io_write_fraction();
        let mut changed = false;
        for state in self.registry.values_mut() {
            if state.kind != WorkloadKind::StorageIo {
                continue;
            }
            let Some(ws) = sample.workload(state.id) else {
                continue;
            };
            match state.antagonist {
                None => {
                    let Some(dev) = state.device else { continue };
                    let Some(ds) = sample.device(dev) else {
                        continue;
                    };
                    let leaking = ds.dca_leak_rate > t.dmalk_dca_ms_thr;
                    let missing = ws.llc_miss_rate > t.dmalk_llc_ms_thr;
                    let dominant = storage_share > t.dmalk_io_tp_thr;
                    if ds.dca_enabled && leaking && missing && dominant {
                        // O4: disable DCA for the SSD and demote.
                        let _ = sys.set_device_dca(dev, false);
                        state.demote(AntagonistKind::StorageIo {
                            device: dev,
                            io_bytes_at_detection: ws.io_bytes.max(1),
                        });
                        changed = true;
                    }
                }
                Some(AntagonistKind::StorageIo {
                    device,
                    io_bytes_at_detection,
                }) => {
                    // Major throughput swing = phase change: restore QoS
                    // and reactivate DCA (§5.6).
                    let base = io_bytes_at_detection as f64;
                    let now = ws.io_bytes as f64;
                    if (now - base).abs() / base > PHASE_FLUCTUATION {
                        let _ = sys.set_device_dca(device, true);
                        state.restore();
                        changed = true;
                    }
                }
                Some(AntagonistKind::NonIo { .. }) => {}
            }
        }
        changed
    }

    /// §5.5: non-I/O antagonist detection, restoration and the trash-way
    /// shrink loop.
    fn non_io_antagonists(&mut self, sample: &MonitorSample) -> bool {
        let t = self.cfg.thresholds;
        let settled = matches!(self.phase, Phase::Stable { .. });
        let mut changed = false;
        for state in self.registry.values_mut() {
            let Some(ws) = sample.workload(state.id) else {
                continue;
            };
            match state.antagonist {
                None if state.kind == WorkloadKind::NonIo
                    && settled
                    && ws.mlc_miss_rate > t.ant_cache_miss_thr
                    && ws.llc_miss_rate > t.ant_cache_miss_thr
                    && ws.accesses > 0 =>
                {
                    state.demote(AntagonistKind::NonIo {
                        llc_miss_at_detection: ws.llc_miss_rate,
                    });
                    changed = true;
                }
                Some(AntagonistKind::NonIo {
                    llc_miss_at_detection,
                }) => {
                    // Restoration needs the workload to have genuinely
                    // become cache-friendly — a mere fluctuation can be
                    // our own confinement perturbing the measurement.
                    let below_threshold =
                        ws.llc_miss_rate < t.ant_cache_miss_thr * (1.0 - t.fluctuation_thr);
                    if below_threshold && t.fluctuated(llc_miss_at_detection, ws.llc_miss_rate) {
                        state.restore();
                        changed = true;
                    }
                }
                _ => {}
            }
            state.last_metrics = (ws.llc_miss_rate, ws.io_bytes);
        }
        changed
    }

    /// Shrinks the shared trash mask one way at a time while the system
    /// stays stable (§5.5, Fig. 10d step 2).
    fn shrink_trash(&mut self, sample: &MonitorSample) {
        let t = self.cfg.thresholds;
        let any = self.registry.values().any(|w| w.antagonist.is_some());
        if !any {
            self.trash = self.lp;
            self.trash_frozen = false;
            return;
        }
        // Stability gates: antagonist miss rates, storage throughput and
        // system-wide memory bandwidth.
        let mem_now = (sample.mem_read + sample.mem_written).as_u64();
        let mem_stable =
            self.last_mem_bytes == 0 || !t.fluctuated(self.last_mem_bytes as f64, mem_now as f64);
        let all_stable = self.registry.values().all(|w| {
            if w.antagonist.is_none() {
                return true;
            }
            let Some(ws) = sample.workload(w.id) else {
                return true;
            };
            let (last_miss, last_io) = w.last_metrics;
            let miss_ok = last_miss == 0.0 || !t.fluctuated(last_miss, ws.llc_miss_rate);
            let io_ok = last_io == 0 || !t.fluctuated(last_io as f64, ws.io_bytes as f64);
            miss_ok && io_ok
        });

        if self.trash_frozen {
            return;
        }
        if mem_stable && all_stable {
            // Converge on the right-most standard way (way 8): drop ways
            // right of it first (inclusive ways are never trash), then
            // shrink from the left.
            let next = if self.trash.last_way().is_some_and(|w| w > 8) {
                if self.trash.count() > 1 {
                    self.trash.shrink_right()
                } else {
                    Some(Zones::trash_mask())
                }
            } else if self.trash.count() > 1 {
                self.trash.shrink_left()
            } else {
                None
            };
            if let Some(next) = next {
                self.trash = next;
                self.masks_dirty = true;
            }
        } else {
            // Instability: step back one way and stop (§5.5).
            if let Some(back) = self.trash.grow_left() {
                self.trash = back;
                self.masks_dirty = true;
            }
            self.trash_frozen = true;
        }
        self.last_mem_bytes = mem_now;
    }

    /// Recomputes zones for the current mix and resets the optimization.
    fn rezone(&mut self) {
        let io_aware = self.cfg.level >= FeatureLevel::B && self.any_io_hpw();
        self.zones = Zones::for_mix(io_aware);
        self.lp = self.zones.lp;
        self.trash = self.zones.lp;
        self.trash_frozen = false;
        for w in self.registry.values_mut() {
            w.baseline_hit_rate = None;
        }
        self.phase = Phase::Initializing;
        self.masks_dirty = true;
    }

    /// Programs CAT according to the current zones and registry.
    fn apply(&mut self, sys: &mut System, lp_mask: WayMask) {
        let _ = sys.cat_set_mask(CLOS_IO_HPW, WayMask::ALL);
        let _ = sys.cat_set_mask(CLOS_HP, self.zones.hp);
        let _ = sys.cat_set_mask(CLOS_LP, lp_mask);
        let trash = if self.trash.is_empty() {
            Zones::trash_mask()
        } else {
            self.trash
        };
        let _ = sys.cat_set_mask(CLOS_TRASH, trash);
        for w in self.registry.values() {
            let clos = if w.antagonist.is_some() && self.cfg.level >= FeatureLevel::D {
                CLOS_TRASH
            } else if !w.is_hpw() {
                CLOS_LP
            } else if w.kind.is_io() {
                CLOS_IO_HPW
            } else {
                CLOS_HP
            };
            let _ = sys.cat_assign_workload(w.id, clos);
        }
        self.masks_dirty = false;
    }

    fn hpw_hit_rates<'a>(
        &self,
        sample: &'a MonitorSample,
    ) -> impl Iterator<Item = (WorkloadId, f64)> + 'a {
        let hpws: Vec<WorkloadId> = self
            .registry
            .values()
            .filter(|w| w.is_hpw())
            .map(|w| w.id)
            .collect();
        sample
            .workloads
            .iter()
            .filter(move |w| hpws.contains(&w.id))
            .map(|w| (w.id, w.llc_hit_rate))
    }
}

impl LlcPolicy for A4Controller {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, sys: &mut System, sample: &MonitorSample) {
        self.tick += 1;
        let t = self.cfg.thresholds;

        // 1. Workload-change detection.
        let mut mix_changed = self.sync_registry(sample);

        // 2-3. Antagonist handling by feature level.
        if self.cfg.level >= FeatureLevel::C {
            mix_changed |= self.storage_antagonists(sys, sample);
        }
        if self.cfg.level >= FeatureLevel::D {
            mix_changed |= self.non_io_antagonists(sample);
            self.shrink_trash(sample);
        }

        if mix_changed {
            self.rezone();
            self.apply(sys, self.lp);
            return;
        }

        // 4-5. Fig. 9 phase machine.
        match self.phase {
            Phase::Initializing => {
                // This sample reflects the initial partitions: record the
                // T1 baselines.
                for (id, hit) in self.hpw_hit_rates(sample).collect::<Vec<_>>() {
                    if let Some(w) = self.registry.get_mut(&id) {
                        w.baseline_hit_rate = Some(hit);
                    }
                }
                self.phase = Phase::Expanding {
                    last_expand: self.tick,
                };
            }
            Phase::Expanding { last_expand } => {
                let dropped = self.hpw_hit_rates(sample).any(|(id, hit)| {
                    self.registry
                        .get(&id)
                        .and_then(|w| w.baseline_hit_rate)
                        .is_some_and(|base| t.hit_rate_dropped(base, hit))
                });
                if dropped {
                    // Undo the last expansion and settle.
                    if self.lp != self.zones.lp {
                        if let Some(smaller) = self.lp.shrink_left() {
                            self.lp = smaller;
                            self.masks_dirty = true;
                        }
                    }
                    self.phase = Phase::Stable { since: self.tick };
                } else if self.tick - last_expand >= t.expand_period {
                    match self.zones.grow_lp(self.lp) {
                        Some(grown) => {
                            self.lp = grown;
                            self.masks_dirty = true;
                            self.phase = Phase::Expanding {
                                last_expand: self.tick,
                            };
                        }
                        None => self.phase = Phase::Stable { since: self.tick },
                    }
                }
            }
            Phase::Stable { since } => {
                // Execution-phase change: hit-rate fluctuation vs baseline.
                let phase_changed = self.hpw_hit_rates(sample).any(|(id, hit)| {
                    self.registry
                        .get(&id)
                        .and_then(|w| w.baseline_hit_rate)
                        .is_some_and(|base| t.hit_rate_dropped(base, hit))
                });
                if phase_changed {
                    self.rezone();
                } else if self.tick - since >= t.stable_interval {
                    // Enter the revert probe: remember current hit rates,
                    // revert to the initial partitions for one interval.
                    self.pre_probe_hits = self.hpw_hit_rates(sample).collect();
                    let saved_lp = self.lp;
                    self.phase = Phase::RevertProbe { saved_lp };
                    self.apply(sys, self.zones.lp);
                    return;
                }
            }
            Phase::RevertProbe { saved_lp } => {
                // This sample reflects the initial partitions: it is the
                // "highest attainable" reference (§5.6 condition 3).
                let uncaptured = self.hpw_hit_rates(sample).any(|(id, attainable)| {
                    self.pre_probe_hits
                        .get(&id)
                        .is_some_and(|&stable_hit| t.hit_rate_dropped(attainable, stable_hit))
                });
                // Refresh baselines with the attainable values.
                for (id, hit) in self.hpw_hit_rates(sample).collect::<Vec<_>>() {
                    if let Some(w) = self.registry.get_mut(&id) {
                        w.baseline_hit_rate = Some(hit);
                    }
                }
                if uncaptured {
                    self.rezone();
                } else {
                    self.lp = saved_lp;
                    self.masks_dirty = true;
                    self.phase = Phase::Stable { since: self.tick };
                }
            }
        }

        if self.masks_dirty {
            self.apply(sys, self.lp);
        }
    }

    fn save_ckpt(&self) -> PolicyState {
        let _rebuilt_by_constructor = (&self.cfg, &self.name);
        PolicyState::A4(Box::new(A4State {
            phase: self.phase,
            zones: self.zones,
            lp: self.lp,
            trash: self.trash,
            trash_frozen: self.trash_frozen,
            registry: self
                .registry
                .iter()
                .map(|(id, w)| (*id, w.clone()))
                .collect(),
            tick: self.tick,
            pre_probe_hits: self
                .pre_probe_hits
                .iter()
                .map(|(id, hit)| (*id, *hit))
                .collect(),
            last_mem_bytes: self.last_mem_bytes,
            masks_dirty: self.masks_dirty,
        }))
    }

    fn restore_ckpt(&mut self, state: &PolicyState) -> bool {
        let _rebuilt_by_constructor = (&self.cfg, &self.name);
        let PolicyState::A4(st) = state else {
            return false;
        };
        self.phase = st.phase;
        self.zones = st.zones;
        self.lp = st.lp;
        self.trash = st.trash;
        self.trash_frozen = st.trash_frozen;
        self.registry = st.registry.iter().cloned().collect();
        self.tick = st.tick;
        self.pre_probe_hits = st.pre_probe_hits.iter().copied().collect();
        self.last_mem_bytes = st.last_mem_bytes;
        self.masks_dirty = st.masks_dirty;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::{CoreId, LineAddr, PortId};
    use a4_pcie::NvmeConfig;
    use a4_sim::{CoreCtx, SystemConfig, Workload, WorkloadInfo};

    /// A workload with a controllable miss profile.
    #[derive(Debug)]
    struct Knob {
        name: &'static str,
        kind: WorkloadKind,
        base: LineAddr,
        ws: u64,
        cursor: u64,
    }

    impl Knob {
        fn new(name: &'static str, kind: WorkloadKind, base: LineAddr, ws: u64) -> Self {
            Knob {
                name,
                kind,
                base,
                ws,
                cursor: 0,
            }
        }
    }

    impl Workload for Knob {
        fn info(&self) -> WorkloadInfo {
            WorkloadInfo {
                name: self.name.into(),
                kind: self.kind,
                device: None,
            }
        }
        fn step(&mut self, ctx: &mut CoreCtx<'_>) {
            while ctx.has_budget() {
                ctx.read(self.base.offset(self.cursor % self.ws));
                self.cursor += 1;
                ctx.compute(4.0, 4);
            }
        }
    }

    fn drive(sys: &mut System, a4: &mut A4Controller, seconds: u64) {
        for _ in 0..seconds {
            sys.run_logical_seconds(1);
            let sample = sys.sample();
            a4.tick(sys, &sample);
        }
    }

    #[test]
    fn ckpt_round_trip_preserves_controller_state() {
        let mut sys = System::new(SystemConfig::small_test());
        let base = sys.alloc_lines(8);
        sys.add_workload(
            Box::new(Knob::new("hp", WorkloadKind::NonIo, base, 8)),
            vec![CoreId(0)],
            Priority::High,
        )
        .unwrap();
        let lp_base = sys.alloc_lines(2048);
        sys.add_workload(
            Box::new(Knob::new("stream", WorkloadKind::NonIo, lp_base, 2048)),
            vec![CoreId(1)],
            Priority::Low,
        )
        .unwrap();
        let mut a4 = A4Controller::new(A4Config::default());
        drive(&mut sys, &mut a4, 9);
        let saved = a4.save_ckpt();
        let mut fresh = A4Controller::new(A4Config::default());
        assert_ne!(fresh.save_ckpt(), saved, "9 ticks moved the controller");
        assert!(fresh.restore_ckpt(&saved));
        assert_eq!(fresh.save_ckpt(), saved, "round trip is lossless");
        assert_eq!(fresh.phase(), a4.phase());
        assert_eq!(fresh.lp_zone(), a4.lp_zone());
        assert_eq!(fresh.trash_mask(), a4.trash_mask());
    }

    #[test]
    fn ckpt_kind_mismatch_is_rejected() {
        use crate::PolicyState;
        let mut a4 = A4Controller::new(A4Config::default());
        let before = a4.save_ckpt();
        assert!(!a4.restore_ckpt(&PolicyState::Stateless));
        assert!(!a4.restore_ckpt(&PolicyState::Applied { applied: true }));
        assert_eq!(a4.save_ckpt(), before, "rejected restores leave no trace");
        let mut default = crate::DefaultPolicy::new();
        assert!(!default.restore_ckpt(&before));
        assert!(default.restore_ckpt(&PolicyState::Applied { applied: true }));
        assert_eq!(default.save_ckpt(), PolicyState::Applied { applied: true });
    }

    #[test]
    fn names_follow_levels() {
        for (level, name) in [
            (FeatureLevel::A, "A4-a"),
            (FeatureLevel::B, "A4-b"),
            (FeatureLevel::C, "A4-c"),
            (FeatureLevel::D, "A4-d"),
        ] {
            let c = A4Controller::new(A4Config::with_level(level, Thresholds::paper()));
            assert_eq!(c.name(), name);
        }
    }

    #[test]
    fn lp_zone_expands_when_hpws_are_happy() {
        let mut sys = System::new(SystemConfig::small_test());
        // A tiny-footprint HPW whose hit rate never suffers.
        let base = sys.alloc_lines(8);
        sys.add_workload(
            Box::new(Knob::new("hp", WorkloadKind::NonIo, base, 8)),
            vec![CoreId(0)],
            Priority::High,
        )
        .unwrap();
        let lp_base = sys.alloc_lines(8);
        let lp = sys
            .add_workload(
                Box::new(Knob::new("lp", WorkloadKind::NonIo, lp_base, 8)),
                vec![CoreId(1)],
                Priority::Low,
            )
            .unwrap();
        let mut a4 = A4Controller::new(A4Config::with_level(FeatureLevel::A, Thresholds::paper()));
        let initial = Zones::priority_only().lp;
        drive(&mut sys, &mut a4, 12);
        assert!(
            a4.lp_zone().count() > initial.count(),
            "LP zone should have grown: {}",
            a4.lp_zone()
        );
        // The LPW's cores sit in the LP CLOS.
        let mask = sys
            .hierarchy()
            .clos()
            .mask_for_core(sys.workload_cores(lp)[0]);
        assert_eq!(mask, a4.lp_zone());
    }

    #[test]
    fn phase_machine_reaches_stable_and_probes() {
        let mut sys = System::new(SystemConfig::small_test());
        let base = sys.alloc_lines(8);
        sys.add_workload(
            Box::new(Knob::new("hp", WorkloadKind::NonIo, base, 8)),
            vec![CoreId(0)],
            Priority::High,
        )
        .unwrap();
        let mut a4 = A4Controller::new(A4Config::with_level(FeatureLevel::A, Thresholds::paper()));
        // No LPWs: the zone grows to its limit, then stabilizes.
        let mut saw_stable = false;
        let mut saw_probe = false;
        for _ in 0..40 {
            sys.run_logical_seconds(1);
            let sample = sys.sample();
            a4.tick(&mut sys, &sample);
            match a4.phase() {
                Phase::Stable { .. } => saw_stable = true,
                Phase::RevertProbe { .. } => saw_probe = true,
                _ => {}
            }
        }
        assert!(saw_stable, "controller must settle");
        assert!(saw_probe, "10s of stability must trigger the revert probe");
    }

    #[test]
    fn io_hpw_triggers_dca_zone_layout() {
        let mut sys = System::new(SystemConfig::small_test());
        let nic = sys
            .attach_nic(PortId(0), a4_pcie::NicConfig::connectx6_100g(1, 8, 1024))
            .unwrap();
        sys.add_workload(
            Box::new(a4_workloads::Dpdk::touching(nic)),
            vec![CoreId(0)],
            Priority::High,
        )
        .unwrap();
        let cpu_base = sys.alloc_lines(8);
        let cpu = sys
            .add_workload(
                Box::new(Knob::new("cpu", WorkloadKind::NonIo, cpu_base, 8)),
                vec![CoreId(1)],
                Priority::High,
            )
            .unwrap();
        let mut a4 = A4Controller::new(A4Config::with_level(FeatureLevel::B, Thresholds::paper()));
        drive(&mut sys, &mut a4, 3);
        // Non-I/O HPW must be excluded from the DCA ways.
        let mask = sys
            .hierarchy()
            .clos()
            .mask_for_core(sys.workload_cores(cpu)[0]);
        assert!(
            !mask.overlaps(WayMask::DCA),
            "non-I/O HPW off the DCA ways: {mask}"
        );
        // LP zone limits respect the inclusive ways.
        assert!(!a4.lp_zone().overlaps(WayMask::INCLUSIVE));
    }

    #[test]
    fn storage_antagonist_gets_dca_disabled_and_demoted() {
        let mut sys = System::new(SystemConfig::small_test());
        let ssd = sys
            .attach_nvme(PortId(0), NvmeConfig::raid0_980pro_x4())
            .unwrap();
        let mut fio = a4_workloads::Fio::new(ssd, LineAddr(0), 64, 8, 2);
        let buf = sys.alloc_lines(fio.buffer_lines() * 2);
        fio = a4_workloads::Fio::new(ssd, buf, 64, 8, 2);
        let fio_id = sys
            .add_workload(Box::new(fio), vec![CoreId(0), CoreId(1)], Priority::High)
            .unwrap();
        let mut a4 = A4Controller::new(A4Config::with_level(
            FeatureLevel::C,
            Thresholds {
                dmalk_llc_ms_thr: 0.2,
                ..Thresholds::paper()
            },
        ));
        drive(&mut sys, &mut a4, 8);
        // The 16-set LLC leaks massively: detection must fire.
        assert!(
            a4.is_antagonist(fio_id),
            "FIO must be detected as a storage antagonist"
        );
        assert!(!sys.dca_enabled(ssd), "the SSD's port lost DCA");
        let state = a4.workload_state(fio_id).unwrap();
        assert_eq!(state.effective_priority, Priority::Low, "demoted to LPW");
        assert_eq!(
            state.original_priority,
            Priority::High,
            "original QoS remembered"
        );
    }

    #[test]
    fn trash_mask_shrinks_towards_way_8() {
        let mut sys = System::new(SystemConfig::small_test());
        // A streaming non-I/O antagonist: working set far beyond the LLC.
        let ws = 2048;
        let base = sys.alloc_lines(ws);
        let ant = sys
            .add_workload(
                Box::new(Knob::new("stream", WorkloadKind::NonIo, base, ws)),
                vec![CoreId(0)],
                Priority::Low,
            )
            .unwrap();
        let hp_base = sys.alloc_lines(8);
        sys.add_workload(
            Box::new(Knob::new("hp", WorkloadKind::NonIo, hp_base, 8)),
            vec![CoreId(1)],
            Priority::High,
        )
        .unwrap();
        let mut a4 = A4Controller::new(A4Config::with_level(
            FeatureLevel::D,
            Thresholds {
                ant_cache_miss_thr: 0.5,
                ..Thresholds::paper()
            },
        ));
        for i in 0..30 {
            sys.run_logical_seconds(1);
            let sample = sys.sample();
            a4.tick(&mut sys, &sample);
            if std::env::var("A4_DBG").is_ok() {
                let w = sample.workloads.iter().find(|w| &*w.name == "stream");
                if let Some(w) = w {
                    eprintln!(
                        "t={} phase={:?} mlc={:.2} llc={:.2} ant={} lp={} trash={}",
                        i,
                        a4.phase(),
                        w.mlc_miss_rate,
                        w.llc_miss_rate,
                        a4.is_antagonist(w.id),
                        a4.lp_zone(),
                        a4.trash_mask()
                    );
                }
            }
        }
        assert!(a4.is_antagonist(ant), "streaming workload must be flagged");
        assert!(
            a4.trash_mask().count() <= 2,
            "trash mask must shrink, got {}",
            a4.trash_mask()
        );
        // The antagonist's core runs in the trash CLOS.
        let mask = sys
            .hierarchy()
            .clos()
            .mask_for_core(sys.workload_cores(ant)[0]);
        assert_eq!(mask, a4.trash_mask());
    }
}
