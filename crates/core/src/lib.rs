//! The A4 runtime LLC-management framework (the paper's §5).
//!
//! A4 orchestrates LLC way allocation among co-running workloads of mixed
//! priority using three hardware knobs the simulator (and, through the
//! [`platform`] module, a real Xeon) exposes:
//!
//! * **Intel CAT** — contiguous per-CLOS way masks,
//! * the hidden **per-port DCA knob** (`perfctrlsts_0`),
//! * **PCM-style performance counters** sampled once per second.
//!
//! The two key functions of the paper:
//!
//! * **(F1)** priority-based zoning that keeps LPWs off the inclusive
//!   ways (directory contention, C1) while adaptively growing the LP Zone
//!   as long as HPW hit rates hold ([`A4Controller`], §5.2–5.3);
//! * **(F2)** selective DCA disabling plus *pseudo LLC bypassing* for
//!   antagonistic storage and streaming workloads (§5.4–5.5).
//!
//! Baselines from the paper's §6 are provided for every experiment:
//! [`DefaultPolicy`] (share everything) and [`IsolatePolicy`] (static
//! per-workload partitions).
//!
//! # Examples
//!
//! ```
//! use a4_core::{A4Config, A4Controller, LlcPolicy};
//! use a4_sim::{System, SystemConfig};
//!
//! let mut sys = System::new(SystemConfig::small_test());
//! let mut a4 = A4Controller::new(A4Config::default());
//! // Drive the control loop once per logical second.
//! sys.run_logical_seconds(1);
//! let sample = sys.sample();
//! a4.tick(&mut sys, &sample);
//! assert_eq!(a4.name(), "A4-d");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod controller;
mod harness;
pub mod platform;
mod registry;
mod thresholds;
mod zones;

pub use baselines::{DefaultPolicy, IsolatePolicy};
pub use controller::{A4Config, A4Controller, A4State, FeatureLevel, Phase};
pub use harness::{Harness, RunAborted, RunReport, RunSupervisor, SupervisorCtx};
pub use registry::{AntagonistKind, WorkloadState};
pub use thresholds::Thresholds;
pub use zones::Zones;

use a4_sim::{MonitorSample, System};
use serde::{Deserialize, Serialize};

/// Serializable mutable state of an [`LlcPolicy`], one variant per
/// policy family. Restoring into the wrong policy kind fails cleanly
/// (`restore_ckpt` returns `false`) rather than silently coercing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyState {
    /// The policy carries no mutable state.
    Stateless,
    /// A one-shot policy that remembers whether it already programmed
    /// the hardware ([`DefaultPolicy`], [`IsolatePolicy`]).
    Applied {
        /// Whether the one-shot configuration ran.
        applied: bool,
    },
    /// Full [`A4Controller`] state.
    A4(Box<A4State>),
}

/// An LLC management policy driven once per monitoring interval.
///
/// Implementations program the system's CAT masks and per-device DCA
/// state in response to the sampled counters. The paper's §6 evaluates
/// three: [`DefaultPolicy`], [`IsolatePolicy`] and [`A4Controller`].
pub trait LlcPolicy: std::fmt::Debug + Send {
    /// Short display name ("Default", "Isolate", "A4-d", ...).
    fn name(&self) -> &str;

    /// Reacts to one monitoring interval.
    fn tick(&mut self, sys: &mut System, sample: &MonitorSample);

    /// Snapshots the policy's mutable state for a checkpoint. Stateful
    /// policies override both this and [`LlcPolicy::restore_ckpt`].
    fn save_ckpt(&self) -> PolicyState {
        PolicyState::Stateless
    }

    /// Restores a snapshot taken by [`LlcPolicy::save_ckpt`] on a
    /// freshly built policy of the same kind and configuration. Returns
    /// `false` (leaving the policy untouched) on a kind mismatch.
    fn restore_ckpt(&mut self, state: &PolicyState) -> bool {
        matches!(state, PolicyState::Stateless)
    }
}
