//! The two baseline LLC-management schemes of the paper's §6.

use crate::{LlcPolicy, PolicyState};
use a4_model::{ClosId, WayMask, LLC_WAYS};
use a4_sim::{MonitorSample, System};

/// The *Default* model: every workload shares the whole LLC, no CAT masks
/// are programmed, DCA stays on for every device.
///
/// # Examples
///
/// ```
/// use a4_core::{DefaultPolicy, LlcPolicy};
/// assert_eq!(DefaultPolicy::new().name(), "Default");
/// ```
#[derive(Debug, Default)]
pub struct DefaultPolicy {
    applied: bool,
}

impl DefaultPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LlcPolicy for DefaultPolicy {
    fn name(&self) -> &str {
        "Default"
    }

    fn tick(&mut self, sys: &mut System, _sample: &MonitorSample) {
        if !self.applied {
            sys.cat_reset();
            self.applied = true;
        }
    }

    fn save_ckpt(&self) -> PolicyState {
        PolicyState::Applied {
            applied: self.applied,
        }
    }

    fn restore_ckpt(&mut self, state: &PolicyState) -> bool {
        match state {
            PolicyState::Applied { applied } => {
                self.applied = *applied;
                true
            }
            _ => false,
        }
    }
}

/// The *Isolate* model: statically assigns each workload a distinct,
/// contiguous slice of LLC ways proportional to its core count — "static
/// workload-wise LLC isolation" — with DCA enabled for every device.
///
/// # Examples
///
/// ```
/// use a4_core::{IsolatePolicy, LlcPolicy};
/// assert_eq!(IsolatePolicy::new().name(), "Isolate");
/// ```
#[derive(Debug, Default)]
pub struct IsolatePolicy {
    applied: bool,
}

impl IsolatePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LlcPolicy for IsolatePolicy {
    fn name(&self) -> &str {
        "Isolate"
    }

    fn tick(&mut self, sys: &mut System, sample: &MonitorSample) {
        if self.applied || sample.workloads.is_empty() {
            return;
        }
        // Partition the 11 ways proportionally to core counts, one CLOS
        // per workload (CAT exposes 16 CLOSes; CLOS 0 stays permissive
        // for unmanaged cores).
        let ids: Vec<_> = sample.workloads.iter().map(|w| w.id).collect();
        let core_counts: Vec<usize> = ids.iter().map(|&id| sys.workload_cores(id).len()).collect();
        let total_cores: usize = core_counts.iter().sum();
        if total_cores == 0 {
            return;
        }
        let mut next_way = 0usize;
        let mut remaining = LLC_WAYS;
        for (i, (&id, &cores)) in ids.iter().zip(&core_counts).enumerate() {
            let left = ids.len() - i;
            // Proportional share, at least one way, leaving one way for
            // each remaining workload.
            let share = ((LLC_WAYS * cores) as f64 / total_cores as f64).round() as usize;
            let ways = share.clamp(1, remaining.saturating_sub(left - 1).max(1));
            let end = (next_way + ways).min(LLC_WAYS);
            let mask = WayMask::from_range(next_way, end).expect("partition within range");
            let clos = ClosId((i + 1).min(15) as u8);
            let _ = sys.cat_set_mask(clos, mask);
            let _ = sys.cat_assign_workload(id, clos);
            next_way = end;
            remaining = LLC_WAYS - next_way;
            if next_way >= LLC_WAYS {
                // Out of ways: remaining workloads share the last way.
                for (&later, _) in ids.iter().zip(&core_counts).skip(i + 1) {
                    let _ = sys.cat_assign_workload(later, clos);
                }
                break;
            }
        }
        self.applied = true;
    }

    fn save_ckpt(&self) -> PolicyState {
        PolicyState::Applied {
            applied: self.applied,
        }
    }

    fn restore_ckpt(&mut self, state: &PolicyState) -> bool {
        match state {
            PolicyState::Applied { applied } => {
                self.applied = *applied;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::{CoreId, LineAddr, Priority, WorkloadKind};
    use a4_sim::{CoreCtx, SystemConfig, Workload, WorkloadInfo};

    #[derive(Debug)]
    struct Dummy;
    impl Workload for Dummy {
        fn info(&self) -> WorkloadInfo {
            WorkloadInfo {
                name: "dummy".into(),
                kind: WorkloadKind::NonIo,
                device: None,
            }
        }
        fn step(&mut self, ctx: &mut CoreCtx<'_>) {
            while ctx.has_budget() {
                ctx.read(LineAddr(1));
                ctx.compute(10.0, 5);
            }
        }
    }

    #[test]
    fn default_policy_resets_cat() {
        let mut sys = System::new(SystemConfig::small_test());
        sys.cat_set_mask(ClosId(0), WayMask::DCA).unwrap();
        let mut policy = DefaultPolicy::new();
        sys.run_logical_seconds(1);
        let sample = sys.sample();
        policy.tick(&mut sys, &sample);
        assert_eq!(
            sys.hierarchy().clos().mask_for_core(CoreId(0)),
            WayMask::ALL
        );
    }

    #[test]
    fn isolate_partitions_proportionally() {
        let mut sys = System::new(SystemConfig::small_test());
        let a = sys
            .add_workload(Box::new(Dummy), vec![CoreId(0), CoreId(1)], Priority::High)
            .unwrap();
        let b = sys
            .add_workload(Box::new(Dummy), vec![CoreId(2)], Priority::Low)
            .unwrap();
        let mut policy = IsolatePolicy::new();
        sys.run_logical_seconds(1);
        let sample = sys.sample();
        policy.tick(&mut sys, &sample);
        let mask_a = sys.hierarchy().clos().mask_for_core(CoreId(0));
        let mask_b = sys.hierarchy().clos().mask_for_core(CoreId(2));
        assert!(!mask_a.overlaps(mask_b), "partitions are disjoint");
        assert!(
            mask_a.count() > mask_b.count(),
            "2-core workload gets more ways"
        );
        assert_eq!(sys.hierarchy().clos().mask_for_core(CoreId(1)), mask_a);
        // Idempotent across ticks.
        sys.run_logical_seconds(1);
        let sample = sys.sample();
        policy.tick(&mut sys, &sample);
        assert_eq!(sys.hierarchy().clos().mask_for_core(CoreId(0)), mask_a);
        let _ = (a, b);
    }

    #[test]
    fn isolate_handles_more_workloads_than_ways() {
        let mut sys = System::new(SystemConfig::small_test());
        // 4 cores available in small_test; 4 single-core workloads.
        for c in 0..4 {
            sys.add_workload(Box::new(Dummy), vec![CoreId(c)], Priority::Low)
                .unwrap();
        }
        let mut policy = IsolatePolicy::new();
        sys.run_logical_seconds(1);
        let sample = sys.sample();
        policy.tick(&mut sys, &sample);
        for c in 0..4 {
            let mask = sys.hierarchy().clos().mask_for_core(CoreId(c));
            assert!(!mask.is_empty());
            assert!(mask.is_contiguous());
        }
    }
}
