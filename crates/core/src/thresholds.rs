//! The five A4 thresholds (Table 1) and the two timing parameters (§5.7).

use serde::{Deserialize, Serialize};

/// Threshold values steering the A4 controller.
///
/// Names follow the paper:
///
/// | field | paper name | default |
/// |---|---|---|
/// | `hpw_llc_hit_thr` | T1 `HPW_LLC_HIT_THR` | 20 % |
/// | `dmalk_dca_ms_thr` | T2 `DMALK_DCA_MS_THR` | 40 % |
/// | `dmalk_io_tp_thr` | T3 `DMALK_IO_TP_THR` | 35 % |
/// | `dmalk_llc_ms_thr` | T4 `DMALK_LLC_MS_THR` | 40 % |
/// | `ant_cache_miss_thr` | T5 `ANT_CACHE_MISS_THR` | 90 % |
///
/// # Examples
///
/// ```
/// use a4_core::Thresholds;
///
/// let t = Thresholds::paper();
/// assert_eq!(t.hpw_llc_hit_thr, 0.20);
/// assert_eq!(t.ant_cache_miss_thr, 0.90);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// T1: tolerated relative drop in an HPW's LLC hit rate before the LP
    /// Zone stops growing (or a phase change is declared).
    pub hpw_llc_hit_thr: f64,
    /// T2: DCA leak rate (leaked fraction of DCA allocations) above which
    /// I/O is suffering DMA leak.
    pub dmalk_dca_ms_thr: f64,
    /// T3: storage share of total PCIe write (DMA ingress) throughput
    /// above which storage is blamed for the leak.
    pub dmalk_io_tp_thr: f64,
    /// T4: LLC miss rate of the storage workload above which it is not
    /// benefiting from DCA.
    pub dmalk_llc_ms_thr: f64,
    /// T5: MLC *and* LLC miss-rate floor identifying a non-I/O
    /// antagonist.
    pub ant_cache_miss_thr: f64,
    /// Stable interval in monitoring ticks before a revert probe (10 s).
    pub stable_interval: u64,
    /// Revert-probe length in ticks (1 s).
    pub revert_interval: u64,
    /// LP Zone expansion cadence in ticks (2 s).
    pub expand_period: u64,
    /// Instability bound for pseudo-bypass shrinking and antagonist
    /// restoration (10 %).
    pub fluctuation_thr: f64,
}

impl Thresholds {
    /// The values used in the paper's main experiments (Table 1).
    pub fn paper() -> Self {
        Thresholds {
            hpw_llc_hit_thr: 0.20,
            dmalk_dca_ms_thr: 0.40,
            dmalk_io_tp_thr: 0.35,
            dmalk_llc_ms_thr: 0.40,
            ant_cache_miss_thr: 0.90,
            stable_interval: 10,
            revert_interval: 1,
            expand_period: 2,
            fluctuation_thr: 0.10,
        }
    }

    /// Values calibrated for the capacity-scaled simulator: identical
    /// logic, slightly laxer antagonist floor because the scaled LLC's
    /// shorter reuse distances soften extreme miss rates.
    pub fn scaled_sim() -> Self {
        Thresholds {
            ant_cache_miss_thr: 0.60,
            ..Self::paper()
        }
    }

    /// True if `current` has dropped more than T1 relative to `baseline`.
    pub fn hit_rate_dropped(&self, baseline: f64, current: f64) -> bool {
        baseline > 0.0 && current < baseline * (1.0 - self.hpw_llc_hit_thr)
    }

    /// True if `current` deviates more than `fluctuation_thr` from `base`
    /// in either direction.
    pub fn fluctuated(&self, base: f64, current: f64) -> bool {
        if base == 0.0 {
            return current != 0.0;
        }
        ((current - base) / base).abs() > self.fluctuation_thr
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table_1() {
        let t = Thresholds::paper();
        assert_eq!(t.hpw_llc_hit_thr, 0.20);
        assert_eq!(t.dmalk_dca_ms_thr, 0.40);
        assert_eq!(t.dmalk_io_tp_thr, 0.35);
        assert_eq!(t.dmalk_llc_ms_thr, 0.40);
        assert_eq!(t.ant_cache_miss_thr, 0.90);
        assert_eq!(t.stable_interval, 10);
        assert_eq!(t.revert_interval, 1);
        assert_eq!(t.expand_period, 2);
    }

    #[test]
    fn hit_rate_drop_is_relative() {
        let t = Thresholds::paper();
        assert!(!t.hit_rate_dropped(0.9, 0.8)); // 11% drop < 20%
        assert!(t.hit_rate_dropped(0.9, 0.7)); // 22% drop
        assert!(!t.hit_rate_dropped(0.0, 0.0)); // no baseline yet
    }

    #[test]
    fn fluctuation_is_two_sided() {
        let t = Thresholds::paper();
        assert!(t.fluctuated(0.5, 0.56));
        assert!(t.fluctuated(0.5, 0.44));
        assert!(!t.fluctuated(0.5, 0.52));
        assert!(t.fluctuated(0.0, 0.1));
        assert!(!t.fluctuated(0.0, 0.0));
    }

    #[test]
    fn scaled_sim_only_changes_t5() {
        let p = Thresholds::paper();
        let s = Thresholds::scaled_sim();
        assert!(s.ant_cache_miss_thr < p.ant_cache_miss_thr);
        assert_eq!(s.hpw_llc_hit_thr, p.hpw_llc_hit_thr);
        assert_eq!(s.stable_interval, p.stable_interval);
    }
}
