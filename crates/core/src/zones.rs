//! LLC zone layouts (the paper's Fig. 10).
//!
//! A4 divides the 11 ways into up to three zones:
//!
//! * **DCA Zone** — ways 0–1, reserved for I/O HPWs once any exist,
//! * **HP Zone** — the ways HPWs may allocate into,
//! * **LP Zone** — the ways LPWs (and demoted antagonists) may use; it
//!   never touches the inclusive ways once I/O is present.

use a4_model::{WayMask, LLC_WAYS};
use serde::{Deserialize, Serialize};

/// A zone layout plus the growth bounds of the LP Zone.
///
/// # Examples
///
/// ```
/// use a4_core::Zones;
/// use a4_model::WayMask;
///
/// // Fig. 10a: no I/O workloads.
/// let z = Zones::priority_only();
/// assert_eq!(z.hp, WayMask::ALL);
/// assert_eq!(z.lp, WayMask::from_paper_range(9, 10)?);
///
/// // Fig. 10b: I/O HPWs present — DCA Zone carved out, LP off the
/// // inclusive ways.
/// let z = Zones::with_io_hpws();
/// assert_eq!(z.dca, Some(WayMask::DCA));
/// assert_eq!(z.lp, WayMask::from_paper_range(7, 8)?);
/// assert!(!z.lp.overlaps(WayMask::INCLUSIVE));
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Zones {
    /// Ways HPWs allocate into. I/O HPWs always use [`WayMask::ALL`]
    /// regardless (they are "not explicitly assigned").
    pub hp: WayMask,
    /// Ways LPWs allocate into (the initial partition; it grows).
    pub lp: WayMask,
    /// Reserved DCA Zone, if I/O HPWs are present.
    pub dca: Option<WayMask>,
    /// Left-most way the LP Zone may ever grow to.
    pub lp_limit_way: usize,
}

impl Zones {
    /// Fig. 10a: only non-I/O workloads. HP Zone covers everything; LP
    /// Zone starts at the two right-most ways and may grow across the
    /// whole cache (the HPWs' hit rates are the only brake).
    pub fn priority_only() -> Self {
        Zones {
            hp: WayMask::ALL,
            lp: WayMask::INCLUSIVE,
            dca: None,
            lp_limit_way: 0,
        }
    }

    /// Fig. 10b: I/O HPWs present. DCA Zone = ways 0–1 (I/O HPWs only);
    /// non-I/O HPWs get ways 2–10; LP Zone starts at ways 7–8 and may
    /// grow left down to way 2 — never into the DCA or inclusive ways.
    pub fn with_io_hpws() -> Self {
        Zones {
            hp: WayMask::from_range(2, LLC_WAYS).expect("static mask"),
            lp: WayMask::from_paper_range(7, 8).expect("static mask"),
            dca: Some(WayMask::DCA),
            lp_limit_way: 2,
        }
    }

    /// The layout for the current workload mix.
    pub fn for_mix(any_io_hpw: bool) -> Self {
        if any_io_hpw {
            Self::with_io_hpws()
        } else {
            Self::priority_only()
        }
    }

    /// The trash mask for pseudo LLC bypassing: the right-most *standard*
    /// way (way 8, Fig. 10d).
    pub fn trash_mask() -> WayMask {
        WayMask::from_paper_range(8, 8).expect("static mask")
    }

    /// Grows the LP Zone one way to the left, respecting the layout's
    /// bound. Returns `None` at the limit.
    pub fn grow_lp(&self, lp: WayMask) -> Option<WayMask> {
        let first = lp.first_way()?;
        if first <= self.lp_limit_way {
            return None;
        }
        lp.grow_left()
    }

    /// Checks the structural invariants of a layout.
    ///
    /// # Panics
    ///
    /// Panics if a zone is malformed (test helper).
    pub fn assert_invariants(&self) {
        assert!(self.hp.is_contiguous(), "hp zone must be contiguous");
        assert!(self.lp.is_contiguous(), "lp zone must be contiguous");
        if let Some(dca) = self.dca {
            assert!(!dca.overlaps(self.lp), "lp zone may not enter the DCA zone");
            assert!(
                !self.lp.overlaps(WayMask::INCLUSIVE),
                "lp zone off the inclusive ways"
            );
            assert!(!dca.overlaps(self.hp), "non-I/O HP zone excludes DCA ways");
        }
        assert!(self.lp_limit_way < LLC_WAYS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn layouts_satisfy_invariants() {
        Zones::priority_only().assert_invariants();
        Zones::with_io_hpws().assert_invariants();
    }

    #[test]
    fn for_mix_dispatches() {
        assert_eq!(Zones::for_mix(false), Zones::priority_only());
        assert_eq!(Zones::for_mix(true), Zones::with_io_hpws());
    }

    #[test]
    fn lp_growth_stops_at_limits() {
        // Without I/O the LP zone can reach way 0.
        let z = Zones::priority_only();
        let mut lp = z.lp;
        let mut steps = 0;
        while let Some(next) = z.grow_lp(lp) {
            lp = next;
            steps += 1;
        }
        assert_eq!(steps, 9, "9-way growth from [9:10] to [0:10]");
        assert_eq!(lp, WayMask::ALL);

        // With I/O the LP zone stops at way 2.
        let z = Zones::with_io_hpws();
        let mut lp = z.lp;
        while let Some(next) = z.grow_lp(lp) {
            lp = next;
        }
        assert_eq!(lp, WayMask::from_paper_range(2, 8).unwrap());
        assert!(!lp.overlaps(WayMask::DCA));
        assert!(!lp.overlaps(WayMask::INCLUSIVE));
    }

    #[test]
    fn trash_mask_is_way_8() {
        let t = Zones::trash_mask();
        assert_eq!(t.count(), 1);
        assert!(t.contains_way(8));
        assert!(!t.overlaps(WayMask::INCLUSIVE));
        assert!(!t.overlaps(WayMask::DCA));
    }

    proptest! {
        /// Growth preserves contiguity and containment at every step.
        #[test]
        fn growth_chain_is_well_formed(io in any::<bool>()) {
            let z = Zones::for_mix(io);
            let mut lp = z.lp;
            loop {
                prop_assert!(lp.is_contiguous());
                if let Some(dca) = z.dca {
                    prop_assert!(!lp.overlaps(dca));
                }
                match z.grow_lp(lp) {
                    Some(next) => {
                        prop_assert!(next.contains(lp));
                        prop_assert_eq!(next.count(), lp.count() + 1);
                        lp = next;
                    }
                    None => break,
                }
            }
        }
    }
}
