//! Real-hardware control backends.
//!
//! The [`crate::A4Controller`] drives the simulator directly; this module
//! shows how the identical decisions map onto a real Skylake-SP server:
//! CAT via the Linux `resctrl` filesystem, and the per-port DCA knob via
//! PCI configuration-space writes (as `setpci` / the `ddio-bench` tooling
//! does). The backend is exercised against an in-memory filesystem in
//! tests; on a machine with `/sys/fs/resctrl` mounted it emits the real
//! writes.

mod resctrl;

pub use resctrl::{FsWrite, MemFs, ResctrlBackend};
