//! Linux `resctrl` + PCI config-space backend skeleton.
//!
//! On a real Xeon the A4 control plane consists of writes to:
//!
//! * `/sys/fs/resctrl/<group>/schemata` — `L3:0=<hex mask>` programs the
//!   CAT capacity bitmask of a CLOS group (Intel convention: way 0 is the
//!   MSB of the 11-bit mask, exactly [`WayMask::to_cat_bits`]);
//! * `/sys/fs/resctrl/<group>/cpus_list` — pins cores to the group;
//! * the PCI config space of the device's root port, offset `0x180`
//!   (`perfctrlsts_0`): set `NoSnoopOpWrEn` (bit 3) and clear
//!   `Use_Allocating_Flow_Wr` (bit 7) to disable DCA for that port.
//!
//! The backend renders those writes through a pluggable [`FsWrite`] sink
//! so the full command stream is unit-testable without hardware.

use a4_model::{A4Error, ClosId, CoreId, DeviceId, PortId, Result, WayMask};
use a4_pcie::PerfCtrlSts;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A sink for control-plane writes (a real filesystem, or memory in
/// tests).
pub trait FsWrite: std::fmt::Debug + Send + Sync {
    /// Writes `contents` to `path`, replacing previous contents.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::Platform`] if the write fails.
    fn write(&self, path: &str, contents: &str) -> Result<()>;

    /// Reads back `path` (for read-modify-write of config registers).
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::Platform`] if the path does not exist.
    fn read(&self, path: &str) -> Result<String>;
}

/// An in-memory [`FsWrite`] recording every write, for tests and dry
/// runs.
#[derive(Debug, Clone, Default)]
pub struct MemFs {
    files: Arc<Mutex<BTreeMap<String, String>>>,
    log: Arc<Mutex<Vec<(String, String)>>>,
}

impl MemFs {
    /// Creates an empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-populates a file (e.g. an initial register value).
    pub fn seed(&self, path: &str, contents: &str) {
        self.files.lock().insert(path.into(), contents.into());
    }

    /// Current contents of a path, if written.
    pub fn get(&self, path: &str) -> Option<String> {
        self.files.lock().get(path).cloned()
    }

    /// The ordered log of all writes.
    pub fn log(&self) -> Vec<(String, String)> {
        self.log.lock().clone()
    }
}

impl FsWrite for MemFs {
    fn write(&self, path: &str, contents: &str) -> Result<()> {
        self.files.lock().insert(path.into(), contents.into());
        self.log.lock().push((path.into(), contents.into()));
        Ok(())
    }

    fn read(&self, path: &str) -> Result<String> {
        self.files
            .lock()
            .get(path)
            .cloned()
            .ok_or_else(|| A4Error::Platform {
                what: format!("no such path: {path}"),
            })
    }
}

/// The resctrl/PCI control backend.
///
/// # Examples
///
/// ```
/// use a4_core::platform::{MemFs, ResctrlBackend};
/// use a4_model::{ClosId, CoreId, WayMask};
///
/// let fs = MemFs::new();
/// let backend = ResctrlBackend::new(fs.clone(), "/sys/fs/resctrl");
/// backend.set_clos_mask(ClosId(2), WayMask::from_paper_range(7, 8)?)?;
/// assert_eq!(
///     fs.get("/sys/fs/resctrl/a4_clos2/schemata").as_deref(),
///     Some("L3:0=00c\n"),
/// );
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug)]
pub struct ResctrlBackend<F: FsWrite> {
    fs: F,
    root: String,
    /// PCI config paths per port (BDF-addressed on real hardware).
    port_paths: BTreeMap<PortId, String>,
    device_ports: BTreeMap<DeviceId, PortId>,
}

impl<F: FsWrite> ResctrlBackend<F> {
    /// Creates a backend rooted at the resctrl mount point.
    pub fn new(fs: F, root: impl Into<String>) -> Self {
        ResctrlBackend {
            fs,
            root: root.into(),
            port_paths: BTreeMap::new(),
            device_ports: BTreeMap::new(),
        }
    }

    /// Registers a root port's PCI config path (e.g.
    /// `/sys/bus/pci/devices/0000:17:00.0/config`) and the device behind
    /// it.
    pub fn register_port(
        &mut self,
        port: PortId,
        device: DeviceId,
        config_path: impl Into<String>,
    ) {
        self.port_paths.insert(port, config_path.into());
        self.device_ports.insert(device, port);
    }

    fn group_dir(&self, clos: ClosId) -> String {
        format!("{}/a4_clos{}", self.root, clos.0)
    }

    /// Programs a CLOS capacity mask via the group's `schemata` file.
    ///
    /// # Errors
    ///
    /// Propagates sink failures.
    pub fn set_clos_mask(&self, clos: ClosId, mask: WayMask) -> Result<()> {
        let path = format!("{}/schemata", self.group_dir(clos));
        let contents = format!("L3:0={:03x}\n", mask.to_cat_bits());
        self.fs.write(&path, &contents)
    }

    /// Pins cores to a CLOS group via `cpus_list`.
    ///
    /// # Errors
    ///
    /// Propagates sink failures.
    pub fn assign_cores(&self, clos: ClosId, cores: &[CoreId]) -> Result<()> {
        let path = format!("{}/cpus_list", self.group_dir(clos));
        let list = cores
            .iter()
            .map(|c| c.0.to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.fs.write(&path, &format!("{list}\n"))
    }

    /// Toggles DCA for a device's root port via `perfctrlsts_0`
    /// (read-modify-write of the 32-bit register at offset 0x180).
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidDevice`] for unregistered devices and
    /// propagates sink failures.
    pub fn set_device_dca(&self, device: DeviceId, enable: bool) -> Result<()> {
        let port = self
            .device_ports
            .get(&device)
            .ok_or(A4Error::InvalidDevice { device: device.0 })?;
        let path = self
            .port_paths
            .get(port)
            .ok_or(A4Error::InvalidDevice { device: device.0 })?;
        let current = self.fs.read(path).unwrap_or_else(|_| "0x80".into());
        let raw =
            u64::from_str_radix(current.trim().trim_start_matches("0x"), 16).map_err(|e| {
                A4Error::Platform {
                    what: format!("bad register value: {e}"),
                }
            })?;
        let mut reg = PerfCtrlSts::from_raw(raw);
        if enable {
            reg.enable_dca();
        } else {
            reg.disable_dca();
        }
        self.fs.write(path, &format!("{:#x}", reg.raw()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemata_uses_cat_msb_convention() {
        let fs = MemFs::new();
        let backend = ResctrlBackend::new(fs.clone(), "/r");
        backend.set_clos_mask(ClosId(1), WayMask::DCA).unwrap();
        // Ways [0:1] = 0x600 in Intel's encoding.
        assert_eq!(
            fs.get("/r/a4_clos1/schemata").as_deref(),
            Some("L3:0=600\n")
        );
        backend.set_clos_mask(ClosId(1), WayMask::ALL).unwrap();
        assert_eq!(
            fs.get("/r/a4_clos1/schemata").as_deref(),
            Some("L3:0=7ff\n")
        );
    }

    #[test]
    fn cpus_list_format() {
        let fs = MemFs::new();
        let backend = ResctrlBackend::new(fs.clone(), "/r");
        backend
            .assign_cores(ClosId(3), &[CoreId(2), CoreId(5), CoreId(9)])
            .unwrap();
        assert_eq!(fs.get("/r/a4_clos3/cpus_list").as_deref(), Some("2,5,9\n"));
    }

    #[test]
    fn dca_toggle_is_read_modify_write() {
        let fs = MemFs::new();
        let mut backend = ResctrlBackend::new(fs.clone(), "/r");
        backend.register_port(PortId(2), DeviceId(1), "/pci/port2/config");
        // Seed a register with unrelated bits set.
        fs.seed("/pci/port2/config", "0xff80");
        backend.set_device_dca(DeviceId(1), false).unwrap();
        let raw = u64::from_str_radix(
            fs.get("/pci/port2/config")
                .unwrap()
                .trim_start_matches("0x"),
            16,
        )
        .unwrap();
        let reg = PerfCtrlSts::from_raw(raw);
        assert!(!reg.dca_enabled());
        assert_eq!(raw & 0xff00, 0xff00, "unrelated bits preserved");
        backend.set_device_dca(DeviceId(1), true).unwrap();
        let raw = u64::from_str_radix(
            fs.get("/pci/port2/config")
                .unwrap()
                .trim_start_matches("0x"),
            16,
        )
        .unwrap();
        assert!(PerfCtrlSts::from_raw(raw).dca_enabled());
    }

    #[test]
    fn unknown_device_is_an_error() {
        let backend = ResctrlBackend::new(MemFs::new(), "/r");
        assert!(matches!(
            backend.set_device_dca(DeviceId(9), false),
            Err(A4Error::InvalidDevice { device: 9 })
        ));
    }

    #[test]
    fn write_log_records_order() {
        let fs = MemFs::new();
        let backend = ResctrlBackend::new(fs.clone(), "/r");
        backend.set_clos_mask(ClosId(0), WayMask::ALL).unwrap();
        backend.assign_cores(ClosId(0), &[CoreId(0)]).unwrap();
        let log = fs.log();
        assert_eq!(log.len(), 2);
        assert!(log[0].0.ends_with("schemata"));
        assert!(log[1].0.ends_with("cpus_list"));
    }
}
