//! Single-socket ≡ local-only N-socket differential proptest — the
//! `batched_runs.rs` pattern one level up, run against whole systems.
//!
//! An N-socket [`System`] (N swept over the model's full 2..=4 range)
//! with every core, device, buffer and CLOS rule pinned to socket 0 and
//! `upi_ns = 0` must be *observationally identical* to the
//! single-socket system: bit-identical `HierarchyStats`, bit-identical
//! monitor samples (checked through their serialized JSON, which
//! captures every counter and every f64's exact formatting), identical
//! LLC victim-pick RNG state, identical system RNG state, untouched
//! remote sockets, and zero traffic on every pair link of the UPI
//! fabric. This is the invariant that made growing the simulator to N
//! sockets safe: the entire NUMA model — fabric, link queueing,
//! requester caches included — is additive, and the pre-NUMA behaviour
//! is the local-only special case.

use a4_model::{ClosId, CoreId, LineAddr, PortId, Priority, WayMask, WorkloadId};
use a4_pcie::{NicConfig, NvmeCommand, NvmeConfig, NvmeOp};
use a4_sim::{CoreCtx, System, SystemConfig, Workload, WorkloadInfo};
use proptest::prelude::*;

/// One randomly parameterized workload of the mix.
#[derive(Debug, Clone)]
enum Wl {
    /// Sequential batched reads over an own buffer (`read_run`).
    Stream { lines: u64 },
    /// Random scalar reads/writes over an own buffer (drives the system
    /// RNG).
    Scramble { lines: u64 },
    /// Rx-ring consumer with payload touching (`read_io_run`, `nic_tx`).
    NicConsumer,
    /// Queue-depth storage reader (`submit`/`pop_completion_in`).
    SsdReader { block: u64, qd: usize },
}

/// A whole scenario: workloads (one core each, in order), device
/// parameters, DCA states and a CAT rule, plus a mid-run control event.
#[derive(Debug, Clone)]
struct Mix {
    seed: u64,
    wls: Vec<Wl>,
    packet_bytes: u64,
    nic_dca: bool,
    ssd_dca: bool,
    cat: Option<(u8, usize, usize)>, // (clos, first way, way count)
    flip_nic_dca_midway: bool,
}

fn mix_strategy() -> impl Strategy<Value = Mix> {
    let wl = prop_oneof![
        (16u64..256).prop_map(|lines| Wl::Stream { lines }),
        (16u64..256).prop_map(|lines| Wl::Scramble { lines }),
        Just(Wl::NicConsumer),
        (1u64..24, 1usize..6).prop_map(|(block, qd)| Wl::SsdReader { block, qd }),
    ];
    (
        any::<u64>(),
        prop::collection::vec(wl, 1..4),
        prop_oneof![Just(64u64), Just(256), Just(1024)],
        any::<bool>(),
        any::<bool>(),
        (any::<bool>(), 0u8..4, 0usize..9, 1usize..4),
        any::<bool>(),
    )
        .prop_map(
            |(seed, wls, packet_bytes, nic_dca, ssd_dca, cat, flip_nic_dca_midway)| {
                let cat = cat.0.then_some((cat.1, cat.2, cat.3));
                Mix {
                    seed,
                    wls,
                    packet_bytes,
                    nic_dca,
                    ssd_dca,
                    cat,
                    flip_nic_dca_midway,
                }
            },
        )
}

#[derive(Debug)]
struct Streamer {
    base: LineAddr,
    lines: u64,
    cursor: u64,
}

impl Workload for Streamer {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: "stream".into(),
            kind: a4_model::WorkloadKind::NonIo,
            device: None,
        }
    }
    fn step(&mut self, ctx: &mut CoreCtx<'_>) {
        while ctx.has_budget() {
            let at = self.cursor % self.lines;
            let len = (self.lines - at).min(32);
            let done = ctx.read_run(self.base.offset(at), len, 3.0, 2, 1);
            self.cursor += done.max(1);
        }
    }
}

#[derive(Debug)]
struct Scrambler {
    base: LineAddr,
    lines: u64,
}

impl Workload for Scrambler {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: "scramble".into(),
            kind: a4_model::WorkloadKind::NonIo,
            device: None,
        }
    }
    fn step(&mut self, ctx: &mut CoreCtx<'_>) {
        while ctx.has_budget() {
            let at = ctx.rng_range(self.lines);
            if ctx.rng_f64() < 0.3 {
                ctx.write(self.base.offset(at));
            } else {
                ctx.read(self.base.offset(at));
            }
            ctx.compute(4.0, 4);
            ctx.add_ops(1);
        }
    }
}

#[derive(Debug)]
struct NicConsumer {
    dev: a4_model::DeviceId,
    echoed: u64,
}

impl Workload for NicConsumer {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: "nic-consumer".into(),
            kind: a4_model::WorkloadKind::NetworkIo,
            device: Some(self.dev),
        }
    }
    fn step(&mut self, ctx: &mut CoreCtx<'_>) {
        let dev = self.dev;
        while ctx.has_budget() {
            let Some(pkt) = ctx.nic_mut(dev).rx_pop(0) else {
                ctx.compute(40.0, 8);
                continue;
            };
            ctx.read_io(pkt.desc);
            let mut acc = 0.0;
            ctx.read_io_run(pkt.payload, pkt.payload_lines, 1.5, 1, &mut acc);
            // Echo every fourth packet back out (exercises nic_tx /
            // egress DMA).
            self.echoed += 1;
            if self.echoed.is_multiple_of(4) {
                ctx.nic_tx(dev, pkt.payload, pkt.payload_lines);
            }
            ctx.add_ops(1);
            ctx.add_io_bytes(pkt.payload_lines * 64);
        }
    }
}

#[derive(Debug)]
struct SsdReader {
    dev: a4_model::DeviceId,
    buf: LineAddr,
    block: u64,
    qd: usize,
    inflight: usize,
    slot: usize,
}

impl Workload for SsdReader {
    fn info(&self) -> WorkloadInfo {
        WorkloadInfo {
            name: "ssd-reader".into(),
            kind: a4_model::WorkloadKind::StorageIo,
            device: Some(self.dev),
        }
    }
    fn step(&mut self, ctx: &mut CoreCtx<'_>) {
        let dev = self.dev;
        let span = self.block * self.qd as u64;
        while ctx.has_budget() {
            while self.inflight < self.qd {
                let cmd = NvmeCommand {
                    buffer: self.buf.offset((self.slot % self.qd) as u64 * self.block),
                    lines: self.block,
                    op: NvmeOp::Read,
                };
                if ctx.nvme_mut(dev).submit(cmd).is_err() {
                    break;
                }
                self.slot += 1;
                self.inflight += 1;
                ctx.compute(100.0, 40);
            }
            let Some(done) = ctx
                .nvme_mut(dev)
                .pop_completion_in(self.buf, span, NvmeOp::Read)
            else {
                ctx.compute(50.0, 10);
                continue;
            };
            self.inflight = self.inflight.saturating_sub(1);
            let mut acc = 0.0;
            ctx.read_io_run(done.cmd.buffer, done.cmd.lines, 8.0, 4, &mut acc);
            ctx.add_ops(1);
        }
    }
}

/// Wires one system from the mix. `sockets` only changes the config; the
/// registration script is identical — everything lands on socket 0.
fn build(mix: &Mix, sockets: usize) -> System {
    let mut cfg = SystemConfig::small_test();
    cfg.sockets = sockets;
    cfg.upi_ns = 0;
    cfg.seed = mix.seed;
    let mut sys = System::new(cfg);
    let nic = sys
        .attach_nic(PortId(0), NicConfig::connectx6_100g(1, 8, mix.packet_bytes))
        .unwrap();
    let ssd = sys
        .attach_nvme(PortId(1), NvmeConfig::raid0_980pro_x4())
        .unwrap();
    sys.set_device_dca(nic, mix.nic_dca).unwrap();
    sys.set_device_dca(ssd, mix.ssd_dca).unwrap();
    for (core, wl) in mix.wls.iter().enumerate() {
        let core = CoreId(core as u8);
        let boxed: Box<dyn Workload> = match *wl {
            Wl::Stream { lines } => {
                let base = sys.alloc_lines(lines);
                Box::new(Streamer {
                    base,
                    lines,
                    cursor: 0,
                })
            }
            Wl::Scramble { lines } => {
                let base = sys.alloc_lines(lines);
                Box::new(Scrambler { base, lines })
            }
            Wl::NicConsumer => Box::new(NicConsumer {
                dev: nic,
                echoed: 0,
            }),
            Wl::SsdReader { block, qd } => {
                let buf = sys.alloc_lines(block * qd as u64);
                Box::new(SsdReader {
                    dev: ssd,
                    buf,
                    block,
                    qd,
                    inflight: 0,
                    slot: 0,
                })
            }
        };
        let priority = if core.0.is_multiple_of(2) {
            Priority::High
        } else {
            Priority::Low
        };
        sys.add_workload(boxed, vec![core], priority).unwrap();
    }
    if let Some((clos, start, len)) = mix.cat {
        let mask = WayMask::from_range(start, (start + len).min(9).max(start + 1)).unwrap();
        sys.cat_set_mask(ClosId(clos), mask).unwrap();
        sys.cat_assign_workload(WorkloadId(0), ClosId(clos))
            .unwrap();
    }
    sys
}

/// Drives one logical second with the mix's mid-run control event.
fn advance(sys: &mut System, mix: &Mix, second: u64) {
    if mix.flip_nic_dca_midway && second == 1 {
        sys.set_device_dca(a4_model::DeviceId(0), !mix.nic_dca)
            .unwrap();
    }
    sys.run_logical_seconds(1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline differential: for random workload/device/CAT mixes
    /// and any socket count the model supports, a local-only N-socket
    /// system is bit-for-bit the single-socket system — stats, samples,
    /// RNG state — and every remote socket stays virgin.
    #[test]
    fn local_only_n_socket_system_is_bit_identical(
        mix in mix_strategy(),
        sockets in 2usize..a4_model::MAX_SOCKETS + 1,
    ) {
        let mut single = build(&mix, 1);
        let mut multi = build(&mix, sockets);
        let virgin = a4_cache::CacheHierarchy::new(
            SystemConfig::small_test().hierarchy,
        );
        for second in 0..3 {
            advance(&mut single, &mix, second);
            advance(&mut multi, &mix, second);
            prop_assert!(
                single.hierarchy().stats() == multi.hierarchy().stats(),
                "socket-0 HierarchyStats diverged at second {second}"
            );
            prop_assert_eq!(
                single.hierarchy().llc().rng_state(),
                multi.hierarchy().llc().rng_state(),
                "LLC victim RNG diverged at second {}", second
            );
            prop_assert_eq!(
                single.rng_probe(),
                multi.rng_probe(),
                "system RNG diverged at second {}", second
            );
            // Samples capture every monitored counter (and every f64's
            // bits, through its exact JSON rendering).
            let s1 = serde_json::to_string(&single.sample()).unwrap();
            let s2 = serde_json::to_string(&multi.sample()).unwrap();
            prop_assert_eq!(s1, s2, "monitor samples diverged at second {}", second);
            // The remote sockets never saw a single access...
            for socket in 1..sockets {
                prop_assert!(
                    multi.socket_hierarchy(socket).stats() == virgin.stats(),
                    "socket {socket} stats must stay zero"
                );
                prop_assert_eq!(
                    multi.socket_hierarchy(socket).llc().rng_state(),
                    virgin.llc().rng_state(),
                    "socket {} LLC RNG must stay virgin", socket
                );
                prop_assert_eq!(
                    multi.remote_cache(socket).occupied(),
                    0,
                    "socket {} requester cache must stay empty", socket
                );
            }
            // ...and nothing crossed any link of the fabric.
            prop_assert_eq!(multi.upi().crossed_lines(), 0, "no UPI crossings");
            for ((a, b), link) in multi.upi().pairs().zip(multi.upi().links()) {
                prop_assert_eq!(
                    link.read_lines() + link.write_lines(),
                    0,
                    "link ({}, {}) must stay idle", a, b
                );
            }
        }
    }
}

/// Deterministic smoke pin of the same invariant on one fixed mix (fast
/// failure signal without the proptest machinery).
#[test]
fn fixed_mix_is_bit_identical() {
    let mix = Mix {
        seed: 0xA4,
        wls: vec![
            Wl::NicConsumer,
            Wl::SsdReader { block: 8, qd: 4 },
            Wl::Scramble { lines: 128 },
        ],
        packet_bytes: 1024,
        nic_dca: true,
        ssd_dca: true,
        cat: Some((1, 5, 2)),
        flip_nic_dca_midway: true,
    };
    let mut single = build(&mix, 1);
    let mut quad = build(&mix, a4_model::MAX_SOCKETS);
    for second in 0..4 {
        advance(&mut single, &mix, second);
        advance(&mut quad, &mix, second);
        assert!(single.hierarchy().stats() == quad.hierarchy().stats());
        assert_eq!(
            serde_json::to_string(&single.sample()).unwrap(),
            serde_json::to_string(&quad.sample()).unwrap()
        );
    }
    assert_eq!(quad.upi().crossed_lines(), 0);
    // Sanity: the mix actually did I/O (the equivalence is not vacuous).
    assert!(single.hierarchy().stats().total_dma_write_lines() > 0);
}
