//! The per-logical-second monitoring sample — the simulator's equivalent
//! of one Intel PCM polling round, and the sole input of the A4
//! controller's decisions.

use crate::perf::{LatencyKind, WorkloadPerf};
use a4_model::{Bytes, DeviceClass, DeviceId, Priority, SimTime, WorkloadId, WorkloadKind};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Summary statistics of one latency histogram slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStat {
    /// Arithmetic mean in nanoseconds.
    pub mean_ns: f64,
    /// 99th percentile in nanoseconds.
    pub p99_ns: u64,
    /// Number of samples.
    pub count: u64,
}

/// One workload's slice of a monitoring interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSample {
    /// The workload's id.
    pub id: WorkloadId,
    /// Display name (shared with the registration slot, so cloning a
    /// sample never copies the string).
    pub name: Arc<str>,
    /// Traffic class.
    pub kind: WorkloadKind,
    /// Current QoS priority (as registered; A4 may demote internally).
    pub priority: Priority,
    /// Core accesses this interval.
    pub accesses: u64,
    /// LLC hits per LLC access.
    pub llc_hit_rate: f64,
    /// LLC misses per LLC access (the paper's "misses per access").
    pub llc_miss_rate: f64,
    /// MLC misses per core access.
    pub mlc_miss_rate: f64,
    /// Instructions retired this interval.
    pub instructions: u64,
    /// Instructions per cycle this interval.
    pub ipc: f64,
    /// Completed high-level operations (packets, blocks, requests).
    pub ops: u64,
    /// I/O payload bytes moved for this workload.
    pub io_bytes: u64,
    /// Latency statistics per [`LatencyKind`] slot.
    pub latency: [LatencyStat; 8],
    /// DCA write-allocates attributed to the workload.
    pub dca_allocs: u64,
    /// DCA write-updates attributed to the workload.
    pub dca_updates: u64,
    /// DMA leaks suffered.
    pub dma_leaks: u64,
    /// DMA bloat insertions.
    pub dma_bloats: u64,
    /// C1 inclusive-way migrations.
    pub migrations: u64,
    /// Leaked fraction of DCA allocations (T2 input).
    pub dca_leak_rate: f64,
    /// Memory bytes read on behalf of the workload.
    pub mem_read_bytes: u64,
    /// Memory bytes written back for the workload's lines.
    pub mem_write_bytes: u64,
}

impl WorkloadSample {
    /// Latency stats for one slot.
    pub fn latency_of(&self, kind: LatencyKind) -> LatencyStat {
        self.latency[kind as usize]
    }

    pub(crate) fn latency_from_perf(perf: &WorkloadPerf) -> [LatencyStat; 8] {
        let mut out = [LatencyStat::default(); 8];
        for (i, slot) in out.iter_mut().enumerate() {
            let kind = match i {
                0 => LatencyKind::NetQueue,
                1 => LatencyKind::NetPointer,
                2 => LatencyKind::NetProcess,
                3 => LatencyKind::NetTotal,
                4 => LatencyKind::StorageRead,
                5 => LatencyKind::StorageRegex,
                6 => LatencyKind::StorageWrite,
                _ => LatencyKind::StorageTotal,
            };
            let h = perf.histogram(kind);
            *slot = LatencyStat {
                mean_ns: h.mean(),
                p99_ns: h.percentile(0.99),
                count: h.count(),
            };
        }
        out
    }
}

/// One device's slice of a monitoring interval.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DeviceSample {
    /// Device id.
    pub id: DeviceId,
    /// NIC or NVMe.
    pub class: DeviceClass,
    /// DCA state of the device's port during the interval.
    pub dca_enabled: bool,
    /// Bytes DMA-written by the device (PCIe write throughput in PCM).
    pub dma_write_bytes: u64,
    /// Subset of writes that bypassed the LLC (DCA off).
    pub dma_to_memory_bytes: u64,
    /// Bytes DMA-read by the device (egress).
    pub dma_read_bytes: u64,
    /// Leaked fraction of the device's DCA allocations this interval.
    pub dca_leak_rate: f64,
    /// For NICs: packets dropped at full rings this interval.
    pub dropped_packets: u64,
    /// For NICs: packets delivered this interval.
    pub delivered_packets: u64,
}

/// One UPI link's slice of a monitoring interval: the traffic that
/// crossed between sockets `a` and `b`, attributed to that specific
/// pair's link (not aliased into a fabric-wide aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpiLinkSample {
    /// Lower socket of the pair.
    pub a: u8,
    /// Higher socket of the pair.
    pub b: u8,
    /// Bytes pulled across the link toward requesters this interval.
    pub read_bytes: u64,
    /// Bytes pushed across the link to the remote home this interval.
    pub write_bytes: u64,
}

/// A full monitoring interval: what A4 sees once per (logical) second.
///
/// # Examples
///
/// ```
/// use a4_sim::{System, SystemConfig};
///
/// let mut sys = System::new(SystemConfig::small_test());
/// sys.run_logical_seconds(1);
/// let sample = sys.sample();
/// assert_eq!(sample.logical_second, 1);
/// assert!(sample.workloads.is_empty(), "nothing registered yet");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorSample {
    /// Simulated time at the end of the interval.
    pub t: SimTime,
    /// Count of logical seconds elapsed since simulation start.
    pub logical_second: u64,
    /// Per-workload slices (active workloads only).
    pub workloads: Vec<WorkloadSample>,
    /// Per-device slices.
    pub devices: Vec<DeviceSample>,
    /// Per-UPI-link slices. Only links that moved bytes this interval
    /// appear, so the list is empty whenever nothing crossed a socket —
    /// including on every single-socket system.
    #[serde(default)]
    pub upi: Vec<UpiLinkSample>,
    /// Memory bytes read during the interval.
    pub mem_read: Bytes,
    /// Memory bytes written during the interval.
    pub mem_written: Bytes,
    /// Display scale: multiply interval bytes by this to get
    /// paper-comparable per-real-second bandwidth (see `SystemConfig`).
    pub time_dilation: f64,
    /// Interval length.
    pub interval: SimTime,
}

impl MonitorSample {
    /// Finds a workload sample by id.
    pub fn workload(&self, id: WorkloadId) -> Option<&WorkloadSample> {
        self.workloads.iter().find(|w| w.id == id)
    }

    /// Finds a device sample by id.
    pub fn device(&self, id: DeviceId) -> Option<&DeviceSample> {
        self.devices.iter().find(|d| d.id == id)
    }

    /// Finds a UPI link sample by socket pair (order-insensitive);
    /// `None` when the pair moved no bytes this interval.
    pub fn upi_link(&self, a: usize, b: usize) -> Option<&UpiLinkSample> {
        let (lo, hi) = (a.min(b) as u8, a.max(b) as u8);
        self.upi.iter().find(|l| l.a == lo && l.b == hi)
    }

    /// One link's read bandwidth in paper-comparable GB/s (zero for
    /// idle or absent links).
    pub fn upi_link_read_gbps(&self, a: usize, b: usize) -> f64 {
        self.dilated_gbps(self.upi_link(a, b).map_or(0, |l| l.read_bytes))
    }

    /// One link's write bandwidth in paper-comparable GB/s.
    pub fn upi_link_write_gbps(&self, a: usize, b: usize) -> f64 {
        self.dilated_gbps(self.upi_link(a, b).map_or(0, |l| l.write_bytes))
    }

    /// Memory read bandwidth in paper-comparable GB/s (dilated).
    pub fn mem_read_gbps(&self) -> f64 {
        self.dilated_gbps(self.mem_read.as_u64())
    }

    /// Memory write bandwidth in paper-comparable GB/s (dilated).
    pub fn mem_write_gbps(&self) -> f64 {
        self.dilated_gbps(self.mem_written.as_u64())
    }

    /// Converts interval bytes to GB/s. Device and memory rates are
    /// physical (only *capacities* are scaled), so interval bytes divided
    /// by simulated interval length is already paper-comparable;
    /// `time_dilation` documents how much real operation one logical
    /// second stands for and needs no further arithmetic here.
    pub fn dilated_gbps(&self, bytes: u64) -> f64 {
        let secs = self.interval.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        bytes as f64 / secs / 1e9
    }

    /// Fraction of all DMA-write (PCIe write) bytes contributed by
    /// storage-class devices — the T3 (`DMALK_IO_TP_THR`) input.
    pub fn storage_io_write_fraction(&self) -> f64 {
        let total: u64 = self.devices.iter().map(|d| d.dma_write_bytes).sum();
        if total == 0 {
            return 0.0;
        }
        let storage: u64 = self
            .devices
            .iter()
            .filter(|d| d.class == DeviceClass::Nvme)
            .map(|d| d.dma_write_bytes)
            .sum();
        storage as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_with_devices(devs: Vec<DeviceSample>) -> MonitorSample {
        MonitorSample {
            t: SimTime::from_millis(1),
            logical_second: 1,
            workloads: vec![],
            devices: devs,
            upi: vec![],
            mem_read: Bytes::new(1_000_000),
            mem_written: Bytes::new(500_000),
            time_dilation: 1000.0,
            interval: SimTime::from_millis(1),
        }
    }

    fn dev(id: u8, class: DeviceClass, writes: u64) -> DeviceSample {
        DeviceSample {
            id: DeviceId(id),
            class,
            dca_enabled: true,
            dma_write_bytes: writes,
            dma_to_memory_bytes: 0,
            dma_read_bytes: 0,
            dca_leak_rate: 0.0,
            dropped_packets: 0,
            delivered_packets: 0,
        }
    }

    #[test]
    fn bandwidth_dilation() {
        let s = sample_with_devices(vec![]);
        // 1 MB over 1 ms = 1 GB/s raw; dilation cancels in the display
        // formula, so this is simply bytes/interval_seconds/1e9.
        assert!((s.mem_read_gbps() - 1.0).abs() < 1e-9);
        assert!((s.mem_write_gbps() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn storage_fraction() {
        let s = sample_with_devices(vec![
            dev(0, DeviceClass::Nic, 300),
            dev(1, DeviceClass::Nvme, 700),
        ]);
        assert!((s.storage_io_write_fraction() - 0.7).abs() < 1e-9);
        let empty = sample_with_devices(vec![]);
        assert_eq!(empty.storage_io_write_fraction(), 0.0);
    }

    #[test]
    fn lookup_by_id() {
        let s = sample_with_devices(vec![dev(3, DeviceClass::Nic, 1)]);
        assert!(s.device(DeviceId(3)).is_some());
        assert!(s.device(DeviceId(9)).is_none());
        assert!(s.workload(WorkloadId(0)).is_none());
    }
}
