//! Full-system simulator for the A4 reproduction.
//!
//! Wires the substrates together into the paper's server (Table 1):
//! cores with private MLCs, the shared non-inclusive LLC with its
//! inclusive directory, the DRAM controller, and PCIe devices behind the
//! root complex with per-port DCA control.
//!
//! # Execution model
//!
//! Time advances in fixed **quanta** (default 10 µs). Each quantum:
//!
//! 1. every attached device DMAs at its offered rate (NIC packets into Rx
//!    rings, NVMe blocks into host buffers), honouring its port's DCA
//!    state;
//! 2. every workload runs on each of its cores with a **cycle budget**
//!    (`cpu_freq × quantum`); memory accesses consume cycles according to
//!    where they hit (MLC / LLC / memory, the latter inflated by the DRAM
//!    utilization of the previous quantum), so cache contention slows
//!    consumption, queues build, and latency/throughput respond exactly as
//!    on real hardware;
//! 3. the memory controller closes its interval and refreshes the loaded
//!    latency factor.
//!
//! A **logical second** is a configurable number of quanta (default 100 =
//! 1 ms of simulated time); the A4 controller's 1 s monitoring cadence
//! operates on logical seconds. See DESIGN.md §1 for the scaling argument.
//!
//! # Examples
//!
//! ```
//! use a4_sim::{System, SystemConfig};
//!
//! let mut sys = System::new(SystemConfig::small_test());
//! sys.run_quanta(10);
//! assert!(sys.now().as_micros() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod ctx;
mod device;
mod perf;
mod sample;
mod system;
mod workload;

pub use config::{LatencyModel, SystemConfig};
pub use ctx::CoreCtx;
pub use device::{DeviceModel, DeviceState};
pub use perf::{LatencyKind, WorkloadPerf};
pub use sample::{DeviceSample, LatencyStat, MonitorSample, UpiLinkSample, WorkloadSample};
pub use system::{SlotState, System, SystemState, SYSTEM_CKPT_VERSION};
pub use workload::{Workload, WorkloadInfo};

pub use a4_cache::CoreAccessLevel;
