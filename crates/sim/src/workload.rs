//! The workload trait implemented by the generators in `a4-workloads`.

use crate::ctx::CoreCtx;
use a4_model::{DeviceId, WorkloadKind};

/// Static facts about a workload, reported at registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadInfo {
    /// Human-readable name ("DPDK-T", "X-Mem 1", "FFSB-H", ...).
    pub name: String,
    /// Traffic class, which determines contention participation.
    pub kind: WorkloadKind,
    /// The PCIe device the workload drives, if any.
    pub device: Option<DeviceId>,
}

/// A runnable workload.
///
/// The system calls [`Workload::step`] once per core per quantum with a
/// cycle-budgeted [`CoreCtx`]. Implementations loop until the budget runs
/// out (or no work is available), issuing memory accesses, device
/// operations and compute through the context so every cycle and cache
/// event is accounted.
///
/// # Examples
///
/// ```
/// use a4_model::{LineAddr, WorkloadKind};
/// use a4_sim::{CoreCtx, Workload, WorkloadInfo};
///
/// /// Touches one line over and over.
/// #[derive(Debug)]
/// struct OneLine;
///
/// impl Workload for OneLine {
///     fn info(&self) -> WorkloadInfo {
///         WorkloadInfo { name: "one-line".into(), kind: WorkloadKind::NonIo, device: None }
///     }
///     fn step(&mut self, ctx: &mut CoreCtx<'_>) {
///         while ctx.has_budget() {
///             ctx.read(LineAddr(0));
///         }
///     }
/// }
/// ```
pub trait Workload: std::fmt::Debug + Send {
    /// Registration facts.
    fn info(&self) -> WorkloadInfo;

    /// Runs on one core for one quantum.
    fn step(&mut self, ctx: &mut CoreCtx<'_>);

    /// Notifies the workload of a phase flip (used by phase-change
    /// experiments); default is a no-op.
    fn set_phase(&mut self, _phase: usize) {}

    /// Serializes the engine's mutable state for a checkpoint, as a flat
    /// word vector (each engine defines its own encoding). Stateless
    /// engines return the default empty vector.
    fn ckpt_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores a [`Workload::ckpt_state`] snapshot. Returns `false` if
    /// the encoding is not recognized (corrupt or mismatched checkpoint).
    /// The stateless default accepts only the empty encoding.
    fn restore_ckpt(&mut self, state: &[u64]) -> bool {
        state.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Nop;
    impl Workload for Nop {
        fn info(&self) -> WorkloadInfo {
            WorkloadInfo {
                name: "nop".into(),
                kind: WorkloadKind::NonIo,
                device: None,
            }
        }
        fn step(&mut self, _ctx: &mut CoreCtx<'_>) {}
    }

    #[test]
    fn trait_is_object_safe() {
        let mut wl: Box<dyn Workload> = Box::new(Nop);
        assert_eq!(wl.info().kind, WorkloadKind::NonIo);
        wl.set_phase(1); // default no-op
    }
}
