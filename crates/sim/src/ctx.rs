//! The cycle-budgeted execution context handed to workloads.

use crate::config::LatencyModel;
use crate::device::DeviceModel;
use crate::perf::{LatencyKind, WorkloadPerf};
use a4_cache::{CacheHierarchy, CoreAccessLevel, DmaRouter, RemoteCache, UpiFabric};
use a4_model::{CoreId, DeviceId, LineAddr, SimTime, WorkloadId};
use a4_pcie::{NicModel, NvmeModel};
use rand::rngs::SmallRng;
use rand::Rng;

/// Execution context for one `(workload, core, quantum)` step.
///
/// Every memory access and compute block consumes cycles from the
/// quantum's budget; memory-level costs come from the [`LatencyModel`]
/// with DRAM inflated by the previous quantum's utilization. Workloads
/// therefore automatically slow down when their lines get evicted — the
/// feedback loop all the paper's contention figures rest on.
///
/// On multi-socket systems every access is routed to the home socket of
/// its address: local accesses run exactly the single-socket path on the
/// core's own hierarchy, while accesses to a buffer homed on another
/// socket are served by the remote hierarchy's LLC (never this core's
/// MLC) and pay the socket pair's UPI cost per line — hop count × hop
/// latency × the pair link's current queueing factor, plus the line's
/// serialization time on capacity-limited links. Non-I/O remote reads
/// may instead be served by the socket's small requester-side
/// [`RemoteCache`], which costs one local LLC hit and crosses nothing.
pub struct CoreCtx<'a> {
    pub(crate) core: CoreId,
    pub(crate) core_slot: usize,
    pub(crate) wl: WorkloadId,
    pub(crate) now: SimTime,
    pub(crate) budget: f64,
    pub(crate) used: f64,
    /// One hierarchy per socket; `socks[socket]` is the core's own.
    pub(crate) socks: &'a mut [CacheHierarchy],
    /// The core's socket index.
    pub(crate) socket: usize,
    /// The core's socket-local id (what its hierarchy indexes MLCs by).
    pub(crate) core_local: CoreId,
    pub(crate) devices: &'a mut [DeviceModel],
    /// `device_sockets[i]` = socket `devices[i]` is attached to.
    pub(crate) device_sockets: &'a [usize],
    pub(crate) upi: &'a mut UpiFabric,
    /// This socket's remote-requester cache.
    pub(crate) rcache: &'a mut RemoteCache,
    /// One unloaded UPI hop in core cycles (precomputed from the config).
    pub(crate) upi_cycles: f64,
    /// Core frequency in GHz (converts link serialization ns to cycles).
    pub(crate) cpu_ghz: f64,
    pub(crate) perf: &'a mut WorkloadPerf,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) lat: LatencyModel,
    pub(crate) mem_factor: f64,
    pub(crate) ns_per_cycle: f64,
}

impl<'a> CoreCtx<'a> {
    /// The physical core this step runs on (global id).
    #[inline]
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Index of this core within the workload's core list (0-based). A
    /// 4-core DPDK instance uses this to pick "its" Rx ring.
    #[inline]
    pub fn core_slot(&self) -> usize {
        self.core_slot
    }

    /// The workload id the step is accounted to.
    #[inline]
    pub fn workload(&self) -> WorkloadId {
        self.wl
    }

    /// True while cycles remain in this quantum.
    #[inline]
    pub fn has_budget(&self) -> bool {
        self.used < self.budget
    }

    /// Cycles remaining in this quantum.
    #[inline]
    pub fn remaining_cycles(&self) -> f64 {
        (self.budget - self.used).max(0.0)
    }

    /// Quantum start time.
    #[inline]
    pub fn quantum_start(&self) -> SimTime {
        self.now
    }

    /// Current time within the quantum (start + consumed cycles).
    pub fn now(&self) -> SimTime {
        self.now + SimTime::from_nanos((self.used * self.ns_per_cycle) as u64)
    }

    /// Converts cycles to nanoseconds at the core frequency.
    #[inline]
    pub fn cycles_to_ns(&self, cycles: f64) -> u64 {
        (cycles * self.ns_per_cycle) as u64
    }

    fn level_cost(&self, level: CoreAccessLevel) -> f64 {
        match level {
            CoreAccessLevel::MlcHit => self.lat.mlc_cycles,
            CoreAccessLevel::LlcHit => self.lat.llc_cycles,
            CoreAccessLevel::Memory => self.lat.mem_cycles * self.mem_factor,
        }
    }

    /// Home socket of `addr`, clamped into the configured socket count.
    #[inline]
    fn home(&self, addr: LineAddr) -> usize {
        addr.home_socket().min(self.socks.len() - 1)
    }

    /// Extra cycles for one line crossing between this core's socket and
    /// `home`, at the pair link's current load:
    /// `hops × hop_cycles × queue_factor + serialization`. On an
    /// unthrottled mesh this is exactly `upi_cycles` — the historical
    /// fixed-hop cost, bit for bit.
    #[inline]
    fn hop_cycles(&self, home: usize, write: bool) -> f64 {
        let link = self.upi.link(self.socket, home);
        self.upi.hops(self.socket, home) as f64 * (self.upi_cycles * link.factor(write))
            + link.ser_ns() * self.cpu_ghz
    }

    /// One scalar access, routed to the home socket. Remote accesses pay
    /// the socket pair's UPI cost on top of the level cost and move a
    /// line across the pair's link — unless a non-I/O read is served by
    /// the requester cache, which costs a local LLC hit and crosses
    /// nothing.
    fn access(&mut self, addr: LineAddr, write: bool, io_hint: bool) -> (CoreAccessLevel, f64) {
        let home = self.home(addr);
        let (level, cost) = if home == self.socket {
            let hier = &mut self.socks[home];
            let level = if write {
                hier.core_write(self.core_local, addr, self.wl)
            } else if io_hint {
                hier.core_read_io(self.core_local, addr, self.wl)
            } else {
                hier.core_read(self.core_local, addr, self.wl)
            };
            (level, self.level_cost(level))
        } else if !write && !io_hint && self.rcache.lookup(addr) {
            // Requester-cache hit: the line is already on this side of
            // the fabric. The home hierarchy never sees the access.
            (CoreAccessLevel::LlcHit, self.lat.llc_cycles)
        } else {
            let hop = self.hop_cycles(home, write);
            let level = if write {
                self.rcache.invalidate(addr);
                self.upi.record_write_lines(self.socket, home, 1);
                self.socks[home].remote_write(addr, self.wl)
            } else {
                self.upi.record_read_lines(self.socket, home, 1);
                let level = self.socks[home].remote_read(addr, self.wl);
                if !io_hint {
                    self.rcache.insert(addr);
                }
                level
            };
            (level, self.level_cost(level) + hop)
        };
        self.used += cost;
        self.perf.add_instructions(1);
        (level, cost)
    }

    /// Loads one line; returns where it was served from and the cycle
    /// cost charged.
    pub fn read(&mut self, addr: LineAddr) -> (CoreAccessLevel, f64) {
        self.access(addr, false, false)
    }

    /// Loads one line of an I/O buffer (keeps I/O attribution for lines
    /// refetched after a DMA leak).
    pub fn read_io(&mut self, addr: LineAddr) -> (CoreAccessLevel, f64) {
        self.access(addr, false, true)
    }

    /// Stores one line.
    pub fn write(&mut self, addr: LineAddr) -> (CoreAccessLevel, f64) {
        self.access(addr, true, false)
    }

    /// Batched streaming loads of up to `len` consecutive lines from
    /// `base`, stopping when the quantum budget runs out (the X-Mem-style
    /// stream loop). Per processed line this charges exactly what a
    /// `read(); compute(per_line_cycles, per_line_instructions)` pair
    /// would — budget is checked *before* each line, cycle costs fold
    /// into the budget in the same order — but the stats rows, CLOS mask
    /// and level costs are resolved once per run and the instruction/op
    /// counters flush once. Returns the number of lines processed.
    pub fn read_run(
        &mut self,
        base: LineAddr,
        len: u64,
        per_line_cycles: f64,
        per_line_instructions: u64,
        ops_per_line: u64,
    ) -> u64 {
        self.stream_run(
            base,
            len,
            false,
            per_line_cycles,
            per_line_instructions,
            ops_per_line,
        )
    }

    /// Batched streaming stores — [`CoreCtx::read_run`] for writes.
    pub fn write_run(
        &mut self,
        base: LineAddr,
        len: u64,
        per_line_cycles: f64,
        per_line_instructions: u64,
        ops_per_line: u64,
    ) -> u64 {
        self.stream_run(
            base,
            len,
            true,
            per_line_cycles,
            per_line_instructions,
            ops_per_line,
        )
    }

    fn stream_run(
        &mut self,
        base: LineAddr,
        len: u64,
        write: bool,
        per_line_cycles: f64,
        per_line_instructions: u64,
        ops_per_line: u64,
    ) -> u64 {
        let home = self.home(base);
        let done = if home == self.socket {
            let (mlc_c, llc_c, mem_c) = self.level_costs();
            let hier = &mut self.socks[home];
            let mut run = hier.begin_core_run(self.core_local, base, len, self.wl, write, false);
            let mut used = self.used;
            let mut done = 0;
            while done < len && used < self.budget {
                let cost = match run.next(hier) {
                    CoreAccessLevel::MlcHit => mlc_c,
                    CoreAccessLevel::LlcHit => llc_c,
                    CoreAccessLevel::Memory => mem_c,
                };
                used += cost;
                used += per_line_cycles;
                done += 1;
            }
            run.finish(hier);
            self.used = used;
            done
        } else {
            self.remote_stream_run(home, base, len, write, per_line_cycles)
        };
        self.perf
            .add_instructions((1 + per_line_instructions) * done);
        if ops_per_line != 0 {
            self.perf.add_ops(ops_per_line * done);
        }
        done
    }

    /// The cross-socket arm of [`CoreCtx::stream_run`]: same budget
    /// discipline, but every line is served through the home socket's
    /// remote path and pays the socket pair's UPI cost — except lines the
    /// requester cache holds, which cost a local LLC hit and never cross.
    /// The pair's queueing factor is resolved once per run (it only moves
    /// at interval boundaries, never mid-quantum).
    fn remote_stream_run(
        &mut self,
        home: usize,
        base: LineAddr,
        len: u64,
        write: bool,
        per_line_cycles: f64,
    ) -> u64 {
        let (_, llc_c, mem_c) = self.level_costs();
        let hop = self.hop_cycles(home, write);
        let mut used = self.used;
        let mut done = 0;
        if write {
            let per_line = mem_c + hop + per_line_cycles;
            while done < len && used < self.budget {
                let addr = base.offset(done);
                self.rcache.invalidate(addr);
                self.socks[home].remote_write(addr, self.wl);
                used += per_line;
                done += 1;
            }
            self.upi.record_write_lines(self.socket, home, done);
        } else {
            let mut crossed = 0;
            while done < len && used < self.budget {
                let addr = base.offset(done);
                if self.rcache.lookup(addr) {
                    used += llc_c;
                } else {
                    let cost = match self.socks[home].remote_read(addr, self.wl) {
                        CoreAccessLevel::MlcHit | CoreAccessLevel::LlcHit => llc_c,
                        CoreAccessLevel::Memory => mem_c,
                    };
                    self.rcache.insert(addr);
                    used += cost + hop;
                    crossed += 1;
                }
                used += per_line_cycles;
                done += 1;
            }
            self.upi.record_read_lines(self.socket, home, crossed);
        }
        self.used = used;
        done
    }

    /// Batched I/O-buffer loads of the full run `[base, base + len)`
    /// (packet payload walks, block consumption): budget is charged per
    /// line but never stops the run, matching the scalar consumption
    /// loops. Per line this charges exactly what a `read_io();
    /// compute(per_line_cycles, ..)` pair would and folds
    /// `cost + per_line_cycles` into `acc` in line order (so latency can
    /// be recorded once per run from the folded total). Remote runs add
    /// the socket pair's per-line UPI cost to both the budget and `acc`,
    /// and always bypass the requester cache.
    pub fn read_io_run(
        &mut self,
        base: LineAddr,
        len: u64,
        per_line_cycles: f64,
        per_line_instructions: u64,
        acc: &mut f64,
    ) {
        let home = self.home(base);
        if home == self.socket {
            let (mlc_c, llc_c, mem_c) = self.level_costs();
            let hier = &mut self.socks[home];
            let mut run = hier.begin_core_run(self.core_local, base, len, self.wl, false, true);
            let mut used = self.used;
            for _ in 0..len {
                let cost = match run.next(hier) {
                    CoreAccessLevel::MlcHit => mlc_c,
                    CoreAccessLevel::LlcHit => llc_c,
                    CoreAccessLevel::Memory => mem_c,
                };
                used += cost;
                *acc += cost + per_line_cycles;
                used += per_line_cycles;
            }
            run.finish(hier);
            self.used = used;
        } else {
            // I/O-buffer reads bypass the requester cache entirely: the
            // producing device rewrites these lines between consumptions,
            // so a requester-side copy would be stale by construction.
            let (_, llc_c, mem_c) = self.level_costs();
            let hop = self.hop_cycles(home, false);
            let hier = &mut self.socks[home];
            let mut run = hier.begin_remote_run(base, self.wl);
            let mut used = self.used;
            for _ in 0..len {
                let cost = match run.next(hier) {
                    CoreAccessLevel::MlcHit | CoreAccessLevel::LlcHit => llc_c,
                    CoreAccessLevel::Memory => mem_c,
                } + hop;
                used += cost;
                *acc += cost + per_line_cycles;
                used += per_line_cycles;
            }
            run.finish(hier);
            self.used = used;
            self.upi.record_read_lines(self.socket, home, len);
        }
        self.perf
            .add_instructions((1 + per_line_instructions) * len);
    }

    /// The three level costs with the DRAM load factor folded in,
    /// resolved once per run (bitwise the same product
    /// [`CoreCtx::read`] computes per access).
    #[inline]
    fn level_costs(&self) -> (f64, f64, f64) {
        (
            self.lat.mlc_cycles,
            self.lat.llc_cycles,
            self.lat.mem_cycles * self.mem_factor,
        )
    }

    /// Spends pure-compute cycles retiring `instructions`.
    pub fn compute(&mut self, cycles: f64, instructions: u64) {
        self.used += cycles;
        self.perf.add_instructions(instructions);
    }

    /// Records one latency sample for this workload.
    pub fn record_latency(&mut self, kind: LatencyKind, ns: u64) {
        self.perf.record_latency(kind, ns);
    }

    /// Accounts one completed high-level operation (packet, block, ...).
    pub fn add_ops(&mut self, n: u64) {
        self.perf.add_ops(n);
    }

    /// Accounts I/O payload bytes.
    pub fn add_io_bytes(&mut self, n: u64) {
        self.perf.add_io_bytes(n);
    }

    /// Uniform random value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn rng_range(&mut self, n: u64) -> u64 {
        self.rng.gen_range(0..n)
    }

    /// Random `f64` in `[0, 1)`.
    pub fn rng_f64(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Mutable access to a NIC device.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is not an attached NIC.
    pub fn nic_mut(&mut self, dev: DeviceId) -> &mut NicModel {
        // Device ids are attach-order indices, so the lookup is direct.
        self.devices
            .get_mut(dev.index())
            .filter(|d| d.device() == dev)
            .and_then(|d| d.as_nic_mut())
            .expect("device is an attached NIC")
    }

    /// Mutable access to an NVMe device.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is not an attached NVMe device.
    pub fn nvme_mut(&mut self, dev: DeviceId) -> &mut NvmeModel {
        self.devices
            .get_mut(dev.index())
            .filter(|d| d.device() == dev)
            .and_then(|d| d.as_nvme_mut())
            .expect("device is an attached NVMe device")
    }

    /// Transmits a packet on a NIC (egress DMA read of `lines` lines from
    /// `addr`), charging a small per-packet doorbell cost. The DMA run is
    /// routed through the NIC's own socket.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is not an attached NIC.
    pub fn nic_tx(&mut self, dev: DeviceId, addr: LineAddr, lines: u64) {
        // Device ids are attach-order indices; index positionally to
        // keep the hierarchy borrows free (same guarded pattern as
        // `nic_mut`).
        let dev_socket = self.device_sockets.get(dev.index()).copied().unwrap_or(0);
        let nic = self
            .devices
            .get_mut(dev.index())
            .filter(|d| d.device() == dev)
            .and_then(|d| d.as_nic_mut())
            .expect("device is an attached NIC");
        let mut port = DmaRouter::new(&mut *self.socks, dev_socket, &mut *self.upi);
        nic.tx_packet(&mut port, addr, lines);
        self.used += 30.0; // doorbell + descriptor write
        self.perf.add_instructions(10);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_cache::{HierarchyConfig, UpiTopology};
    use a4_model::SOCKET_SHIFT;
    use a4_pcie::{NicConfig, NvmeConfig};
    use rand::SeedableRng;

    fn fixture<'a>(
        socks: &'a mut [CacheHierarchy],
        devices: &'a mut [DeviceModel],
        perf: &'a mut WorkloadPerf,
        rng: &'a mut SmallRng,
        upi: &'a mut UpiFabric,
        rcache: &'a mut RemoteCache,
    ) -> CoreCtx<'a> {
        // Lifetime gymnastics: build the ctx from the caller's borrows.
        CoreCtx {
            core: CoreId(0),
            core_slot: 0,
            wl: WorkloadId(0),
            now: SimTime::from_micros(5),
            budget: 1_000.0,
            used: 0.0,
            socks,
            socket: 0,
            core_local: CoreId(0),
            devices,
            device_sockets: &[0, 0],
            upi,
            rcache,
            upi_cycles: 184.0, // 80 ns at 2.3 GHz
            cpu_ghz: 2.0,      // matches ns_per_cycle below
            perf,
            rng,
            lat: LatencyModel::default(),
            mem_factor: 1.0,
            ns_per_cycle: 0.5,
        }
    }

    fn socks(n: usize) -> Vec<CacheHierarchy> {
        (0..n)
            .map(|_| CacheHierarchy::new(HierarchyConfig::small_test()))
            .collect()
    }

    #[test]
    fn access_costs_depend_on_level() {
        let mut socks = socks(1);
        let mut perf = WorkloadPerf::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut upi = UpiFabric::default();
        let mut rc = RemoteCache::new(0);
        let mut devices = [];
        let mut ctx = fixture(
            &mut socks,
            &mut devices,
            &mut perf,
            &mut rng,
            &mut upi,
            &mut rc,
        );

        let (level, cost) = ctx.read(LineAddr(1));
        assert_eq!(level, CoreAccessLevel::Memory);
        assert_eq!(cost, 60.0);
        let (level, cost) = ctx.read(LineAddr(1));
        assert_eq!(level, CoreAccessLevel::MlcHit);
        assert_eq!(cost, 4.0);
        assert_eq!(perf.instructions(), 2);
    }

    #[test]
    fn remote_accesses_pay_the_upi_hop_and_never_mlc_hit() {
        let mut socks = socks(2);
        let mut perf = WorkloadPerf::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut upi = UpiFabric::new(2, 80, None, UpiTopology::Mesh);
        let mut rc = RemoteCache::new(0);
        let mut devices = [];
        let remote = LineAddr(1 << SOCKET_SHIFT).offset(9);
        let mut ctx = fixture(
            &mut socks,
            &mut devices,
            &mut perf,
            &mut rng,
            &mut upi,
            &mut rc,
        );

        let (level, cost) = ctx.read(remote);
        assert_eq!(level, CoreAccessLevel::Memory);
        assert_eq!(cost, 60.0 + 184.0);
        // The repeat still crosses the link and cannot hit an MLC: the
        // remote socket holds no residency for this core.
        let (level, cost) = ctx.read(remote);
        assert_eq!(
            level,
            CoreAccessLevel::Memory,
            "remote reads do not allocate"
        );
        assert_eq!(cost, 60.0 + 184.0);
        let _ = ctx;
        assert_eq!(upi.crossed_lines(), 2);
        // The access was accounted in the *home* hierarchy's stats.
        assert_eq!(socks[1].stats().workload(WorkloadId(0)).llc_misses, 2);
        assert_eq!(socks[0].stats().workload(WorkloadId(0)).llc_misses, 0);
    }

    #[test]
    fn remote_read_hits_the_home_llc_after_dma() {
        let mut socks = socks(2);
        let mut perf = WorkloadPerf::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut upi = UpiFabric::new(2, 80, None, UpiTopology::Mesh);
        let mut rc = RemoteCache::new(0);
        let mut devices = [];
        let remote = LineAddr(1 << SOCKET_SHIFT).offset(0x40);
        // A device on socket 1 DCA-writes the line into socket 1's LLC.
        socks[1].dma_write(DeviceId(0), remote, WorkloadId(0), true);
        let mut ctx = fixture(
            &mut socks,
            &mut devices,
            &mut perf,
            &mut rng,
            &mut upi,
            &mut rc,
        );
        let (level, cost) = ctx.read_io(remote);
        assert_eq!(level, CoreAccessLevel::LlcHit);
        assert_eq!(cost, 14.0 + 184.0);
        let _ = ctx;
        assert_eq!(socks[1].stats().workload(WorkloadId(0)).dca_consumed, 1);
    }

    #[test]
    fn requester_cache_serves_repeat_remote_reads_locally() {
        let mut socks = socks(2);
        let mut perf = WorkloadPerf::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut upi = UpiFabric::new(2, 80, None, UpiTopology::Mesh);
        let mut rc = RemoteCache::new(8);
        let mut devices = [];
        let remote = LineAddr(1 << SOCKET_SHIFT).offset(3);
        let mut ctx = fixture(
            &mut socks,
            &mut devices,
            &mut perf,
            &mut rng,
            &mut upi,
            &mut rc,
        );

        let (level, cost) = ctx.read(remote);
        assert_eq!(level, CoreAccessLevel::Memory);
        assert_eq!(cost, 60.0 + 184.0);
        // The repeat is a requester-cache hit: one local LLC hit, no
        // crossing, and the home hierarchy never sees the access.
        let (level, cost) = ctx.read(remote);
        assert_eq!(level, CoreAccessLevel::LlcHit);
        assert_eq!(cost, 14.0);
        let _ = ctx;
        assert_eq!(upi.crossed_lines(), 1);
        assert_eq!(rc.hits(), 1);
        assert_eq!(socks[1].stats().workload(WorkloadId(0)).llc_misses, 1);
    }

    #[test]
    fn own_write_invalidates_the_requester_cache() {
        let mut socks = socks(2);
        let mut perf = WorkloadPerf::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut upi = UpiFabric::new(2, 80, None, UpiTopology::Mesh);
        let mut rc = RemoteCache::new(8);
        let mut devices = [];
        let remote = LineAddr(1 << SOCKET_SHIFT).offset(3);
        let mut ctx = fixture(
            &mut socks,
            &mut devices,
            &mut perf,
            &mut rng,
            &mut upi,
            &mut rc,
        );

        ctx.read(remote); // fill
        ctx.write(remote); // must invalidate and cross
        let (level, cost) = ctx.read(remote);
        assert_ne!(level, CoreAccessLevel::LlcHit, "copy was invalidated");
        assert_eq!(cost, 60.0 + 184.0);
        let _ = ctx;
        assert_eq!(upi.crossed_lines(), 3);
    }

    #[test]
    fn io_reads_bypass_the_requester_cache() {
        let mut socks = socks(2);
        let mut perf = WorkloadPerf::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut upi = UpiFabric::new(2, 80, None, UpiTopology::Mesh);
        let mut rc = RemoteCache::new(8);
        let mut devices = [];
        let remote = LineAddr(1 << SOCKET_SHIFT).offset(7);
        let mut ctx = fixture(
            &mut socks,
            &mut devices,
            &mut perf,
            &mut rng,
            &mut upi,
            &mut rc,
        );

        // I/O reads neither hit nor fill: the producing device rewrites
        // these lines between consumptions.
        ctx.read_io(remote);
        ctx.read_io(remote);
        let mut acc = 0.0;
        ctx.read_io_run(remote, 4, 0.0, 0, &mut acc);
        let _ = ctx;
        assert_eq!(upi.crossed_lines(), 6, "every I/O line crossed");
        assert_eq!(rc.hits() + rc.misses(), 0, "cache never consulted");
    }

    #[test]
    fn remote_stream_rereads_come_from_the_requester_cache() {
        let mut socks = socks(2);
        let mut perf = WorkloadPerf::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut upi = UpiFabric::new(2, 80, None, UpiTopology::Mesh);
        let mut rc = RemoteCache::new(64);
        let mut devices = [];
        let remote = LineAddr(1 << SOCKET_SHIFT);
        let mut ctx = fixture(
            &mut socks,
            &mut devices,
            &mut perf,
            &mut rng,
            &mut upi,
            &mut rc,
        );
        ctx.budget = 1e9;

        assert_eq!(ctx.read_run(remote, 16, 0.0, 0, 0), 16);
        let before = ctx.used;
        assert_eq!(ctx.read_run(remote, 16, 0.0, 0, 0), 16);
        let rerun = ctx.used - before;
        assert_eq!(rerun, 16.0 * 14.0, "second pass is all local LLC hits");
        let _ = ctx;
        assert_eq!(upi.crossed_lines(), 16, "only the first pass crossed");
    }

    #[test]
    fn budget_runs_out() {
        let mut socks = socks(1);
        let mut perf = WorkloadPerf::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut upi = UpiFabric::default();
        let mut rc = RemoteCache::new(0);
        let mut devices = [];
        let mut ctx = fixture(
            &mut socks,
            &mut devices,
            &mut perf,
            &mut rng,
            &mut upi,
            &mut rc,
        );
        assert!(ctx.has_budget());
        ctx.compute(999.0, 1);
        assert!(ctx.has_budget());
        ctx.compute(2.0, 1);
        assert!(!ctx.has_budget());
        assert_eq!(ctx.remaining_cycles(), 0.0);
    }

    #[test]
    fn now_advances_with_cycles() {
        let mut socks = socks(1);
        let mut perf = WorkloadPerf::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut upi = UpiFabric::default();
        let mut rc = RemoteCache::new(0);
        let mut devices = [];
        let mut ctx = fixture(
            &mut socks,
            &mut devices,
            &mut perf,
            &mut rng,
            &mut upi,
            &mut rc,
        );
        let t0 = ctx.now();
        ctx.compute(100.0, 0); // 100 cycles at 0.5 ns/cycle = 50 ns
        assert_eq!((ctx.now() - t0).as_nanos(), 50);
        assert_eq!(ctx.cycles_to_ns(100.0), 50);
    }

    #[test]
    fn device_accessors() {
        let mut socks = socks(1);
        let mut perf = WorkloadPerf::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut upi = UpiFabric::default();
        let mut rc = RemoteCache::new(0);
        let nic = NicModel::new(
            DeviceId(0),
            NicConfig::connectx6_100g(1, 8, 64),
            LineAddr(0x800),
        )
        .unwrap();
        let ssd = NvmeModel::new(DeviceId(1), NvmeConfig::raid0_980pro_x4()).unwrap();
        let mut devices = [DeviceModel::Nic(nic), DeviceModel::Nvme(ssd)];
        let mut ctx = fixture(
            &mut socks,
            &mut devices,
            &mut perf,
            &mut rng,
            &mut upi,
            &mut rc,
        );
        assert_eq!(ctx.nic_mut(DeviceId(0)).device(), DeviceId(0));
        assert_eq!(ctx.nvme_mut(DeviceId(1)).outstanding(), 0);
        ctx.nic_tx(DeviceId(0), LineAddr(5), 4);
        assert_eq!(ctx.nic_mut(DeviceId(0)).tx_lines(), 4);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut socks = socks(1);
        let mut perf = WorkloadPerf::new();
        let mut devices = [];
        let mut upi = UpiFabric::default();
        let mut rc = RemoteCache::new(0);
        let mut r1 = SmallRng::seed_from_u64(42);
        let a: Vec<u64> = {
            let mut ctx = fixture(
                &mut socks,
                &mut devices,
                &mut perf,
                &mut r1,
                &mut upi,
                &mut rc,
            );
            (0..5).map(|_| ctx.rng_range(1000)).collect()
        };
        let mut r2 = SmallRng::seed_from_u64(42);
        let b: Vec<u64> = {
            let mut ctx = fixture(
                &mut socks,
                &mut devices,
                &mut perf,
                &mut r2,
                &mut upi,
                &mut rc,
            );
            (0..5).map(|_| ctx.rng_range(1000)).collect()
        };
        assert_eq!(a, b);
    }
}
