//! Device wrapper enum used by the system.

use a4_cache::DmaRouter;
use a4_model::{DeviceId, SimTime, WorkloadId};
use a4_pcie::{NicModel, NicState, NvmeModel, NvmeState};
use serde::{Deserialize, Serialize};

/// A PCIe device attached to the system.
#[derive(Debug, Clone)]
pub enum DeviceModel {
    /// A network interface card.
    Nic(NicModel),
    /// An NVMe SSD (or RAID-0 array).
    Nvme(NvmeModel),
}

/// Serializable snapshot of one [`DeviceModel`]'s mutable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeviceState {
    /// NIC snapshot.
    Nic(NicState),
    /// NVMe snapshot.
    Nvme(NvmeState),
}

impl DeviceModel {
    /// The device id.
    pub fn device(&self) -> DeviceId {
        match self {
            DeviceModel::Nic(nic) => nic.device(),
            DeviceModel::Nvme(ssd) => ssd.device(),
        }
    }

    /// Runs the device for one quantum; DMA runs are routed to the
    /// owning socket's hierarchy by `port`.
    pub fn step(
        &mut self,
        now: SimTime,
        dt: SimTime,
        port: &mut DmaRouter<'_>,
        dca_enabled: bool,
        owner: WorkloadId,
    ) {
        match self {
            DeviceModel::Nic(nic) => nic.step(now, dt, port, dca_enabled, owner),
            DeviceModel::Nvme(ssd) => ssd.step(now, dt, port, dca_enabled, owner),
        }
    }

    /// Downcast to a NIC.
    pub fn as_nic(&self) -> Option<&NicModel> {
        match self {
            DeviceModel::Nic(nic) => Some(nic),
            DeviceModel::Nvme(_) => None,
        }
    }

    /// Mutable downcast to a NIC.
    pub fn as_nic_mut(&mut self) -> Option<&mut NicModel> {
        match self {
            DeviceModel::Nic(nic) => Some(nic),
            DeviceModel::Nvme(_) => None,
        }
    }

    /// Downcast to an NVMe device.
    pub fn as_nvme(&self) -> Option<&NvmeModel> {
        match self {
            DeviceModel::Nvme(ssd) => Some(ssd),
            DeviceModel::Nic(_) => None,
        }
    }

    /// Mutable downcast to an NVMe device.
    pub fn as_nvme_mut(&mut self) -> Option<&mut NvmeModel> {
        match self {
            DeviceModel::Nvme(ssd) => Some(ssd),
            DeviceModel::Nic(_) => None,
        }
    }

    /// Snapshots the device's mutable state for a checkpoint.
    pub fn save_state(&self) -> DeviceState {
        match self {
            DeviceModel::Nic(nic) => DeviceState::Nic(nic.save_state()),
            DeviceModel::Nvme(ssd) => DeviceState::Nvme(ssd.save_state()),
        }
    }

    /// Restores a [`DeviceModel::save_state`] snapshot. Returns `false`
    /// if the snapshot's device class or shape does not match.
    pub fn restore_state(&mut self, st: &DeviceState) -> bool {
        match (self, st) {
            (DeviceModel::Nic(nic), DeviceState::Nic(s)) => nic.restore_state(s),
            (DeviceModel::Nvme(ssd), DeviceState::Nvme(s)) => ssd.restore_state(s),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4_model::LineAddr;
    use a4_pcie::{NicConfig, NvmeConfig};

    #[test]
    fn downcasts() {
        let nic = DeviceModel::Nic(
            NicModel::new(
                DeviceId(0),
                NicConfig::connectx6_100g(1, 8, 64),
                LineAddr(0),
            )
            .unwrap(),
        );
        let ssd =
            DeviceModel::Nvme(NvmeModel::new(DeviceId(1), NvmeConfig::raid0_980pro_x4()).unwrap());
        assert!(nic.as_nic().is_some());
        assert!(nic.as_nvme().is_none());
        assert!(ssd.as_nvme().is_some());
        assert!(ssd.as_nic().is_none());
        assert_eq!(nic.device(), DeviceId(0));
        assert_eq!(ssd.device(), DeviceId(1));
    }
}
