//! The top-level simulated server.

use crate::config::SystemConfig;
use crate::ctx::CoreCtx;
use crate::device::{DeviceModel, DeviceState};
use crate::perf::WorkloadPerf;
use crate::sample::{DeviceSample, MonitorSample, UpiLinkSample, WorkloadSample};
use crate::workload::Workload;
use a4_cache::{
    CacheHierarchy, CacheHierarchyState, DmaRouter, HierarchyStats, RemoteCache, RemoteCacheState,
    UpiFabric, UpiLinkState, WorkloadCounters,
};
use a4_mem::{MemControllerState, MemoryController};
use a4_model::{
    A4Error, Bytes, ClosId, CoreId, DeviceClass, DeviceId, LineAddr, PortId, Priority, Result,
    SimTime, WayMask, WorkloadId,
};
use a4_pcie::{NicConfig, NicModel, NvmeConfig, NvmeModel, PcieRoot};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Version tag of the [`SystemState`] snapshot encoding. Bump whenever a
/// checkpointed struct gains, loses, or re-encodes a field; restore
/// rejects snapshots from any other version as stale.
pub const SYSTEM_CKPT_VERSION: u32 = 2;

#[derive(Debug)]
struct Slot {
    wl: Box<dyn Workload>,
    id: WorkloadId,
    // Shared so per-sample `WorkloadSample` construction is a refcount
    // bump, not a `String` allocation.
    name: Arc<str>,
    kind: a4_model::WorkloadKind,
    priority: Priority,
    cores: Vec<CoreId>,
    device: Option<DeviceId>,
    perf: WorkloadPerf,
    active: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct DevSnapshot {
    delivered: u64,
    dropped: u64,
}

/// The simulated server: substrates wired together, plus the monitoring
/// and control planes the A4 controller drives.
///
/// Multi-socket systems (`SystemConfig::sockets > 1`) keep one full
/// [`CacheHierarchy`] per socket — own MLC array, own LLC with its DCA
/// ways, own CLOS tables, own remote-requester cache — joined by a
/// [`UpiFabric`] (one link per socket pair) and sharing one memory
/// model. Core ids are global (`socket = core / cores_per_socket`);
/// buffers are homed on the socket they were allocated on
/// ([`System::alloc_lines_on`]); devices attach to a socket
/// ([`System::attach_nic_on`]) and their ring/DMA traffic is routed to
/// each buffer's home hierarchy, paying UPI when they differ. A
/// single-socket system runs bit-identically to the pre-NUMA model.
///
/// # Examples
///
/// ```
/// use a4_model::{ClosId, DeviceClass, PortId, WayMask};
/// use a4_pcie::NvmeConfig;
/// use a4_sim::{System, SystemConfig};
///
/// let mut sys = System::new(SystemConfig::small_test());
/// let ssd = sys.attach_nvme(PortId(0), NvmeConfig::raid0_980pro_x4())?;
/// sys.set_device_dca(ssd, false)?;                    // A4's F2 knob
/// assert!(!sys.dca_enabled(ssd));
/// sys.cat_set_mask(ClosId(1), WayMask::from_paper_range(7, 8)?)?; // LP Zone
/// sys.run_logical_seconds(1);
/// let sample = sys.sample();
/// assert_eq!(sample.devices.len(), 1);
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    // One hierarchy per socket; `socks[0]` is the only one on
    // single-socket systems.
    socks: Vec<CacheHierarchy>,
    upi: UpiFabric,
    // One remote-requester cache per socket, indexed by the *requesting*
    // socket (the cache sits on the consumer side of the fabric).
    rcaches: Vec<RemoteCache>,
    mem: MemoryController,
    root: PcieRoot,
    devices: Vec<DeviceModel>,
    // `device_sockets[i]` = socket `devices[i]` is attached to.
    device_sockets: Vec<usize>,
    slots: Vec<Slot>,
    now: SimTime,
    quantum_count: u64,
    rng: SmallRng,
    // One allocation cursor per socket (socket s allocates inside its own
    // address-space region, so a line's home socket is a pure function of
    // its address).
    alloc_cursors: Vec<u64>,
    // Per-quantum memory-traffic snapshots: only the aggregate counters
    // are needed to feed the (shared) memory model, so the snapshot is
    // one `Copy` struct per socket instead of full `HierarchyStats`
    // clones per quantum.
    quantum_totals: Vec<WorkloadCounters>,
    // Sampling-cadence snapshots, per-socket delta buffers and the
    // cross-socket merge buffer (the full per-workload tables are only
    // diffed once per monitoring interval).
    sample_snapshots: Vec<HierarchyStats>,
    sample_deltas: Vec<HierarchyStats>,
    sample_merged: HierarchyStats,
    // `device_owners[i]` = owner of `devices[i]`, rebuilt lazily when
    // workloads register or flip activity instead of rescanning all
    // slots for every device every quantum.
    device_owners: Vec<WorkloadId>,
    device_owners_stale: bool,
    dev_snapshots: Vec<DevSnapshot>,
    // Per-link cumulative `(read_lines, write_lines)` at the last sample,
    // in fabric link order — samples report per-link interval deltas.
    upi_snapshots: Vec<(u64, u64)>,
    interval_mem_read: Bytes,
    interval_mem_written: Bytes,
    interval_start: SimTime,
    logical_seconds: u64,
}

impl System {
    /// Builds an idle system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation (configurations are programmer
    /// input, not runtime data).
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate().expect("invalid system configuration");
        let socks: Vec<CacheHierarchy> = (0..cfg.sockets)
            .map(|_| CacheHierarchy::new(cfg.hierarchy))
            .collect();
        let links = cfg.sockets * (cfg.sockets - 1) / 2;
        System {
            mem: MemoryController::new(cfg.memory).expect("validated with cfg"),
            root: PcieRoot::new(cfg.pcie_ports),
            upi: UpiFabric::new(cfg.sockets, cfg.upi_ns, cfg.upi_gbps, cfg.upi_topology),
            rcaches: (0..cfg.sockets)
                .map(|_| RemoteCache::new(cfg.remote_cache_lines))
                .collect(),
            devices: Vec::new(),
            device_sockets: Vec::new(),
            slots: Vec::new(),
            now: SimTime::ZERO,
            quantum_count: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            // Leave the zero page of each region free so tests can use
            // low addresses.
            alloc_cursors: (0..cfg.sockets)
                .map(|s| LineAddr::socket_base(s).0 + (1 << 20))
                .collect(),
            quantum_totals: socks.iter().map(|h| h.stats().total).collect(),
            sample_snapshots: socks.iter().map(|h| h.stats().clone()).collect(),
            sample_deltas: (0..cfg.sockets).map(|_| HierarchyStats::new()).collect(),
            sample_merged: HierarchyStats::new(),
            device_owners: Vec::new(),
            device_owners_stale: false,
            dev_snapshots: Vec::new(),
            upi_snapshots: vec![(0, 0); links],
            socks,
            interval_mem_read: Bytes::ZERO,
            interval_mem_written: Bytes::ZERO,
            interval_start: SimTime::ZERO,
            logical_seconds: 0,
            cfg,
        }
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of sockets.
    #[inline]
    pub fn sockets(&self) -> usize {
        self.socks.len()
    }

    /// Socket 0's cache hierarchy (read-only) — the whole hierarchy on
    /// single-socket systems. See [`System::socket_hierarchy`] for the
    /// others.
    #[inline]
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.socks[0]
    }

    /// Mutable socket-0 hierarchy access (tests and ablations).
    #[inline]
    pub fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.socks[0]
    }

    /// One socket's cache hierarchy (read-only).
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    pub fn socket_hierarchy(&self, socket: usize) -> &CacheHierarchy {
        &self.socks[socket]
    }

    /// Mutable access to one socket's hierarchy (per-socket DCA-way
    /// tweaks and ablations).
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    pub fn socket_hierarchy_mut(&mut self, socket: usize) -> &mut CacheHierarchy {
        &mut self.socks[socket]
    }

    /// The UPI fabric (per-socket-pair links: hop latency, queueing
    /// state and cross-socket traffic counters).
    #[inline]
    pub fn upi(&self) -> &UpiFabric {
        &self.upi
    }

    /// One socket's remote-requester cache (read-only).
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    pub fn remote_cache(&self, socket: usize) -> &RemoteCache {
        &self.rcaches[socket]
    }

    /// The socket a core belongs to (`core / cores_per_socket`).
    #[inline]
    pub fn socket_of_core(&self, core: CoreId) -> usize {
        core.index() / self.cfg.hierarchy.cores
    }

    /// The memory controller.
    #[inline]
    pub fn memory(&self) -> &MemoryController {
        &self.mem
    }

    /// The PCIe root complex.
    #[inline]
    pub fn pcie(&self) -> &PcieRoot {
        &self.root
    }

    /// A probe of the system RNG's state: the next value it would draw,
    /// without disturbing it. Two systems whose probes agree after
    /// identical histories share the full generator state (xoshiro256++
    /// outputs determine the state trajectory for equal seeds).
    pub fn rng_probe(&self) -> u64 {
        self.rng.clone().next_u64()
    }

    /// Allocates `lines` fresh cache lines of address space for a buffer
    /// homed on socket 0.
    pub fn alloc_lines(&mut self, lines: u64) -> LineAddr {
        self.alloc_lines_on(0, lines)
    }

    /// Allocates `lines` fresh cache lines homed on `socket`: accesses
    /// from other sockets (and DMA from devices attached elsewhere) pay
    /// the UPI hop.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    pub fn alloc_lines_on(&mut self, socket: usize, lines: u64) -> LineAddr {
        let cursor = &mut self.alloc_cursors[socket];
        let base = *cursor;
        *cursor += lines;
        debug_assert!(
            LineAddr(*cursor).home_socket() == socket,
            "socket address region exhausted"
        );
        LineAddr(base)
    }

    /// Attaches a NIC to a root port on socket 0; ring buffers are
    /// allocated internally.
    ///
    /// # Errors
    ///
    /// Propagates invalid configuration and port-conflict errors.
    pub fn attach_nic(&mut self, port: PortId, config: NicConfig) -> Result<DeviceId> {
        self.attach_nic_on(0, port, config)
    }

    /// Attaches a NIC to a root port on `socket`. Its Rx rings live in
    /// that socket's address region, so DCA injection stays socket-local
    /// and consumers on other sockets cross the UPI link per line.
    ///
    /// # Errors
    ///
    /// Propagates invalid configuration and port-conflict errors; an
    /// out-of-range socket is an [`A4Error::InvalidConfig`].
    pub fn attach_nic_on(
        &mut self,
        socket: usize,
        port: PortId,
        config: NicConfig,
    ) -> Result<DeviceId> {
        self.check_socket(socket)?;
        config.validate()?;
        let id = DeviceId(self.devices.len() as u8);
        let span = config.rings as u64 * config.ring_entries as u64 * config.slot_lines();
        let base = self.alloc_lines_on(socket, span);
        let nic = NicModel::new(id, config, base)?;
        self.root.attach(port, id, DeviceClass::Nic)?;
        self.devices.push(DeviceModel::Nic(nic));
        self.device_sockets.push(socket);
        self.dev_snapshots.push(DevSnapshot::default());
        self.device_owners.push(WorkloadId::UNATTRIBUTED);
        self.device_owners_stale = true;
        Ok(id)
    }

    /// Attaches an NVMe device (or RAID-0 array) to a root port on
    /// socket 0.
    ///
    /// # Errors
    ///
    /// Propagates invalid configuration and port-conflict errors.
    pub fn attach_nvme(&mut self, port: PortId, config: NvmeConfig) -> Result<DeviceId> {
        self.attach_nvme_on(0, port, config)
    }

    /// Attaches an NVMe device to a root port on `socket`. DMA into
    /// buffers homed on other sockets crosses the UPI link and cannot
    /// DCA-inject (DDIO is socket-local).
    ///
    /// # Errors
    ///
    /// Propagates invalid configuration and port-conflict errors; an
    /// out-of-range socket is an [`A4Error::InvalidConfig`].
    pub fn attach_nvme_on(
        &mut self,
        socket: usize,
        port: PortId,
        config: NvmeConfig,
    ) -> Result<DeviceId> {
        self.check_socket(socket)?;
        config.validate()?;
        let id = DeviceId(self.devices.len() as u8);
        let ssd = NvmeModel::new(id, config)?;
        self.root.attach(port, id, DeviceClass::Nvme)?;
        self.devices.push(DeviceModel::Nvme(ssd));
        self.device_sockets.push(socket);
        self.dev_snapshots.push(DevSnapshot::default());
        self.device_owners.push(WorkloadId::UNATTRIBUTED);
        self.device_owners_stale = true;
        Ok(id)
    }

    fn check_socket(&self, socket: usize) -> Result<()> {
        if socket >= self.socks.len() {
            return Err(A4Error::InvalidConfig {
                what: "socket index outside the configured socket count",
            });
        }
        Ok(())
    }

    /// The socket a device is attached to.
    ///
    /// # Panics
    ///
    /// Panics for unknown device ids.
    pub fn device_socket(&self, dev: DeviceId) -> usize {
        self.device_sockets[dev.index()]
    }

    /// Registers a workload pinned to `cores` (global ids).
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidCore`] for out-of-range or already-pinned
    /// cores and [`A4Error::InvalidConfig`] for an empty core list.
    pub fn add_workload(
        &mut self,
        wl: Box<dyn Workload>,
        cores: Vec<CoreId>,
        priority: Priority,
    ) -> Result<WorkloadId> {
        if cores.is_empty() {
            return Err(A4Error::InvalidConfig {
                what: "workload needs at least one core",
            });
        }
        // Stat tables clamp out-of-range ids into their last row, which
        // is reserved for the `WorkloadId::UNATTRIBUTED` sentinel —
        // registration must stop short of it or a real workload would
        // share the overflow row's counters.
        if self.slots.len() >= a4_cache::MAX_WORKLOADS - 1 {
            return Err(A4Error::InvalidConfig {
                what: "workload table full (MAX_WORKLOADS - 1 registrations; \
                       the last stat row is the unattributed-DMA sentinel)",
            });
        }
        for &c in &cores {
            if c.index() >= self.cfg.total_cores() {
                return Err(A4Error::InvalidCore {
                    core: c.0,
                    max: self.cfg.total_cores() as u8,
                });
            }
            if self.slots.iter().any(|s| s.active && s.cores.contains(&c)) {
                return Err(A4Error::InvalidCore { core: c.0, max: 0 });
            }
        }
        let info = wl.info();
        // The MAX_WORKLOADS guard above keeps this in range today; the
        // checked conversion makes any future regression fail loudly
        // instead of silently wrapping ids past u16::MAX.
        let id = WorkloadId(
            u16::try_from(self.slots.len()).expect("slot index exceeds WorkloadId range"),
        );
        self.slots.push(Slot {
            wl,
            id,
            name: Arc::from(info.name),
            kind: info.kind,
            priority,
            cores,
            device: info.device,
            perf: WorkloadPerf::new(),
            active: true,
        });
        self.device_owners_stale = true;
        Ok(id)
    }

    /// Activates or deactivates a workload (launch / termination events
    /// for the controller's workload-change path).
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidDevice`] for unknown workload ids.
    pub fn set_workload_active(&mut self, id: WorkloadId, active: bool) -> Result<()> {
        let slot = self
            .slots
            .get_mut(id.index())
            .ok_or(A4Error::InvalidDevice { device: id.0 as u8 })?;
        slot.active = active;
        self.device_owners_stale = true;
        Ok(())
    }

    /// Flips a workload's phase (see [`Workload::set_phase`]).
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidDevice`] for unknown workload ids.
    pub fn set_workload_phase(&mut self, id: WorkloadId, phase: usize) -> Result<()> {
        let slot = self
            .slots
            .get_mut(id.index())
            .ok_or(A4Error::InvalidDevice { device: id.0 as u8 })?;
        slot.wl.set_phase(phase);
        Ok(())
    }

    /// Ids, names and static facts of all registered workloads.
    pub fn workload_ids(&self) -> Vec<WorkloadId> {
        self.slots.iter().map(|s| s.id).collect()
    }

    /// The cores a workload is pinned to.
    ///
    /// # Panics
    ///
    /// Panics for unknown ids.
    pub fn workload_cores(&self, id: WorkloadId) -> &[CoreId] {
        &self.slots[id.index()].cores
    }

    // ---- control plane (what A4 programs) --------------------------------

    /// Programs a CLOS capacity mask — mirrored to every socket's CLOS
    /// table, matching how systems software programs identical CAT MSRs
    /// on all sockets.
    ///
    /// # Errors
    ///
    /// Propagates CLOS-range and empty-mask errors.
    pub fn cat_set_mask(&mut self, clos: ClosId, mask: WayMask) -> Result<()> {
        for hier in &mut self.socks {
            hier.clos_mut().set_mask(clos, mask)?;
        }
        Ok(())
    }

    /// Moves every core of a workload into `clos` (each core in its own
    /// socket's CLOS table).
    ///
    /// # Errors
    ///
    /// Propagates core/CLOS range errors; unknown workloads are an
    /// [`A4Error::InvalidDevice`].
    pub fn cat_assign_workload(&mut self, id: WorkloadId, clos: ClosId) -> Result<()> {
        let cores: Vec<CoreId> = self
            .slots
            .get(id.index())
            .ok_or(A4Error::InvalidDevice { device: id.0 as u8 })?
            .cores
            .clone();
        let cps = self.cfg.hierarchy.cores;
        for c in cores {
            let socket = c.index() / cps;
            let local = CoreId((c.index() % cps) as u8);
            self.socks[socket].clos_mut().assign_core(local, clos)?;
        }
        Ok(())
    }

    /// Resets CAT to the power-on state (the *Default* baseline) on every
    /// socket.
    pub fn cat_reset(&mut self) {
        for hier in &mut self.socks {
            hier.clos_mut().reset();
        }
    }

    /// Programs per-device DCA via the port's `perfctrlsts_0` (A4's F2).
    ///
    /// # Errors
    ///
    /// Returns an error for unattached devices.
    pub fn set_device_dca(&mut self, dev: DeviceId, enable: bool) -> Result<()> {
        self.root.set_device_dca(dev, enable)
    }

    /// Whether a device's DMA writes currently use DCA.
    pub fn dca_enabled(&self, dev: DeviceId) -> bool {
        self.root.dca_enabled(dev)
    }

    /// Sets DCA globally (the BIOS-knob baseline).
    pub fn set_global_dca(&mut self, enable: bool) {
        self.root.set_global_dca(enable);
    }

    /// A device model (for assertions and occupancy checks).
    ///
    /// # Panics
    ///
    /// Panics for unknown device ids.
    pub fn device(&self, dev: DeviceId) -> &DeviceModel {
        &self.devices[dev.index()]
    }

    // ---- execution --------------------------------------------------------

    /// Rebuilds the device→owner map. Owners only change when workloads
    /// register or flip activity, so the per-quantum cost is a `bool`
    /// check rather than a slots×devices rescan.
    fn refresh_device_owners(&mut self) {
        for (i, owner) in self.device_owners.iter_mut().enumerate() {
            let dev = DeviceId(i as u8);
            // DMA of a device no active workload owns is accounted to the
            // explicit unattributed sentinel, never to workload 0.
            *owner = self
                .slots
                .iter()
                .find(|s| s.active && s.device == Some(dev))
                .map_or(WorkloadId::UNATTRIBUTED, |s| s.id);
        }
        self.device_owners_stale = false;
    }

    /// The workload currently owning (driving) `dev`, or
    /// [`WorkloadId::UNATTRIBUTED`] if no active workload claims it.
    pub fn device_owner(&mut self, dev: DeviceId) -> WorkloadId {
        if self.device_owners_stale {
            self.refresh_device_owners();
        }
        self.device_owners
            .get(dev.index())
            .copied()
            .unwrap_or(WorkloadId::UNATTRIBUTED)
    }

    /// Runs one quantum: devices DMA, workloads execute, memory interval
    /// closes.
    pub fn run_quantum(&mut self) {
        let dt = self.cfg.quantum;
        let now = self.now;
        if self.device_owners_stale {
            self.refresh_device_owners();
        }

        // 1. Devices DMA at their offered rates. Indexing keeps the
        // borrows field-disjoint (`devices` vs `socks`), so no device is
        // ever swapped out against a throwaway placeholder.
        for i in 0..self.devices.len() {
            let dev = self.devices[i].device();
            let dca = self.root.dca_enabled(dev);
            let owner = self.device_owners[i];
            let mut port = DmaRouter::new(&mut self.socks, self.device_sockets[i], &mut self.upi);
            self.devices[i].step(now, dt, &mut port, dca, owner);
        }

        // 2. Workloads execute under their cycle budgets.
        let budget = self.cfg.cycles_per_quantum();
        let mem_factor = self.mem.latency_factor();
        let upi_cycles = self.cfg.upi_cycles();
        let cpu_ghz = self.cfg.cpu_freq_ghz;
        let cps = self.cfg.hierarchy.cores;
        let mut slots = std::mem::take(&mut self.slots);
        for slot in slots.iter_mut().filter(|s| s.active) {
            for (ci, &core) in slot.cores.iter().enumerate() {
                let socket = core.index() / cps;
                let mut ctx = CoreCtx {
                    core,
                    core_slot: ci,
                    wl: slot.id,
                    now,
                    budget,
                    used: 0.0,
                    socks: &mut self.socks,
                    socket,
                    core_local: CoreId((core.index() % cps) as u8),
                    devices: &mut self.devices,
                    device_sockets: &self.device_sockets,
                    upi: &mut self.upi,
                    rcache: &mut self.rcaches[socket],
                    upi_cycles,
                    cpu_ghz,
                    perf: &mut slot.perf,
                    rng: &mut self.rng,
                    lat: self.cfg.latency,
                    mem_factor,
                    ns_per_cycle: self.cfg.ns_per_cycle(),
                };
                slot.wl.step(&mut ctx);
                let used = ctx.used;
                slot.perf.add_cycles(used.max(budget)); // idle cycles still elapse
            }
        }
        self.slots = slots;

        // 3. Memory interval: feed the traffic every socket's hierarchy
        // generated into the shared memory model. Only the aggregate
        // read/write line counts are needed, so the per-quantum snapshot
        // is one `Copy` of the totals per socket — the full per-workload
        // tables are only diffed at sampling cadence in `sample()`.
        let mut r = 0;
        let mut w = 0;
        for (hier, prev) in self.socks.iter().zip(self.quantum_totals.iter_mut()) {
            let total = hier.stats().total;
            r += total.mem_read_lines - prev.mem_read_lines;
            w += total.mem_write_lines - prev.mem_write_lines;
            *prev = total;
        }
        self.mem.record_read_lines(r);
        self.mem.record_write_lines(w);
        let traffic = self.mem.end_interval(dt);
        self.interval_mem_read += traffic.read;
        self.interval_mem_written += traffic.written;
        // The UPI fabric closes its interval on the same cadence: this
        // quantum's per-link offered load sets next quantum's per-line
        // queueing factors (no-op on unthrottled links).
        self.upi.end_interval(dt.as_secs_f64());

        self.now += dt;
        self.quantum_count += 1;
        if self
            .quantum_count
            .is_multiple_of(self.cfg.quanta_per_second as u64)
        {
            self.logical_seconds += 1;
        }
    }

    /// Runs `n` quanta.
    pub fn run_quanta(&mut self, n: u64) {
        for _ in 0..n {
            self.run_quantum();
        }
    }

    /// Runs `n` logical seconds.
    pub fn run_logical_seconds(&mut self, n: u64) {
        self.run_quanta(n * self.cfg.quanta_per_second as u64);
    }

    /// Count of completed logical seconds.
    pub fn logical_seconds(&self) -> u64 {
        self.logical_seconds
    }

    /// Count of completed quanta since construction (survives
    /// checkpoint/restore — the watchdog's budget currency).
    pub fn quantum_count(&self) -> u64 {
        self.quantum_count
    }

    // ---- monitoring --------------------------------------------------------

    /// Drains the current monitoring interval into a [`MonitorSample`] and
    /// starts a new one. Call once per logical second (or at any cadence —
    /// the sample covers exactly the time since the previous call).
    pub fn sample(&mut self) -> MonitorSample {
        let interval = self.now.saturating_sub(self.interval_start);
        let mut workloads = Vec::with_capacity(self.slots.len());
        // Interval cache counters come from the perf-take plus the
        // cumulative stats diffs tracked per workload below.
        for slot in self.slots.iter_mut().filter(|s| s.active) {
            let perf = slot.perf.take();
            let latency = WorkloadSample::latency_from_perf(&perf);
            workloads.push((
                slot.id,
                slot.name.clone(),
                slot.kind,
                slot.priority,
                perf,
                latency,
            ));
        }
        // Cache-side per-workload deltas: cumulative stats minus what the
        // previous sample consumed, per socket, then merged across
        // sockets (a workload's remote accesses land in the remote
        // hierarchy's tables). `delta_into`/`copy_from`/`merge` reuse the
        // snapshot, delta and merge buffers, so sampling allocates no
        // stat tables.
        for ((hier, snap), delta) in self
            .socks
            .iter()
            .zip(self.sample_snapshots.iter_mut())
            .zip(self.sample_deltas.iter_mut())
        {
            hier.stats().delta_into(snap, delta);
            snap.copy_from(hier.stats());
        }
        self.sample_merged.copy_from(&self.sample_deltas[0]);
        for delta in &self.sample_deltas[1..] {
            self.sample_merged.merge(delta);
        }
        let delta = &self.sample_merged;

        let workloads = workloads
            .into_iter()
            .map(|(id, name, kind, priority, perf, latency)| {
                let c = delta.workload(id);
                WorkloadSample {
                    id,
                    name,
                    kind,
                    priority,
                    accesses: c.accesses(),
                    llc_hit_rate: c.llc_hit_rate(),
                    llc_miss_rate: c.llc_miss_rate(),
                    mlc_miss_rate: c.mlc_miss_rate(),
                    instructions: perf.instructions(),
                    ipc: perf.ipc(),
                    ops: perf.ops_completed(),
                    io_bytes: perf.io_bytes(),
                    latency,
                    dca_allocs: c.dca_allocs,
                    dca_updates: c.dca_updates,
                    dma_leaks: c.dma_leaks,
                    dma_bloats: c.dma_bloats,
                    migrations: c.migrations,
                    dca_leak_rate: c.dca_leak_rate(),
                    mem_read_bytes: c.mem_read_lines * a4_model::LINE_BYTES,
                    mem_write_bytes: c.mem_write_lines * a4_model::LINE_BYTES,
                }
            })
            .collect();

        let devices = self
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let id = d.device();
                let dc = delta.device(id);
                let class = match d {
                    DeviceModel::Nic(_) => DeviceClass::Nic,
                    DeviceModel::Nvme(_) => DeviceClass::Nvme,
                };
                let (delivered, dropped) = match d {
                    DeviceModel::Nic(nic) => {
                        let snap = self.dev_snapshots[i];

                        (
                            nic.delivered_packets() - snap.delivered,
                            nic.dropped_packets() - snap.dropped,
                        )
                    }
                    DeviceModel::Nvme(_) => (0, 0),
                };
                DeviceSample {
                    id,
                    class,
                    dca_enabled: self.root.dca_enabled(id),
                    dma_write_bytes: dc.dma_write_lines * a4_model::LINE_BYTES,
                    dma_to_memory_bytes: dc.dma_to_memory_lines * a4_model::LINE_BYTES,
                    dma_read_bytes: dc.dma_read_lines * a4_model::LINE_BYTES,
                    dca_leak_rate: dc.dca_leak_rate(),
                    dropped_packets: dropped,
                    delivered_packets: delivered,
                }
            })
            .collect();

        // Roll device snapshots forward.
        for (i, d) in self.devices.iter().enumerate() {
            if let DeviceModel::Nic(nic) = d {
                self.dev_snapshots[i] = DevSnapshot {
                    delivered: nic.delivered_packets(),
                    dropped: nic.dropped_packets(),
                };
            }
        }

        // Per-link UPI traffic this interval. Only links that moved
        // bytes are reported, so runs that never cross a socket emit an
        // empty list regardless of socket count.
        let mut upi = Vec::new();
        for (i, ((a, b), link)) in self.upi.pairs().zip(self.upi.links()).enumerate() {
            let snap = &mut self.upi_snapshots[i];
            let read_lines = link.read_lines() - snap.0;
            let write_lines = link.write_lines() - snap.1;
            *snap = (link.read_lines(), link.write_lines());
            if read_lines != 0 || write_lines != 0 {
                upi.push(UpiLinkSample {
                    a: a as u8,
                    b: b as u8,
                    read_bytes: read_lines * a4_model::LINE_BYTES,
                    write_bytes: write_lines * a4_model::LINE_BYTES,
                });
            }
        }

        let sample = MonitorSample {
            t: self.now,
            logical_second: self.logical_seconds,
            workloads,
            devices,
            upi,
            mem_read: self.interval_mem_read,
            mem_written: self.interval_mem_written,
            time_dilation: self.cfg.time_dilation,
            interval,
        };
        self.interval_mem_read = Bytes::ZERO;
        self.interval_mem_written = Bytes::ZERO;
        self.interval_start = self.now;
        sample
    }

    // ---- checkpointing -----------------------------------------------------

    /// Snapshots the complete mutable simulation state for a checkpoint.
    ///
    /// Restoring the snapshot into a process-equivalent system (same
    /// [`SystemConfig`], same attach/registration history) and continuing
    /// is bit-identical to never having stopped. Not captured, because
    /// they are scratch or derived: `sample_deltas`/`sample_merged`
    /// (overwritten before every use), `device_owners` (recomputed from
    /// the slots on demand), `cfg` and `device_sockets` (structural —
    /// reproduced by rebuilding from the same spec).
    pub fn save_state(&self) -> SystemState {
        let _scratch_or_structural = (
            &self.cfg,
            &self.device_sockets,
            &self.sample_deltas,
            &self.sample_merged,
            &self.device_owners,
            &self.device_owners_stale,
        );
        SystemState {
            version: SYSTEM_CKPT_VERSION,
            socks: self.socks.iter().map(CacheHierarchy::save_state).collect(),
            upi: self.upi.save_state(),
            rcaches: self.rcaches.iter().map(RemoteCache::save_state).collect(),
            mem: self.mem.save_state(),
            root: self.root.clone(),
            devices: self.devices.iter().map(DeviceModel::save_state).collect(),
            slots: self
                .slots
                .iter()
                .map(|s| SlotState {
                    wl_state: s.wl.ckpt_state(),
                    perf: s.perf.clone(),
                    active: s.active,
                })
                .collect(),
            now: self.now,
            quantum_count: self.quantum_count,
            rng: self.rng.state().to_vec(),
            alloc_cursors: self.alloc_cursors.clone(),
            quantum_totals: self.quantum_totals.clone(),
            sample_snapshots: self.sample_snapshots.clone(),
            dev_snapshots: self
                .dev_snapshots
                .iter()
                .map(|d| (d.delivered, d.dropped))
                .collect(),
            upi_snapshots: self.upi_snapshots.clone(),
            interval_mem_read: self.interval_mem_read,
            interval_mem_written: self.interval_mem_written,
            interval_start: self.interval_start,
            logical_seconds: self.logical_seconds,
        }
    }

    /// Restores a [`System::save_state`] snapshot into this system.
    ///
    /// The system must be process-equivalent to the one that saved the
    /// snapshot: built from the same [`SystemConfig`] with the same
    /// devices attached and workloads registered, in the same order.
    /// Returns `false` — leaving this system in its pre-call state — if
    /// the snapshot's version or shape does not match; every nested
    /// component is dry-run against a copy before anything is committed.
    pub fn restore_state(&mut self, st: &SystemState) -> bool {
        let _scratch_or_structural = (
            &self.cfg,
            &self.device_sockets,
            &self.sample_deltas,
            &self.sample_merged,
            &self.device_owners,
            &self.device_owners_stale,
        );
        if st.version != SYSTEM_CKPT_VERSION
            || st.socks.len() != self.socks.len()
            || st.upi.len() != self.upi.links().len()
            || st.rcaches.len() != self.rcaches.len()
            || st.devices.len() != self.devices.len()
            || st.slots.len() != self.slots.len()
            || st.rng.len() != 4
            || st.alloc_cursors.len() != self.alloc_cursors.len()
            || st.quantum_totals.len() != self.quantum_totals.len()
            || st.sample_snapshots.len() != self.sample_snapshots.len()
            || st.dev_snapshots.len() != self.dev_snapshots.len()
            || st.upi_snapshots.len() != self.upi_snapshots.len()
            || st.root.ports() != self.root.ports()
        {
            return false;
        }
        // Dry-run every nested restore against clones so a mid-restore
        // mismatch cannot leave the system half-updated.
        let mut socks = self.socks.clone();
        if socks
            .iter_mut()
            .zip(&st.socks)
            .any(|(hier, s)| !hier.restore_state(s))
        {
            return false;
        }
        let mut devices = self.devices.clone();
        if devices
            .iter_mut()
            .zip(&st.devices)
            .any(|(dev, s)| !dev.restore_state(s))
        {
            return false;
        }
        let mut rcaches = self.rcaches.clone();
        if rcaches
            .iter_mut()
            .zip(&st.rcaches)
            .any(|(rc, s)| !rc.restore_state(s))
        {
            return false;
        }
        // Workload engines cannot be cloned (trait objects), so their
        // encodings are validated by a parse-only restore onto the live
        // engine — every engine's `restore_ckpt` either fully applies a
        // recognized encoding or rejects without mutating.
        if self
            .slots
            .iter_mut()
            .zip(&st.slots)
            .any(|(slot, s)| !slot.wl.restore_ckpt(&s.wl_state))
        {
            return false;
        }
        self.socks = socks;
        self.devices = devices;
        self.rcaches = rcaches;
        for (slot, s) in self.slots.iter_mut().zip(&st.slots) {
            slot.perf = s.perf.clone();
            slot.active = s.active;
        }
        // Cannot fail: the link count was shape-checked above.
        let fabric_ok = self.upi.restore_state(&st.upi);
        debug_assert!(fabric_ok);
        self.upi_snapshots = st.upi_snapshots.clone();
        self.mem.restore_state(&st.mem);
        self.root = st.root.clone();
        self.now = st.now;
        self.quantum_count = st.quantum_count;
        self.rng = SmallRng::from_state([st.rng[0], st.rng[1], st.rng[2], st.rng[3]]);
        self.alloc_cursors = st.alloc_cursors.clone();
        self.quantum_totals = st.quantum_totals.clone();
        self.sample_snapshots = st.sample_snapshots.clone();
        self.dev_snapshots = st
            .dev_snapshots
            .iter()
            .map(|&(delivered, dropped)| DevSnapshot { delivered, dropped })
            .collect();
        self.interval_mem_read = st.interval_mem_read;
        self.interval_mem_written = st.interval_mem_written;
        self.interval_start = st.interval_start;
        self.logical_seconds = st.logical_seconds;
        // Derived state: recompute lazily from the restored slots.
        self.device_owners_stale = true;
        true
    }
}

/// Serializable snapshot of one workload slot's mutable state (see
/// [`System::save_state`]). The engine itself is rebuilt from the
/// scenario spec; only its [`Workload::ckpt_state`] words, accumulated
/// perf counters and activity flag travel in the checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotState {
    /// Engine-defined state encoding ([`Workload::ckpt_state`]).
    pub wl_state: Vec<u64>,
    /// Accumulated performance counters.
    pub perf: WorkloadPerf,
    /// Whether the workload is active.
    pub active: bool,
}

/// Serializable snapshot of the complete mutable [`System`] state.
///
/// Restore-and-continue from this snapshot is bit-identical to an
/// uninterrupted run: same [`HierarchyStats`], same samples, same RNG
/// stream, same rendered tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemState {
    /// Snapshot encoding version ([`SYSTEM_CKPT_VERSION`]).
    pub version: u32,
    /// Per-socket cache hierarchy snapshots.
    pub socks: Vec<CacheHierarchyState>,
    /// Per-link UPI fabric snapshots, in fabric link order.
    pub upi: Vec<UpiLinkState>,
    /// Per-socket remote-requester cache snapshots.
    pub rcaches: Vec<RemoteCacheState>,
    /// Memory controller snapshot.
    pub mem: MemControllerState,
    /// PCIe root complex (port registers and attachments).
    pub root: PcieRoot,
    /// Per-device snapshots, in attach order.
    pub devices: Vec<DeviceState>,
    /// Per-workload slot snapshots, in registration order.
    pub slots: Vec<SlotState>,
    /// Current simulated time.
    pub now: SimTime,
    /// Completed quanta.
    pub quantum_count: u64,
    /// System RNG state (xoshiro256++, always 4 words).
    pub rng: Vec<u64>,
    /// Per-socket buffer allocation cursors.
    pub alloc_cursors: Vec<u64>,
    /// Per-socket per-quantum memory-traffic snapshots.
    pub quantum_totals: Vec<WorkloadCounters>,
    /// Per-socket sampling-cadence stat snapshots.
    pub sample_snapshots: Vec<HierarchyStats>,
    /// Per-device `(delivered, dropped)` sampling snapshots.
    pub dev_snapshots: Vec<(u64, u64)>,
    /// Per-link `(read_lines, write_lines)` sampling snapshots, in
    /// fabric link order.
    pub upi_snapshots: Vec<(u64, u64)>,
    /// Memory bytes read in the open monitoring interval.
    pub interval_mem_read: Bytes,
    /// Memory bytes written in the open monitoring interval.
    pub interval_mem_written: Bytes,
    /// Start time of the open monitoring interval.
    pub interval_start: SimTime,
    /// Completed logical seconds.
    pub logical_seconds: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Workload, WorkloadInfo};
    use a4_model::WorkloadKind;

    #[derive(Debug)]
    struct Streamer {
        base: LineAddr,
        lines: u64,
        cursor: u64,
    }

    impl Workload for Streamer {
        fn info(&self) -> WorkloadInfo {
            WorkloadInfo {
                name: "streamer".into(),
                kind: WorkloadKind::NonIo,
                device: None,
            }
        }
        fn step(&mut self, ctx: &mut CoreCtx<'_>) {
            while ctx.has_budget() {
                ctx.read(self.base.offset(self.cursor % self.lines));
                self.cursor += 1;
                ctx.compute(5.0, 5);
            }
        }
        fn ckpt_state(&self) -> Vec<u64> {
            vec![self.cursor]
        }
        fn restore_ckpt(&mut self, state: &[u64]) -> bool {
            match state {
                [cursor] => {
                    self.cursor = *cursor;
                    true
                }
                _ => false,
            }
        }
    }

    fn sys() -> System {
        System::new(SystemConfig::small_test())
    }

    fn two_socket_sys() -> System {
        let mut cfg = SystemConfig::small_test();
        cfg.sockets = 2;
        System::new(cfg)
    }

    #[test]
    fn time_advances() {
        let mut s = sys();
        s.run_quanta(3);
        assert_eq!(s.now(), SimTime::from_micros(3));
        s.run_logical_seconds(1);
        assert_eq!(s.logical_seconds(), 1);
    }

    #[test]
    fn workload_registration_validates_cores() {
        let mut s = sys();
        let mk = || {
            Box::new(Streamer {
                base: LineAddr(0),
                lines: 8,
                cursor: 0,
            }) as Box<dyn Workload>
        };
        assert!(s.add_workload(mk(), vec![], Priority::High).is_err());
        assert!(s
            .add_workload(mk(), vec![CoreId(99)], Priority::High)
            .is_err());
        let id = s
            .add_workload(mk(), vec![CoreId(0)], Priority::High)
            .unwrap();
        // Core already pinned.
        assert!(s
            .add_workload(mk(), vec![CoreId(0)], Priority::Low)
            .is_err());
        // Deactivate frees the core.
        s.set_workload_active(id, false).unwrap();
        assert!(s.add_workload(mk(), vec![CoreId(0)], Priority::Low).is_ok());
    }

    #[test]
    fn registration_stops_before_the_unattributed_stat_row() {
        let mut s = sys();
        let mk = || {
            Box::new(Streamer {
                base: LineAddr(0),
                lines: 8,
                cursor: 0,
            }) as Box<dyn Workload>
        };
        // Register-and-deactivate until the table's second-to-last row;
        // the last row is reserved for WorkloadId::UNATTRIBUTED.
        for _ in 0..a4_cache::MAX_WORKLOADS - 1 {
            let id = s
                .add_workload(mk(), vec![CoreId(0)], Priority::Low)
                .unwrap();
            s.set_workload_active(id, false).unwrap();
        }
        assert!(
            s.add_workload(mk(), vec![CoreId(0)], Priority::Low)
                .is_err(),
            "the sentinel row must never be shared with a real workload"
        );
    }

    #[test]
    fn workload_executes_and_samples() {
        let mut s = sys();
        let base = s.alloc_lines(16);
        let wl = s
            .add_workload(
                Box::new(Streamer {
                    base,
                    lines: 16,
                    cursor: 0,
                }),
                vec![CoreId(0)],
                Priority::High,
            )
            .unwrap();
        s.run_logical_seconds(1);
        let sample = s.sample();
        let w = sample.workload(wl).expect("registered workload sampled");
        assert!(w.accesses > 100, "streamer issued accesses: {}", w.accesses);
        assert!(w.ipc > 0.0);
        assert!(w.instructions > 0);
        // Second interval is fresh.
        s.run_logical_seconds(1);
        let sample2 = s.sample();
        let w2 = sample2.workload(wl).unwrap();
        assert!(w2.accesses > 0);
        // Steady state: a 64-line working set fits the MLC => mostly hits.
        assert!(
            w2.mlc_miss_rate < 0.1,
            "a 16-line set fits the 32-line MLC: miss rate {}",
            w2.mlc_miss_rate
        );
    }

    #[test]
    fn determinism_same_seed_same_counters() {
        let run = || {
            let mut s = sys();
            let base = s.alloc_lines(512);
            s.add_workload(
                Box::new(Streamer {
                    base,
                    lines: 512,
                    cursor: 0,
                }),
                vec![CoreId(1)],
                Priority::High,
            )
            .unwrap();
            s.run_logical_seconds(2);
            let sample = s.sample();
            let w = &sample.workloads[0];
            (w.accesses, w.instructions, w.llc_hit_rate.to_bits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn device_attach_and_dca_control() {
        let mut s = sys();
        let nic = s
            .attach_nic(PortId(0), NicConfig::connectx6_100g(1, 8, 64))
            .unwrap();
        let ssd = s
            .attach_nvme(PortId(1), NvmeConfig::raid0_980pro_x4())
            .unwrap();
        assert!(s.dca_enabled(nic));
        s.set_device_dca(ssd, false).unwrap();
        assert!(!s.dca_enabled(ssd));
        assert!(s.dca_enabled(nic));
        s.set_global_dca(false);
        assert!(!s.dca_enabled(nic));
        // NIC traffic flows even with nobody consuming.
        s.set_global_dca(true);
        s.run_quanta(5);
        let sample = s.sample();
        let d = sample.device(nic).unwrap();
        assert!(d.dma_write_bytes > 0);
    }

    #[test]
    fn mem_interval_bytes_accumulate() {
        let mut s = sys();
        let base = s.alloc_lines(4096);
        s.add_workload(
            Box::new(Streamer {
                base,
                lines: 4096,
                cursor: 0,
            }),
            vec![CoreId(0)],
            Priority::Low,
        )
        .unwrap();
        s.run_logical_seconds(1);
        let sample = s.sample();
        assert!(
            sample.mem_read.as_u64() > 0,
            "a 4096-line stream misses everywhere"
        );
        assert!(sample.mem_read_gbps() > 0.0);
    }

    #[test]
    fn cat_control_plane() {
        let mut s = sys();
        let base = s.alloc_lines(8);
        let wl = s
            .add_workload(
                Box::new(Streamer {
                    base,
                    lines: 8,
                    cursor: 0,
                }),
                vec![CoreId(2), CoreId(3)],
                Priority::Low,
            )
            .unwrap();
        s.cat_set_mask(ClosId(2), WayMask::from_paper_range(7, 8).unwrap())
            .unwrap();
        s.cat_assign_workload(wl, ClosId(2)).unwrap();
        assert_eq!(
            s.hierarchy().clos().mask_for_core(CoreId(3)),
            WayMask::from_paper_range(7, 8).unwrap()
        );
        s.cat_reset();
        assert_eq!(s.hierarchy().clos().mask_for_core(CoreId(3)), WayMask::ALL);
        assert!(s.cat_assign_workload(WorkloadId(99), ClosId(0)).is_err());
    }

    #[test]
    fn sockets_partition_cores_devices_and_allocations() {
        let mut s = two_socket_sys();
        assert_eq!(s.sockets(), 2);
        assert_eq!(s.config().total_cores(), 8);
        // Socket-1 allocations live in the socket-1 address region.
        let remote = s.alloc_lines_on(1, 64);
        assert_eq!(remote.home_socket(), 1);
        assert_eq!(s.alloc_lines(1).home_socket(), 0);
        // Devices carry their socket.
        let nic = s
            .attach_nic_on(1, PortId(0), NicConfig::connectx6_100g(1, 8, 64))
            .unwrap();
        assert_eq!(s.device_socket(nic), 1);
        // Global core ids: 4..8 are socket 1 on the 4-core test geometry.
        assert_eq!(s.socket_of_core(CoreId(5)), 1);
        let wl = s
            .add_workload(
                Box::new(Streamer {
                    base: remote,
                    lines: 64,
                    cursor: 0,
                }),
                vec![CoreId(5)],
                Priority::High,
            )
            .unwrap();
        // Core 8 would be out of range, core 5 is valid.
        assert!(s
            .add_workload(
                Box::new(Streamer {
                    base: remote,
                    lines: 64,
                    cursor: 0,
                }),
                vec![CoreId(8)],
                Priority::High,
            )
            .is_err());
        // CAT assignment programs the *socket-local* CLOS table.
        s.cat_set_mask(ClosId(1), WayMask::from_paper_range(7, 8).unwrap())
            .unwrap();
        s.cat_assign_workload(wl, ClosId(1)).unwrap();
        assert_eq!(
            s.socket_hierarchy(1).clos().mask_for_core(CoreId(1)),
            WayMask::from_paper_range(7, 8).unwrap(),
            "core 5 = local core 1 on socket 1"
        );
        // Out-of-range sockets are rejected.
        assert!(s
            .attach_nic_on(2, PortId(1), NicConfig::connectx6_100g(1, 8, 64))
            .is_err());
    }

    #[test]
    fn checkpoint_restore_continues_bit_identically() {
        let build = || {
            let mut s = sys();
            let nic = s
                .attach_nic(PortId(0), NicConfig::connectx6_100g(1, 8, 64))
                .unwrap();
            let _ = nic;
            let base = s.alloc_lines(256);
            s.add_workload(
                Box::new(Streamer {
                    base,
                    lines: 256,
                    cursor: 0,
                }),
                vec![CoreId(0)],
                Priority::High,
            )
            .unwrap();
            s
        };
        // Reference: run 5 quanta straight through.
        let mut reference = build();
        reference.run_quanta(5);
        let ref_sample = reference.sample();
        let ref_probe = reference.rng_probe();

        // Checkpoint after 2 quanta and round-trip the snapshot through
        // JSON; scramble well past the checkpoint, rewind to it, and the
        // continuation must replay the reference run exactly.
        let mut first = build();
        first.run_quanta(2);
        let st = first.save_state();
        let json = serde_json::to_string(&st).unwrap();
        let parsed: SystemState = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, st, "snapshot survives a JSON round-trip");
        first.run_quanta(100); // scramble past the checkpoint...
        assert!(first.restore_state(&parsed), "...and rewind to it");
        first.run_quanta(3);
        let sample = first.sample();
        assert_eq!(
            serde_json::to_string(&sample).unwrap(),
            serde_json::to_string(&ref_sample).unwrap(),
            "restore-and-continue must be bit-identical"
        );
        assert_eq!(first.rng_probe(), ref_probe);
    }

    #[test]
    fn restore_rejects_mismatched_shapes_untouched() {
        let mut s = sys();
        let base = s.alloc_lines(16);
        s.add_workload(
            Box::new(Streamer {
                base,
                lines: 16,
                cursor: 0,
            }),
            vec![CoreId(0)],
            Priority::High,
        )
        .unwrap();
        s.run_quanta(3);
        let good = s.save_state();
        let probe = s.rng_probe();

        let mut wrong_version = good.clone();
        wrong_version.version = SYSTEM_CKPT_VERSION + 1;
        assert!(!s.restore_state(&wrong_version));

        let mut wrong_rng = good.clone();
        wrong_rng.rng.pop();
        assert!(!s.restore_state(&wrong_rng));

        let mut wrong_socks = good.clone();
        wrong_socks.socks.clear();
        assert!(!s.restore_state(&wrong_socks));

        // A failed restore never perturbed the system.
        assert_eq!(s.rng_probe(), probe);
        assert!(s.restore_state(&good));
    }

    #[test]
    fn local_core_with_remote_buffer_crosses_upi() {
        let mut s = two_socket_sys();
        let remote = s.alloc_lines_on(1, 512);
        s.add_workload(
            Box::new(Streamer {
                base: remote,
                lines: 512,
                cursor: 0,
            }),
            vec![CoreId(0)], // socket 0 core, socket 1 buffer
            Priority::High,
        )
        .unwrap();
        s.run_logical_seconds(1);
        assert!(s.upi().crossed_lines() > 0, "every access crossed the link");
        // The accesses are accounted in socket 1's hierarchy.
        assert!(s.socket_hierarchy(1).stats().total.llc_misses > 0);
        assert_eq!(s.socket_hierarchy(0).stats().total.llc_misses, 0);
    }

    #[test]
    fn four_socket_traffic_lands_on_the_pair_link() {
        let mut cfg = SystemConfig::small_test();
        cfg.sockets = 4;
        cfg.remote_cache_lines = 0; // count every crossing
        let mut s = System::new(cfg);
        let remote = s.alloc_lines_on(2, 512);
        s.add_workload(
            Box::new(Streamer {
                base: remote,
                lines: 512,
                cursor: 0,
            }),
            vec![CoreId(0)], // socket 0 core, socket 2 buffer
            Priority::High,
        )
        .unwrap();
        s.run_logical_seconds(1);
        let crossed = s.upi().crossed_lines();
        assert!(crossed > 0);
        // Every crossing is attributed to the (0, 2) link; the five
        // other pair links stay untouched.
        assert_eq!(
            s.upi().link(0, 2).read_lines() + s.upi().link(0, 2).write_lines(),
            crossed
        );
        for (a, b) in [(0, 1), (0, 3), (1, 2), (1, 3), (2, 3)] {
            let link = s.upi().link(a, b);
            assert_eq!(link.read_lines() + link.write_lines(), 0, "({a},{b})");
        }
    }

    #[test]
    fn requester_cache_spares_hot_working_sets_from_recrossing() {
        let run = |rcache_lines: usize| {
            let mut cfg = SystemConfig::small_test();
            cfg.sockets = 2;
            cfg.remote_cache_lines = rcache_lines;
            let mut s = System::new(cfg);
            // Working set small enough to live in the requester cache.
            let base = s.alloc_lines_on(1, 8);
            s.add_workload(
                Box::new(Streamer {
                    base,
                    lines: 8,
                    cursor: 0,
                }),
                vec![CoreId(0)],
                Priority::High,
            )
            .unwrap();
            s.run_logical_seconds(1);
            s.upi().crossed_lines()
        };
        let without = run(0);
        let with = run(16);
        assert!(
            with * 10 < without,
            "hot set must stop re-crossing: with={with} without={without}"
        );
        assert!(with >= 8, "the first pass still crossed");
    }

    #[test]
    fn sample_reports_only_links_that_moved_bytes() {
        // Local-only work: no upi entries at all.
        let mut s = two_socket_sys();
        let base = s.alloc_lines(64);
        s.add_workload(
            Box::new(Streamer {
                base,
                lines: 64,
                cursor: 0,
            }),
            vec![CoreId(0)],
            Priority::High,
        )
        .unwrap();
        s.run_logical_seconds(1);
        assert!(s.sample().upi.is_empty(), "nothing crossed");

        // Remote work: exactly the (0, 1) link appears, and a second
        // sample after an idle-link interval is empty again.
        let mut s = two_socket_sys();
        let remote = s.alloc_lines_on(1, 512);
        let wl = s
            .add_workload(
                Box::new(Streamer {
                    base: remote,
                    lines: 512,
                    cursor: 0,
                }),
                vec![CoreId(0)],
                Priority::High,
            )
            .unwrap();
        s.run_logical_seconds(1);
        let sample = s.sample();
        assert_eq!(sample.upi.len(), 1);
        let link = sample.upi_link(1, 0).unwrap(); // order-insensitive
        assert_eq!((link.a, link.b), (0, 1));
        assert!(link.read_bytes > 0);
        assert!(sample.upi_link_read_gbps(0, 1) > 0.0);
        s.set_workload_active(wl, false).unwrap();
        s.run_logical_seconds(1);
        assert!(
            s.sample().upi.is_empty(),
            "idle links drop out of the next sample"
        );
    }

    #[test]
    fn upi_hop_slows_remote_streams() {
        let run = |remote: bool, upi_ns: u64| {
            let mut cfg = SystemConfig::small_test();
            cfg.sockets = 2;
            cfg.upi_ns = upi_ns;
            let mut s = System::new(cfg);
            let base = s.alloc_lines_on(usize::from(remote), 4096);
            let wl = s
                .add_workload(
                    Box::new(Streamer {
                        base,
                        lines: 4096,
                        cursor: 0,
                    }),
                    vec![CoreId(0)],
                    Priority::High,
                )
                .unwrap();
            s.run_logical_seconds(2);
            s.sample().workload(wl).unwrap().accesses
        };
        let local = run(false, 200);
        let remote = run(true, 200);
        assert!(
            remote < local,
            "UPI hops must cost cycles: local={local} remote={remote}"
        );
        // And the penalty scales with the hop latency.
        let remote_fast = run(true, 10);
        assert!(remote < remote_fast, "higher hop latency, fewer accesses");
    }
}
