//! The top-level simulated server.

use crate::config::SystemConfig;
use crate::ctx::CoreCtx;
use crate::device::DeviceModel;
use crate::perf::WorkloadPerf;
use crate::sample::{DeviceSample, MonitorSample, WorkloadSample};
use crate::workload::Workload;
use a4_cache::{CacheHierarchy, HierarchyStats, WorkloadCounters};
use a4_mem::MemoryController;
use a4_model::{
    A4Error, Bytes, ClosId, CoreId, DeviceClass, DeviceId, LineAddr, PortId, Priority, Result,
    SimTime, WayMask, WorkloadId,
};
use a4_pcie::{NicConfig, NicModel, NvmeConfig, NvmeModel, PcieRoot};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

#[derive(Debug)]
struct Slot {
    wl: Box<dyn Workload>,
    id: WorkloadId,
    // Shared so per-sample `WorkloadSample` construction is a refcount
    // bump, not a `String` allocation.
    name: Arc<str>,
    kind: a4_model::WorkloadKind,
    priority: Priority,
    cores: Vec<CoreId>,
    device: Option<DeviceId>,
    perf: WorkloadPerf,
    active: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct DevSnapshot {
    delivered: u64,
    dropped: u64,
}

/// The simulated server: substrates wired together, plus the monitoring
/// and control planes the A4 controller drives.
///
/// # Examples
///
/// ```
/// use a4_model::{ClosId, DeviceClass, PortId, WayMask};
/// use a4_pcie::NvmeConfig;
/// use a4_sim::{System, SystemConfig};
///
/// let mut sys = System::new(SystemConfig::small_test());
/// let ssd = sys.attach_nvme(PortId(0), NvmeConfig::raid0_980pro_x4())?;
/// sys.set_device_dca(ssd, false)?;                    // A4's F2 knob
/// assert!(!sys.dca_enabled(ssd));
/// sys.cat_set_mask(ClosId(1), WayMask::from_paper_range(7, 8)?)?; // LP Zone
/// sys.run_logical_seconds(1);
/// let sample = sys.sample();
/// assert_eq!(sample.devices.len(), 1);
/// # Ok::<(), a4_model::A4Error>(())
/// ```
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    hier: CacheHierarchy,
    mem: MemoryController,
    root: PcieRoot,
    devices: Vec<DeviceModel>,
    slots: Vec<Slot>,
    now: SimTime,
    quantum_count: u64,
    rng: SmallRng,
    alloc_cursor: u64,
    // Per-quantum memory-traffic snapshot: only the aggregate counters
    // are needed to feed the memory model, so the snapshot is one `Copy`
    // struct instead of a full `HierarchyStats` clone per quantum.
    quantum_total: WorkloadCounters,
    // Sampling-cadence snapshot and reusable delta buffer (the full
    // per-workload tables are only diffed once per monitoring interval).
    sample_snapshot: HierarchyStats,
    sample_delta: HierarchyStats,
    // `device_owners[i]` = owner of `devices[i]`, rebuilt lazily when
    // workloads register or flip activity instead of rescanning all
    // slots for every device every quantum.
    device_owners: Vec<WorkloadId>,
    device_owners_stale: bool,
    dev_snapshots: Vec<DevSnapshot>,
    interval_mem_read: Bytes,
    interval_mem_written: Bytes,
    interval_start: SimTime,
    logical_seconds: u64,
}

impl System {
    /// Builds an idle system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation (configurations are programmer
    /// input, not runtime data).
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate().expect("invalid system configuration");
        let hier = CacheHierarchy::new(cfg.hierarchy);
        System {
            mem: MemoryController::new(cfg.memory).expect("validated with cfg"),
            root: PcieRoot::new(cfg.pcie_ports),
            devices: Vec::new(),
            slots: Vec::new(),
            now: SimTime::ZERO,
            quantum_count: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            // Leave the zero page free so tests can use low addresses.
            alloc_cursor: 1 << 20,
            quantum_total: hier.stats().total,
            sample_snapshot: hier.stats().clone(),
            sample_delta: HierarchyStats::new(),
            device_owners: Vec::new(),
            device_owners_stale: false,
            dev_snapshots: Vec::new(),
            hier,
            interval_mem_read: Bytes::ZERO,
            interval_mem_written: Bytes::ZERO,
            interval_start: SimTime::ZERO,
            logical_seconds: 0,
            cfg,
        }
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The cache hierarchy (read-only).
    #[inline]
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hier
    }

    /// Mutable hierarchy access (tests and ablations).
    #[inline]
    pub fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.hier
    }

    /// The memory controller.
    #[inline]
    pub fn memory(&self) -> &MemoryController {
        &self.mem
    }

    /// The PCIe root complex.
    #[inline]
    pub fn pcie(&self) -> &PcieRoot {
        &self.root
    }

    /// Allocates `lines` fresh cache lines of address space for a buffer.
    pub fn alloc_lines(&mut self, lines: u64) -> LineAddr {
        let base = self.alloc_cursor;
        self.alloc_cursor += lines;
        LineAddr(base)
    }

    /// Attaches a NIC to a root port; ring buffers are allocated
    /// internally.
    ///
    /// # Errors
    ///
    /// Propagates invalid configuration and port-conflict errors.
    pub fn attach_nic(&mut self, port: PortId, config: NicConfig) -> Result<DeviceId> {
        config.validate()?;
        let id = DeviceId(self.devices.len() as u8);
        let span = config.rings as u64 * config.ring_entries as u64 * config.slot_lines();
        let base = self.alloc_lines(span);
        let nic = NicModel::new(id, config, base)?;
        self.root.attach(port, id, DeviceClass::Nic)?;
        self.devices.push(DeviceModel::Nic(nic));
        self.dev_snapshots.push(DevSnapshot::default());
        self.device_owners.push(WorkloadId::UNATTRIBUTED);
        self.device_owners_stale = true;
        Ok(id)
    }

    /// Attaches an NVMe device (or RAID-0 array) to a root port.
    ///
    /// # Errors
    ///
    /// Propagates invalid configuration and port-conflict errors.
    pub fn attach_nvme(&mut self, port: PortId, config: NvmeConfig) -> Result<DeviceId> {
        config.validate()?;
        let id = DeviceId(self.devices.len() as u8);
        let ssd = NvmeModel::new(id, config)?;
        self.root.attach(port, id, DeviceClass::Nvme)?;
        self.devices.push(DeviceModel::Nvme(ssd));
        self.dev_snapshots.push(DevSnapshot::default());
        self.device_owners.push(WorkloadId::UNATTRIBUTED);
        self.device_owners_stale = true;
        Ok(id)
    }

    /// Registers a workload pinned to `cores`.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidCore`] for out-of-range or already-pinned
    /// cores and [`A4Error::InvalidConfig`] for an empty core list.
    pub fn add_workload(
        &mut self,
        wl: Box<dyn Workload>,
        cores: Vec<CoreId>,
        priority: Priority,
    ) -> Result<WorkloadId> {
        if cores.is_empty() {
            return Err(A4Error::InvalidConfig {
                what: "workload needs at least one core",
            });
        }
        // Stat tables clamp out-of-range ids into their last row, which
        // is reserved for the `WorkloadId::UNATTRIBUTED` sentinel —
        // registration must stop short of it or a real workload would
        // share the overflow row's counters.
        if self.slots.len() >= a4_cache::MAX_WORKLOADS - 1 {
            return Err(A4Error::InvalidConfig {
                what: "workload table full (MAX_WORKLOADS - 1 registrations; \
                       the last stat row is the unattributed-DMA sentinel)",
            });
        }
        for &c in &cores {
            if c.index() >= self.cfg.hierarchy.cores {
                return Err(A4Error::InvalidCore {
                    core: c.0,
                    max: self.cfg.hierarchy.cores as u8,
                });
            }
            if self.slots.iter().any(|s| s.active && s.cores.contains(&c)) {
                return Err(A4Error::InvalidCore { core: c.0, max: 0 });
            }
        }
        let info = wl.info();
        let id = WorkloadId(self.slots.len() as u16);
        self.slots.push(Slot {
            wl,
            id,
            name: Arc::from(info.name),
            kind: info.kind,
            priority,
            cores,
            device: info.device,
            perf: WorkloadPerf::new(),
            active: true,
        });
        self.device_owners_stale = true;
        Ok(id)
    }

    /// Activates or deactivates a workload (launch / termination events
    /// for the controller's workload-change path).
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidDevice`] for unknown workload ids.
    pub fn set_workload_active(&mut self, id: WorkloadId, active: bool) -> Result<()> {
        let slot = self
            .slots
            .get_mut(id.index())
            .ok_or(A4Error::InvalidDevice { device: id.0 as u8 })?;
        slot.active = active;
        self.device_owners_stale = true;
        Ok(())
    }

    /// Flips a workload's phase (see [`Workload::set_phase`]).
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidDevice`] for unknown workload ids.
    pub fn set_workload_phase(&mut self, id: WorkloadId, phase: usize) -> Result<()> {
        let slot = self
            .slots
            .get_mut(id.index())
            .ok_or(A4Error::InvalidDevice { device: id.0 as u8 })?;
        slot.wl.set_phase(phase);
        Ok(())
    }

    /// Ids, names and static facts of all registered workloads.
    pub fn workload_ids(&self) -> Vec<WorkloadId> {
        self.slots.iter().map(|s| s.id).collect()
    }

    /// The cores a workload is pinned to.
    ///
    /// # Panics
    ///
    /// Panics for unknown ids.
    pub fn workload_cores(&self, id: WorkloadId) -> &[CoreId] {
        &self.slots[id.index()].cores
    }

    // ---- control plane (what A4 programs) --------------------------------

    /// Programs a CLOS capacity mask.
    ///
    /// # Errors
    ///
    /// Propagates CLOS-range and empty-mask errors.
    pub fn cat_set_mask(&mut self, clos: ClosId, mask: WayMask) -> Result<()> {
        self.hier.clos_mut().set_mask(clos, mask)
    }

    /// Moves every core of a workload into `clos`.
    ///
    /// # Errors
    ///
    /// Propagates core/CLOS range errors; unknown workloads are an
    /// [`A4Error::InvalidDevice`].
    pub fn cat_assign_workload(&mut self, id: WorkloadId, clos: ClosId) -> Result<()> {
        let cores: Vec<CoreId> = self
            .slots
            .get(id.index())
            .ok_or(A4Error::InvalidDevice { device: id.0 as u8 })?
            .cores
            .clone();
        for c in cores {
            self.hier.clos_mut().assign_core(c, clos)?;
        }
        Ok(())
    }

    /// Resets CAT to the power-on state (the *Default* baseline).
    pub fn cat_reset(&mut self) {
        self.hier.clos_mut().reset();
    }

    /// Programs per-device DCA via the port's `perfctrlsts_0` (A4's F2).
    ///
    /// # Errors
    ///
    /// Returns an error for unattached devices.
    pub fn set_device_dca(&mut self, dev: DeviceId, enable: bool) -> Result<()> {
        self.root.set_device_dca(dev, enable)
    }

    /// Whether a device's DMA writes currently use DCA.
    pub fn dca_enabled(&self, dev: DeviceId) -> bool {
        self.root.dca_enabled(dev)
    }

    /// Sets DCA globally (the BIOS-knob baseline).
    pub fn set_global_dca(&mut self, enable: bool) {
        self.root.set_global_dca(enable);
    }

    /// A device model (for assertions and occupancy checks).
    ///
    /// # Panics
    ///
    /// Panics for unknown device ids.
    pub fn device(&self, dev: DeviceId) -> &DeviceModel {
        &self.devices[dev.index()]
    }

    // ---- execution --------------------------------------------------------

    /// Rebuilds the device→owner map. Owners only change when workloads
    /// register or flip activity, so the per-quantum cost is a `bool`
    /// check rather than a slots×devices rescan.
    fn refresh_device_owners(&mut self) {
        for (i, owner) in self.device_owners.iter_mut().enumerate() {
            let dev = DeviceId(i as u8);
            // DMA of a device no active workload owns is accounted to the
            // explicit unattributed sentinel, never to workload 0.
            *owner = self
                .slots
                .iter()
                .find(|s| s.active && s.device == Some(dev))
                .map_or(WorkloadId::UNATTRIBUTED, |s| s.id);
        }
        self.device_owners_stale = false;
    }

    /// The workload currently owning (driving) `dev`, or
    /// [`WorkloadId::UNATTRIBUTED`] if no active workload claims it.
    pub fn device_owner(&mut self, dev: DeviceId) -> WorkloadId {
        if self.device_owners_stale {
            self.refresh_device_owners();
        }
        self.device_owners
            .get(dev.index())
            .copied()
            .unwrap_or(WorkloadId::UNATTRIBUTED)
    }

    /// Runs one quantum: devices DMA, workloads execute, memory interval
    /// closes.
    pub fn run_quantum(&mut self) {
        let dt = self.cfg.quantum;
        let now = self.now;
        if self.device_owners_stale {
            self.refresh_device_owners();
        }

        // 1. Devices DMA at their offered rates. Indexing keeps the
        // borrows field-disjoint (`devices` vs `hier`), so no device is
        // ever swapped out against a throwaway placeholder.
        for i in 0..self.devices.len() {
            let dev = self.devices[i].device();
            let dca = self.root.dca_enabled(dev);
            let owner = self.device_owners[i];
            self.devices[i].step(now, dt, &mut self.hier, dca, owner);
        }

        // 2. Workloads execute under their cycle budgets.
        let budget = self.cfg.cycles_per_quantum();
        let mem_factor = self.mem.latency_factor();
        let mut slots = std::mem::take(&mut self.slots);
        for slot in slots.iter_mut().filter(|s| s.active) {
            for (ci, &core) in slot.cores.iter().enumerate() {
                let mut ctx = CoreCtx {
                    core,
                    core_slot: ci,
                    wl: slot.id,
                    now,
                    budget,
                    used: 0.0,
                    hier: &mut self.hier,
                    devices: &mut self.devices,
                    perf: &mut slot.perf,
                    rng: &mut self.rng,
                    lat: self.cfg.latency,
                    mem_factor,
                    ns_per_cycle: self.cfg.ns_per_cycle(),
                };
                slot.wl.step(&mut ctx);
                let used = ctx.used;
                slot.perf.add_cycles(used.max(budget)); // idle cycles still elapse
            }
        }
        self.slots = slots;

        // 3. Memory interval: feed the traffic the hierarchy generated.
        // The memory model only needs the aggregate read/write line
        // counts, so the per-quantum snapshot is a single `Copy` of the
        // totals — the full per-workload tables are only diffed at
        // sampling cadence in `sample()`.
        let total = self.hier.stats().total;
        let r = total.mem_read_lines - self.quantum_total.mem_read_lines;
        let w = total.mem_write_lines - self.quantum_total.mem_write_lines;
        self.quantum_total = total;
        self.mem.record_read_lines(r);
        self.mem.record_write_lines(w);
        let traffic = self.mem.end_interval(dt);
        self.interval_mem_read += traffic.read;
        self.interval_mem_written += traffic.written;

        self.now += dt;
        self.quantum_count += 1;
        if self
            .quantum_count
            .is_multiple_of(self.cfg.quanta_per_second as u64)
        {
            self.logical_seconds += 1;
        }
    }

    /// Runs `n` quanta.
    pub fn run_quanta(&mut self, n: u64) {
        for _ in 0..n {
            self.run_quantum();
        }
    }

    /// Runs `n` logical seconds.
    pub fn run_logical_seconds(&mut self, n: u64) {
        self.run_quanta(n * self.cfg.quanta_per_second as u64);
    }

    /// Count of completed logical seconds.
    pub fn logical_seconds(&self) -> u64 {
        self.logical_seconds
    }

    // ---- monitoring --------------------------------------------------------

    /// Drains the current monitoring interval into a [`MonitorSample`] and
    /// starts a new one. Call once per logical second (or at any cadence —
    /// the sample covers exactly the time since the previous call).
    pub fn sample(&mut self) -> MonitorSample {
        let interval = self.now.saturating_sub(self.interval_start);
        let mut workloads = Vec::with_capacity(self.slots.len());
        // Interval cache counters come from the perf-take plus the
        // cumulative stats diffs tracked per workload below.
        for slot in self.slots.iter_mut().filter(|s| s.active) {
            let perf = slot.perf.take();
            let latency = WorkloadSample::latency_from_perf(&perf);
            workloads.push((
                slot.id,
                slot.name.clone(),
                slot.kind,
                slot.priority,
                perf,
                latency,
            ));
        }
        // Cache-side per-workload deltas: cumulative stats minus what the
        // previous sample consumed. `delta_into`/`copy_from` reuse the
        // snapshot and delta buffers, so sampling allocates no stat
        // tables.
        self.hier
            .stats()
            .delta_into(&self.sample_snapshot, &mut self.sample_delta);
        self.sample_snapshot.copy_from(self.hier.stats());
        let delta = &self.sample_delta;

        let workloads = workloads
            .into_iter()
            .map(|(id, name, kind, priority, perf, latency)| {
                let c = delta.workload(id);
                WorkloadSample {
                    id,
                    name,
                    kind,
                    priority,
                    accesses: c.accesses(),
                    llc_hit_rate: c.llc_hit_rate(),
                    llc_miss_rate: c.llc_miss_rate(),
                    mlc_miss_rate: c.mlc_miss_rate(),
                    instructions: perf.instructions(),
                    ipc: perf.ipc(),
                    ops: perf.ops_completed(),
                    io_bytes: perf.io_bytes(),
                    latency,
                    dca_allocs: c.dca_allocs,
                    dca_updates: c.dca_updates,
                    dma_leaks: c.dma_leaks,
                    dma_bloats: c.dma_bloats,
                    migrations: c.migrations,
                    dca_leak_rate: c.dca_leak_rate(),
                    mem_read_bytes: c.mem_read_lines * a4_model::LINE_BYTES,
                    mem_write_bytes: c.mem_write_lines * a4_model::LINE_BYTES,
                }
            })
            .collect();

        let devices = self
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let id = d.device();
                let dc = delta.device(id);
                let class = match d {
                    DeviceModel::Nic(_) => DeviceClass::Nic,
                    DeviceModel::Nvme(_) => DeviceClass::Nvme,
                };
                let (delivered, dropped) = match d {
                    DeviceModel::Nic(nic) => {
                        let snap = self.dev_snapshots[i];

                        (
                            nic.delivered_packets() - snap.delivered,
                            nic.dropped_packets() - snap.dropped,
                        )
                    }
                    DeviceModel::Nvme(_) => (0, 0),
                };
                DeviceSample {
                    id,
                    class,
                    dca_enabled: self.root.dca_enabled(id),
                    dma_write_bytes: dc.dma_write_lines * a4_model::LINE_BYTES,
                    dma_to_memory_bytes: dc.dma_to_memory_lines * a4_model::LINE_BYTES,
                    dma_read_bytes: dc.dma_read_lines * a4_model::LINE_BYTES,
                    dca_leak_rate: dc.dca_leak_rate(),
                    dropped_packets: dropped,
                    delivered_packets: delivered,
                }
            })
            .collect();

        // Roll device snapshots forward.
        for (i, d) in self.devices.iter().enumerate() {
            if let DeviceModel::Nic(nic) = d {
                self.dev_snapshots[i] = DevSnapshot {
                    delivered: nic.delivered_packets(),
                    dropped: nic.dropped_packets(),
                };
            }
        }

        let sample = MonitorSample {
            t: self.now,
            logical_second: self.logical_seconds,
            workloads,
            devices,
            mem_read: self.interval_mem_read,
            mem_written: self.interval_mem_written,
            time_dilation: self.cfg.time_dilation,
            interval,
        };
        self.interval_mem_read = Bytes::ZERO;
        self.interval_mem_written = Bytes::ZERO;
        self.interval_start = self.now;
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Workload, WorkloadInfo};
    use a4_model::WorkloadKind;

    #[derive(Debug)]
    struct Streamer {
        base: LineAddr,
        lines: u64,
        cursor: u64,
    }

    impl Workload for Streamer {
        fn info(&self) -> WorkloadInfo {
            WorkloadInfo {
                name: "streamer".into(),
                kind: WorkloadKind::NonIo,
                device: None,
            }
        }
        fn step(&mut self, ctx: &mut CoreCtx<'_>) {
            while ctx.has_budget() {
                ctx.read(self.base.offset(self.cursor % self.lines));
                self.cursor += 1;
                ctx.compute(5.0, 5);
            }
        }
    }

    fn sys() -> System {
        System::new(SystemConfig::small_test())
    }

    #[test]
    fn time_advances() {
        let mut s = sys();
        s.run_quanta(3);
        assert_eq!(s.now(), SimTime::from_micros(3));
        s.run_logical_seconds(1);
        assert_eq!(s.logical_seconds(), 1);
    }

    #[test]
    fn workload_registration_validates_cores() {
        let mut s = sys();
        let mk = || {
            Box::new(Streamer {
                base: LineAddr(0),
                lines: 8,
                cursor: 0,
            }) as Box<dyn Workload>
        };
        assert!(s.add_workload(mk(), vec![], Priority::High).is_err());
        assert!(s
            .add_workload(mk(), vec![CoreId(99)], Priority::High)
            .is_err());
        let id = s
            .add_workload(mk(), vec![CoreId(0)], Priority::High)
            .unwrap();
        // Core already pinned.
        assert!(s
            .add_workload(mk(), vec![CoreId(0)], Priority::Low)
            .is_err());
        // Deactivate frees the core.
        s.set_workload_active(id, false).unwrap();
        assert!(s.add_workload(mk(), vec![CoreId(0)], Priority::Low).is_ok());
    }

    #[test]
    fn registration_stops_before_the_unattributed_stat_row() {
        let mut s = sys();
        let mk = || {
            Box::new(Streamer {
                base: LineAddr(0),
                lines: 8,
                cursor: 0,
            }) as Box<dyn Workload>
        };
        // Register-and-deactivate until the table's second-to-last row;
        // the last row is reserved for WorkloadId::UNATTRIBUTED.
        for _ in 0..a4_cache::MAX_WORKLOADS - 1 {
            let id = s
                .add_workload(mk(), vec![CoreId(0)], Priority::Low)
                .unwrap();
            s.set_workload_active(id, false).unwrap();
        }
        assert!(
            s.add_workload(mk(), vec![CoreId(0)], Priority::Low)
                .is_err(),
            "the sentinel row must never be shared with a real workload"
        );
    }

    #[test]
    fn workload_executes_and_samples() {
        let mut s = sys();
        let base = s.alloc_lines(16);
        let wl = s
            .add_workload(
                Box::new(Streamer {
                    base,
                    lines: 16,
                    cursor: 0,
                }),
                vec![CoreId(0)],
                Priority::High,
            )
            .unwrap();
        s.run_logical_seconds(1);
        let sample = s.sample();
        let w = sample.workload(wl).expect("registered workload sampled");
        assert!(w.accesses > 100, "streamer issued accesses: {}", w.accesses);
        assert!(w.ipc > 0.0);
        assert!(w.instructions > 0);
        // Second interval is fresh.
        s.run_logical_seconds(1);
        let sample2 = s.sample();
        let w2 = sample2.workload(wl).unwrap();
        assert!(w2.accesses > 0);
        // Steady state: a 64-line working set fits the MLC => mostly hits.
        assert!(
            w2.mlc_miss_rate < 0.1,
            "a 16-line set fits the 32-line MLC: miss rate {}",
            w2.mlc_miss_rate
        );
    }

    #[test]
    fn determinism_same_seed_same_counters() {
        let run = || {
            let mut s = sys();
            let base = s.alloc_lines(512);
            s.add_workload(
                Box::new(Streamer {
                    base,
                    lines: 512,
                    cursor: 0,
                }),
                vec![CoreId(1)],
                Priority::High,
            )
            .unwrap();
            s.run_logical_seconds(2);
            let sample = s.sample();
            let w = &sample.workloads[0];
            (w.accesses, w.instructions, w.llc_hit_rate.to_bits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn device_attach_and_dca_control() {
        let mut s = sys();
        let nic = s
            .attach_nic(PortId(0), NicConfig::connectx6_100g(1, 8, 64))
            .unwrap();
        let ssd = s
            .attach_nvme(PortId(1), NvmeConfig::raid0_980pro_x4())
            .unwrap();
        assert!(s.dca_enabled(nic));
        s.set_device_dca(ssd, false).unwrap();
        assert!(!s.dca_enabled(ssd));
        assert!(s.dca_enabled(nic));
        s.set_global_dca(false);
        assert!(!s.dca_enabled(nic));
        // NIC traffic flows even with nobody consuming.
        s.set_global_dca(true);
        s.run_quanta(5);
        let sample = s.sample();
        let d = sample.device(nic).unwrap();
        assert!(d.dma_write_bytes > 0);
    }

    #[test]
    fn mem_interval_bytes_accumulate() {
        let mut s = sys();
        let base = s.alloc_lines(4096);
        s.add_workload(
            Box::new(Streamer {
                base,
                lines: 4096,
                cursor: 0,
            }),
            vec![CoreId(0)],
            Priority::Low,
        )
        .unwrap();
        s.run_logical_seconds(1);
        let sample = s.sample();
        assert!(
            sample.mem_read.as_u64() > 0,
            "a 4096-line stream misses everywhere"
        );
        assert!(sample.mem_read_gbps() > 0.0);
    }

    #[test]
    fn cat_control_plane() {
        let mut s = sys();
        let base = s.alloc_lines(8);
        let wl = s
            .add_workload(
                Box::new(Streamer {
                    base,
                    lines: 8,
                    cursor: 0,
                }),
                vec![CoreId(2), CoreId(3)],
                Priority::Low,
            )
            .unwrap();
        s.cat_set_mask(ClosId(2), WayMask::from_paper_range(7, 8).unwrap())
            .unwrap();
        s.cat_assign_workload(wl, ClosId(2)).unwrap();
        assert_eq!(
            s.hierarchy().clos().mask_for_core(CoreId(3)),
            WayMask::from_paper_range(7, 8).unwrap()
        );
        s.cat_reset();
        assert_eq!(s.hierarchy().clos().mask_for_core(CoreId(3)), WayMask::ALL);
        assert!(s.cat_assign_workload(WorkloadId(99), ClosId(0)).is_err());
    }
}
