//! System-level configuration.

use a4_cache::{HierarchyConfig, UpiTopology};
use a4_mem::MemoryConfig;
use a4_model::{A4Error, Result, SimTime, MAX_SOCKETS};
use serde::{Deserialize, Serialize};

/// Cycle costs of the memory hierarchy levels, in core cycles.
///
/// These are *effective amortized* costs, not raw load-to-use latencies:
/// out-of-order cores overlap several outstanding misses (MLP ≈ 4 on
/// streaming code), so a raw ~14/55/210-cycle Skylake hierarchy behaves
/// like ~4/14/60 cycles per access in throughput terms. Without this the
/// modelled cores could not sustain line-rate DPDK at 100 Gbps the way
/// the paper's testbed does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Effective cycles for an MLC hit.
    pub mlc_cycles: f64,
    /// Effective cycles for an LLC hit.
    pub llc_cycles: f64,
    /// Effective cycles for a DRAM access at idle; multiplied by the
    /// memory controller's loaded-latency factor.
    pub mem_cycles: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            mlc_cycles: 4.0,
            llc_cycles: 14.0,
            mem_cycles: 60.0,
        }
    }
}

/// Everything needed to build a [`crate::System`].
///
/// # Examples
///
/// ```
/// use a4_sim::SystemConfig;
///
/// let cfg = SystemConfig::xeon_gold_6140();
/// assert_eq!(cfg.hierarchy.cores, 18);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Cache hierarchy geometry of *one socket* (all sockets share it).
    pub hierarchy: HierarchyConfig,
    /// Number of CPU sockets. Each socket owns a full [`HierarchyConfig`]
    /// worth of cores, MLCs, LLC, DCA ways and CLOS tables; sockets share
    /// the memory model and are joined by a UPI link whose hop costs
    /// [`SystemConfig::upi_ns`]. Core ids are global:
    /// socket = `core / hierarchy.cores`.
    pub sockets: usize,
    /// Extra latency of one cross-socket (UPI) hop in nanoseconds,
    /// charged per line whenever a core touches a remotely-homed buffer.
    /// Ignored on single-socket systems.
    pub upi_ns: u64,
    /// Per-direction UPI link capacity in GB/s. `None` (the historical
    /// model) never throttles: remote lines cost the fixed hop latency at
    /// any offered load. `Some(gbps)` adds a per-line serialization term
    /// and a utilization-driven queueing factor, so offered load beyond
    /// capacity inflates per-line latency until throughput flattens at
    /// the link's capacity.
    #[serde(default)]
    pub upi_gbps: Option<f64>,
    /// How sockets are wired: mesh (every pair one hop) or ring
    /// (shortest-way-around hop counts). Irrelevant below three sockets.
    #[serde(default)]
    pub upi_topology: UpiTopology,
    /// Capacity, in lines, of each socket's remote-requester cache — a
    /// small direct-mapped cache of remotely-homed lines that spares hot
    /// working sets from re-crossing UPI on every access. Zero disables
    /// it (the historical always-re-cross model).
    #[serde(default)]
    pub remote_cache_lines: usize,
    /// DRAM model parameters.
    pub memory: MemoryConfig,
    /// Hierarchy level costs.
    pub latency: LatencyModel,
    /// Core frequency in GHz (Table 1: 2.3 GHz, Turbo off).
    pub cpu_freq_ghz: f64,
    /// Simulation quantum.
    pub quantum: SimTime,
    /// Quanta per *logical second* (the monitoring interval unit).
    pub quanta_per_second: u32,
    /// PCIe root ports available.
    pub pcie_ports: usize,
    /// Time-dilation factor: one logical second of simulated time stands
    /// for `time_dilation` × its wall-clock length of real operation.
    /// Bandwidth figures are scaled by this for paper-comparable display.
    pub time_dilation: f64,
    /// RNG seed; identical seeds reproduce identical runs bit for bit.
    pub seed: u64,
}

impl SystemConfig {
    /// The capacity-scaled stand-in for the paper's server (Table 1):
    /// 18 cores @ 2.3 GHz, 11-way non-inclusive LLC, DDR4-2666 × 6.
    ///
    /// A logical second is 1 ms of simulated time (100 × 10 µs quanta);
    /// device and memory rates are kept physical, so capacities turn over
    /// ~1000× faster than real time — hence `time_dilation = 1000` for
    /// bandwidth display.
    pub fn xeon_gold_6140() -> Self {
        SystemConfig {
            hierarchy: HierarchyConfig::scaled_xeon_6140(18),
            sockets: 1,
            // Loaded remote-read penalty of a Skylake-SP UPI hop (~1.3×
            // local DRAM latency observed as ~70-90 ns extra).
            upi_ns: 80,
            // Unthrottled by default: figures that study saturation opt
            // in via SystemTweaks::upi_gbps.
            upi_gbps: None,
            upi_topology: UpiTopology::Mesh,
            // ~1 LLC way's worth of requester-side caching per socket.
            remote_cache_lines: 1024,
            memory: MemoryConfig::ddr4_2666_6ch(),
            latency: LatencyModel::default(),
            cpu_freq_ghz: 2.3,
            // 1 us quanta keep device DMA and core consumption finely
            // interleaved: a 10 us quantum would burst ~2x the DCA-way
            // capacity of line-rate NIC traffic before any core could
            // consume it, grossly overstating DMA leak.
            quantum: SimTime::from_micros(1),
            quanta_per_second: 1000,
            pcie_ports: 6,
            time_dilation: 1000.0,
            seed: 0xA4A4_2025,
        }
    }

    /// A small, fast configuration for unit tests.
    pub fn small_test() -> Self {
        SystemConfig {
            hierarchy: HierarchyConfig::small_test(),
            sockets: 1,
            upi_ns: 80,
            upi_gbps: None,
            upi_topology: UpiTopology::Mesh,
            remote_cache_lines: 16,
            memory: MemoryConfig::ddr4_2666_6ch(),
            latency: LatencyModel::default(),
            cpu_freq_ghz: 2.3,
            quantum: SimTime::from_micros(1),
            quanta_per_second: 10,
            pcie_ports: 4,
            time_dilation: 1000.0,
            seed: 7,
        }
    }

    /// Cycle budget of one core for one quantum.
    pub fn cycles_per_quantum(&self) -> f64 {
        self.cpu_freq_ghz * self.quantum.as_nanos() as f64
    }

    /// Total cores across all sockets (core ids are global).
    pub fn total_cores(&self) -> usize {
        self.sockets * self.hierarchy.cores
    }

    /// One UPI hop in core cycles.
    pub fn upi_cycles(&self) -> f64 {
        self.upi_ns as f64 * self.cpu_freq_ghz
    }

    /// Nanoseconds per core cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1.0 / self.cpu_freq_ghz
    }

    /// Length of one logical second in simulated time.
    pub fn logical_second(&self) -> SimTime {
        SimTime::from_nanos(self.quantum.as_nanos() * self.quanta_per_second as u64)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`A4Error::InvalidConfig`] for non-positive frequency,
    /// quantum, dilation or quanta count, and propagates hierarchy /
    /// memory validation errors.
    pub fn validate(&self) -> Result<()> {
        self.hierarchy.validate()?;
        self.memory.validate()?;
        if !(1..=MAX_SOCKETS).contains(&self.sockets) {
            return Err(A4Error::InvalidConfig {
                what: "sockets must be in 1..=4",
            });
        }
        if self.upi_gbps.is_some_and(|g| g <= 0.0) {
            return Err(A4Error::InvalidConfig {
                what: "upi link capacity must be positive when set",
            });
        }
        if self.cpu_freq_ghz <= 0.0 {
            return Err(A4Error::InvalidConfig {
                what: "cpu frequency must be positive",
            });
        }
        if self.quantum == SimTime::ZERO || self.quanta_per_second == 0 {
            return Err(A4Error::InvalidConfig {
                what: "quantum and quanta/second must be nonzero",
            });
        }
        if self.pcie_ports == 0 {
            return Err(A4Error::InvalidConfig {
                what: "need at least one pcie port",
            });
        }
        if self.time_dilation <= 0.0 {
            return Err(A4Error::InvalidConfig {
                what: "time dilation must be positive",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SystemConfig::xeon_gold_6140().validate().unwrap();
        SystemConfig::small_test().validate().unwrap();
    }

    #[test]
    fn derived_quantities() {
        let cfg = SystemConfig::xeon_gold_6140();
        assert_eq!(cfg.cycles_per_quantum(), 2_300.0);
        assert!((cfg.ns_per_cycle() - 0.4348).abs() < 1e-3);
        assert_eq!(cfg.logical_second(), SimTime::from_millis(1));
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut cfg = SystemConfig::small_test();
        cfg.cpu_freq_ghz = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::small_test();
        cfg.quanta_per_second = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::small_test();
        cfg.pcie_ports = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::small_test();
        cfg.time_dilation = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::small_test();
        cfg.sockets = 0;
        assert!(cfg.validate().is_err());
        cfg.sockets = MAX_SOCKETS + 1;
        assert!(cfg.validate().is_err());
        cfg.sockets = MAX_SOCKETS;
        assert!(cfg.validate().is_ok());
        cfg.sockets = 2;
        assert!(cfg.validate().is_ok());
        let mut cfg = SystemConfig::small_test();
        cfg.upi_gbps = Some(0.0);
        assert!(cfg.validate().is_err());
        cfg.upi_gbps = Some(-1.0);
        assert!(cfg.validate().is_err());
        cfg.upi_gbps = Some(10.4);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn upi_defaults_reproduce_the_historical_model() {
        // Configs serialized before the bandwidth model round-trip to an
        // unthrottled mesh with the requester cache disabled.
        let cfg = SystemConfig::small_test();
        let json = serde_json::to_string(&cfg)
            .unwrap()
            .replace("\"upi_gbps\":null,", "")
            .replace("\"upi_topology\":\"Mesh\",", "")
            .replace("\"remote_cache_lines\":16,", "");
        assert!(!json.contains("upi_gbps"), "field stripping failed: {json}");
        let old: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(old.upi_gbps, None);
        assert_eq!(old.upi_topology, UpiTopology::Mesh);
        assert_eq!(old.remote_cache_lines, 0);
    }

    #[test]
    fn upi_hop_converts_to_cycles() {
        let mut cfg = SystemConfig::small_test();
        cfg.upi_ns = 100;
        assert!((cfg.upi_cycles() - 230.0).abs() < 1e-9);
        assert_eq!(cfg.total_cores(), 4);
        cfg.sockets = 2;
        assert_eq!(cfg.total_cores(), 8);
    }

    #[test]
    fn latency_model_defaults_are_ordered() {
        let m = LatencyModel::default();
        assert!(m.mlc_cycles < m.llc_cycles);
        assert!(m.llc_cycles < m.mem_cycles);
    }
}
