//! Per-workload performance accounting beyond the raw cache counters.

use a4_model::Histogram;
use serde::{Deserialize, Serialize};

/// Which latency component a recorded sample belongs to.
///
/// Network workloads use the first four slots (the paper's Fig. 14a
/// breakdown); storage workloads use the last four (Fig. 14b). The slots
/// are disjoint per workload kind, so one histogram bank serves both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(usize)]
pub enum LatencyKind {
    /// NIC-to-host: DMA completion to ring pop (queueing).
    NetQueue = 0,
    /// Packet-pointer (descriptor) access.
    NetPointer = 1,
    /// Payload processing.
    NetProcess = 2,
    /// End-to-end packet latency.
    NetTotal = 3,
    /// Storage block read: submit to completion.
    StorageRead = 4,
    /// Post-read processing (the paper's regex pass).
    StorageRegex = 5,
    /// Storage block write: submit to completion.
    StorageWrite = 6,
    /// End-to-end storage transaction latency.
    StorageTotal = 7,
}

const KINDS: usize = 8;

/// Mutable per-workload performance state for the current monitoring
/// interval: instructions, cycles, operation counts and latency
/// histograms. The sampler drains it once per logical second.
///
/// # Examples
///
/// ```
/// use a4_sim::{LatencyKind, WorkloadPerf};
///
/// let mut perf = WorkloadPerf::new();
/// perf.add_cycles(200.0);
/// perf.add_instructions(100);
/// assert!((perf.ipc() - 0.5).abs() < 1e-12);
/// perf.record_latency(LatencyKind::NetTotal, 1_000);
/// assert_eq!(perf.histogram(LatencyKind::NetTotal).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPerf {
    instructions: u64,
    cycles: f64,
    ops_completed: u64,
    io_bytes: u64,
    hists: Vec<Histogram>,
}

impl Default for WorkloadPerf {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadPerf {
    /// Creates zeroed state.
    pub fn new() -> Self {
        WorkloadPerf {
            instructions: 0,
            cycles: 0.0,
            ops_completed: 0,
            io_bytes: 0,
            hists: (0..KINDS).map(|_| Histogram::new()).collect(),
        }
    }

    /// Adds retired instructions.
    #[inline]
    pub fn add_instructions(&mut self, n: u64) {
        self.instructions += n;
    }

    /// Adds consumed core cycles.
    #[inline]
    pub fn add_cycles(&mut self, c: f64) {
        self.cycles += c;
    }

    /// Adds completed high-level operations (packets, blocks, requests).
    #[inline]
    pub fn add_ops(&mut self, n: u64) {
        self.ops_completed += n;
    }

    /// Adds I/O payload bytes moved on behalf of the workload.
    #[inline]
    pub fn add_io_bytes(&mut self, n: u64) {
        self.io_bytes += n;
    }

    /// Records one latency sample in nanoseconds.
    pub fn record_latency(&mut self, kind: LatencyKind, ns: u64) {
        self.hists[kind as usize].record(ns);
    }

    /// Instructions retired this interval.
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Cycles consumed this interval.
    #[inline]
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Operations completed this interval.
    #[inline]
    pub fn ops_completed(&self) -> u64 {
        self.ops_completed
    }

    /// I/O bytes this interval.
    #[inline]
    pub fn io_bytes(&self) -> u64 {
        self.io_bytes
    }

    /// Instructions per cycle; `0.0` before any cycle is consumed.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// One latency histogram.
    pub fn histogram(&self, kind: LatencyKind) -> &Histogram {
        &self.hists[kind as usize]
    }

    /// Drains the interval: returns the accumulated state and resets.
    pub fn take(&mut self) -> WorkloadPerf {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let perf = WorkloadPerf::new();
        assert_eq!(perf.ipc(), 0.0);
    }

    #[test]
    fn accumulation_and_take() {
        let mut perf = WorkloadPerf::new();
        perf.add_instructions(10);
        perf.add_cycles(20.0);
        perf.add_ops(2);
        perf.add_io_bytes(128);
        perf.record_latency(LatencyKind::StorageRead, 500);
        let drained = perf.take();
        assert_eq!(drained.instructions(), 10);
        assert_eq!(drained.ops_completed(), 2);
        assert_eq!(drained.io_bytes(), 128);
        assert_eq!(drained.histogram(LatencyKind::StorageRead).count(), 1);
        // Reset after take.
        assert_eq!(perf.instructions(), 0);
        assert_eq!(perf.histogram(LatencyKind::StorageRead).count(), 0);
    }

    #[test]
    fn kinds_map_to_distinct_slots() {
        let mut perf = WorkloadPerf::new();
        for (i, kind) in [
            LatencyKind::NetQueue,
            LatencyKind::NetPointer,
            LatencyKind::NetProcess,
            LatencyKind::NetTotal,
            LatencyKind::StorageRead,
            LatencyKind::StorageRegex,
            LatencyKind::StorageWrite,
            LatencyKind::StorageTotal,
        ]
        .into_iter()
        .enumerate()
        {
            perf.record_latency(kind, (i as u64 + 1) * 100);
        }
        assert_eq!(perf.histogram(LatencyKind::NetQueue).count(), 1);
        assert_eq!(perf.histogram(LatencyKind::StorageTotal).count(), 1);
        assert!(perf.histogram(LatencyKind::NetTotal).mean() < 500.0);
    }
}
