//! A minimal hand-rolled Rust lexer: just enough fidelity to tell code
//! from comments, string literals and char literals, so the rule engine
//! never fires on a forbidden name that only appears in prose or test
//! fixtures embedded as strings.
//!
//! The lexer understands:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments;
//! * string literals with escapes, byte strings, and raw (byte) strings
//!   with any number of `#` guards;
//! * char literals vs lifetimes (`'a'` vs `'a`), including escaped
//!   chars (`'\''`, `'\u{7f}'`);
//! * identifiers, numeric literals (hex, floats, exponents), and
//!   single-char punctuation.
//!
//! It deliberately does **not** build an AST: the rules downstream are
//! token patterns plus brace-depth tracking, which is all the
//! determinism and counter-safety contracts need.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `wrapping_add`, `_`).
    Ident,
    /// A single punctuation character (`.`, `{`, `:`).
    Punct,
    /// A string or byte-string literal (escaped or raw).
    Str,
    /// A char or byte-char literal.
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's text (for [`TokenKind::Punct`], the single char).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation char `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment (line or block) with its 1-based starting line. Doc
/// comments are comments too — the waiver parser looks for the
/// `a4-lint:` marker itself.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// literals simply run to end of input (the real compiler rejects such
/// files long before the linter matters).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes one char, tracking newlines.
    fn bump(&mut self) {
        if self.peek(0) == Some('\n') {
            self.line += 1;
        }
        self.i += 1;
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => self.bump(),
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.char_or_lifetime(),
                'r' | 'b' if self.raw_or_byte() => {}
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    self.push(TokenKind::Punct, c.to_string(), line);
                    self.bump();
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.i += 2;
        let start = self.i;
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.i += 2;
        let start = self.i;
        let mut depth = 1usize;
        let mut end = self.i;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    end = self.i;
                    self.i += 2;
                }
                (Some(_), _) => {
                    self.bump();
                    end = self.i;
                }
                (None, _) => break,
            }
        }
        let text: String = self.chars[start..end.max(start)].iter().collect();
        self.out.comments.push(Comment { text, line });
    }

    /// Consumes an escaped string body after the opening quote.
    fn string_body(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        self.string_body();
        self.push(TokenKind::Str, String::new(), line);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `b'x'`, `br#"..."#`.
    /// Returns false (consuming nothing) if the `r`/`b` starts a plain
    /// identifier instead.
    fn raw_or_byte(&mut self) -> bool {
        let line = self.line;
        let c = self.peek(0).unwrap_or(' ');
        // Byte char: b'x'.
        if c == 'b' && self.peek(1) == Some('\'') {
            self.i += 2;
            self.char_body();
            self.push(TokenKind::Char, String::new(), line);
            return true;
        }
        // Escaped byte string: b"...".
        if c == 'b' && self.peek(1) == Some('"') {
            self.i += 2;
            self.string_body();
            self.push(TokenKind::Str, String::new(), line);
            return true;
        }
        // Raw (byte) string: r##"..."##, br#"..."#.
        let after_prefix = match (c, self.peek(1)) {
            ('r', _) => 1,
            ('b', Some('r')) => 2,
            _ => return false,
        };
        let mut hashes = 0usize;
        while self.peek(after_prefix + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(after_prefix + hashes) != Some('"') {
            return false;
        }
        for _ in 0..after_prefix + hashes + 1 {
            self.bump();
        }
        // Scan for `"` followed by `hashes` hash marks.
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        self.bump();
                        continue 'outer;
                    }
                }
                for _ in 0..hashes + 1 {
                    self.bump();
                }
                break;
            }
            self.bump();
        }
        self.push(TokenKind::Str, String::new(), line);
        true
    }

    /// Consumes a char-literal body after the opening quote (escape or
    /// single char, then the closing quote).
    fn char_body(&mut self) {
        if self.peek(0) == Some('\\') {
            self.bump();
            self.bump();
            // `'\u{7f}'`: consume to the closing brace.
            while self.peek(0).is_some_and(|c| c != '\'') {
                self.bump();
            }
            self.bump();
        } else {
            self.bump();
            if self.peek(0) == Some('\'') {
                self.bump();
            }
        }
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // `'a'` is a char literal; `'a` (no closing quote) a lifetime.
        let is_char = self.peek(1) == Some('\\') || self.peek(2) == Some('\'');
        if is_char {
            self.bump();
            self.char_body();
            self.push(TokenKind::Char, String::new(), line);
        } else {
            self.bump();
            let start = self.i;
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.i += 1;
            }
            let text: String = self.chars[start..self.i].iter().collect();
            self.push(TokenKind::Lifetime, text, line);
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.i;
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.i += 1;
        }
        // Fractional part (`1.5`, but not the range `1..5`).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.i += 1;
            }
        }
        // Signed exponent (`1e-5`, `1.5E+3`).
        if self.chars[self.i - 1].eq_ignore_ascii_case(&'e')
            && matches!(self.peek(0), Some('+') | Some('-'))
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.i += 1;
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.i += 1;
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokenKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r####"
            // wrapping_add in a comment
            /* HashMap in /* a nested */ block */
            let s = "thread_rng inside a string";
            let r = r#"SystemTime inside a raw string"#;
            let b = b"Instant bytes";
            real_ident();
        "####;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        for hidden in [
            "wrapping_add",
            "HashMap",
            "thread_rng",
            "SystemTime",
            "Instant",
        ] {
            assert!(!ids.contains(&hidden.to_string()), "{hidden} leaked");
        }
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' } let q = '\\''; ");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn lines_are_tracked_through_multiline_literals() {
        let src = "let a = \"x\ny\";\nlet marker = 1;";
        let lexed = lex(src);
        let marker = lexed.tokens.iter().find(|t| t.is_ident("marker")).unwrap();
        assert_eq!(marker.line, 3);
    }

    #[test]
    fn waiver_comments_are_captured_with_lines() {
        let src = "let x = 1; // a4-lint: allow(counter-safety) -- reason\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("a4-lint"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let lexed = lex("for i in 0..16 { }");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "16"]);
    }
}
