//! Inline lint waivers: `// a4-lint: allow(<rule>) -- <reason>`.
//!
//! A waiver must carry a reason — the whole point of the contract is
//! that every exemption is an argued decision, not a reflex. Three
//! scopes exist:
//!
//! * `allow(rule)` — waives findings on the comment's own line
//!   (trailing comment) or, for a comment alone on its line, on the
//!   next line that holds code;
//! * `allow-fn(rule)` — placed directly above a `fn` item (doc
//!   comments and attributes may sit between), waives findings in that
//!   function's whole body — for functions *built out of* the waived
//!   construct (hash mixers, SWAR tricks);
//! * `allow-file(rule)` — waives the rule for the entire file; reserve
//!   it for files whose purpose is the waived construct.
//!
//! A waiver that suppresses nothing is itself reported
//! ([`crate::rules::RuleId::UnusedWaiver`]), so stale exemptions cannot
//! quietly outlive the code they excused.

use crate::lexer::{Comment, Token};
use crate::rules::RuleId;

/// How far a waiver reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The comment's own line, or the next code line.
    Line,
    /// The body of the next `fn` item.
    Fn,
    /// The whole file.
    File,
}

/// One parsed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule being waived.
    pub rule: RuleId,
    /// The waiver's reach.
    pub scope: Scope,
    /// The mandatory justification (after `--`).
    pub reason: String,
    /// 1-based line of the waiver comment.
    pub line: u32,
}

/// A malformed waiver comment (reported as a finding by the engine).
#[derive(Debug, Clone)]
pub struct WaiverError {
    /// 1-based line of the offending comment.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Extracts waivers from `comments`. Comments mentioning `a4-lint`
/// that fail to parse — unknown rule, missing reason, mangled syntax —
/// become [`WaiverError`]s and are **not** honored, so a typo can only
/// make the lint stricter, never quieter.
pub fn parse_waivers(comments: &[Comment]) -> (Vec<Waiver>, Vec<WaiverError>) {
    let mut waivers = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        // Doc comments keep their extra `/`/`!` in the text; strip.
        let text = c.text.trim_start_matches(['/', '!']).trim();
        // A waiver is the comment's entire content: it must *start*
        // with the marker. Prose that merely mentions a4-lint (docs,
        // this file) is not a waiver attempt.
        if !text.starts_with("a4-lint") {
            continue;
        }
        let Some(rest) = text.strip_prefix("a4-lint:") else {
            errors.push(WaiverError {
                line: c.line,
                message: "mangled waiver: expected `a4-lint: allow(<rule>) -- <reason>`"
                    .to_string(),
            });
            continue;
        };
        match parse_directive(rest.trim()) {
            Ok((rule, scope, reason)) => waivers.push(Waiver {
                rule,
                scope,
                reason,
                line: c.line,
            }),
            Err(message) => errors.push(WaiverError {
                line: c.line,
                message,
            }),
        }
    }
    (waivers, errors)
}

fn parse_directive(s: &str) -> Result<(RuleId, Scope, String), String> {
    let (scope, rest) = if let Some(r) = s.strip_prefix("allow-file") {
        (Scope::File, r)
    } else if let Some(r) = s.strip_prefix("allow-fn") {
        (Scope::Fn, r)
    } else if let Some(r) = s.strip_prefix("allow") {
        (Scope::Line, r)
    } else {
        return Err(format!(
            "unknown waiver directive {s:?}: expected allow / allow-fn / allow-file"
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("waiver needs a rule: `allow(<rule>) -- <reason>`".to_string());
    };
    let Some((rule_name, rest)) = rest.split_once(')') else {
        return Err("unclosed `(` in waiver".to_string());
    };
    let rule_name = rule_name.trim();
    let Some(rule) = RuleId::parse(rule_name) else {
        return Err(format!(
            "waiver names unknown rule {rule_name:?} (see `a4-lint --list-rules`)"
        ));
    };
    let Some((_, reason)) = rest.split_once("--") else {
        return Err(format!(
            "waiver for `{rule_name}` has no reason: append ` -- <why this is sound>`"
        ));
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err(format!(
            "waiver for `{rule_name}` has an empty reason: append ` -- <why this is sound>`"
        ));
    }
    Ok((rule, scope, reason.to_string()))
}

/// The line a [`Scope::Line`] waiver protects: its own line if code
/// shares it (trailing comment), else the first later line holding a
/// token.
pub fn target_line(waiver_line: u32, tokens: &[Token]) -> u32 {
    if tokens.iter().any(|t| t.line == waiver_line) {
        return waiver_line;
    }
    tokens
        .iter()
        .map(|t| t.line)
        .find(|&l| l > waiver_line)
        .unwrap_or(waiver_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn one(src: &str) -> Result<Waiver, WaiverError> {
        let lexed = lex(src);
        let (mut ws, mut es) = parse_waivers(&lexed.comments);
        match (ws.pop(), es.pop()) {
            (Some(w), None) => Ok(w),
            (None, Some(e)) => Err(e),
            other => panic!("expected exactly one parse result, got {other:?}"),
        }
    }

    #[test]
    fn parses_all_scopes_with_reasons() {
        let w = one("// a4-lint: allow(counter-safety) -- FNV mixing\n").unwrap();
        assert_eq!((w.rule, w.scope), (RuleId::CounterSafety, Scope::Line));
        assert_eq!(w.reason, "FNV mixing");
        let w = one("// a4-lint: allow-fn(entropy) -- seeded generator\n").unwrap();
        assert_eq!((w.rule, w.scope), (RuleId::Entropy, Scope::Fn));
        let w = one("// a4-lint: allow-file(hash-collections) -- display only\n").unwrap();
        assert_eq!((w.rule, w.scope), (RuleId::HashCollections, Scope::File));
    }

    #[test]
    fn missing_reason_is_rejected() {
        let e = one("// a4-lint: allow(counter-safety)\n").unwrap_err();
        assert!(e.message.contains("no reason"), "{}", e.message);
        let e = one("// a4-lint: allow(counter-safety) -- \n").unwrap_err();
        assert!(e.message.contains("empty reason"), "{}", e.message);
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let e = one("// a4-lint: allow(no-such-rule) -- because\n").unwrap_err();
        assert!(e.message.contains("unknown rule"), "{}", e.message);
    }

    #[test]
    fn mangled_marker_is_rejected_not_ignored() {
        let e = one("// a4-lint allow(counter-safety) -- typo, no colon\n").unwrap_err();
        assert!(e.message.contains("mangled"), "{}", e.message);
    }

    #[test]
    fn target_line_trailing_vs_standalone() {
        let lexed = lex("let x = 1; // trailing\n\nlet y = 2;\n");
        assert_eq!(target_line(1, &lexed.tokens), 1);
        let lexed = lex("// standalone\n\nlet y = 2;\n");
        assert_eq!(target_line(1, &lexed.tokens), 3);
    }
}
