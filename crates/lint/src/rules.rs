//! The rule engine: token-pattern checks over a lexed file, with
//! per-file rule sets (tiers), `#[cfg(test)]` exclusion, and waiver
//! suppression.
//!
//! Every rule guards an invariant the workspace's tests and services
//! rely on but the compiler cannot see:
//!
//! * the **sim-deterministic** rules reject anything that could break
//!   bit-for-bit replay of a simulation (wall clocks, environment
//!   reads, randomized-iteration collections, ambient entropy);
//! * **counter-safety** rejects `wrapping_add`/`wrapping_sub`/
//!   `wrapping_mul` outside designated hash/RNG sites — the class of
//!   bug behind the fio double-reap, where a wrapped occupancy counter
//!   silently halted an engine;
//! * the **service** rules reject `unwrap()`/`expect()` and silent
//!   `let _ =` on I/O in fleet-worker paths, where a panic kills a
//!   worker and a swallowed error hides a dying store.

use crate::lexer::{lex, Token, TokenKind};
use crate::waiver::{parse_waivers, target_line, Scope};
use std::fmt;

/// Every rule the engine knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleId {
    /// `SystemTime` / `Instant` in simulation code.
    WallClock,
    /// `std::env` reads in simulation code.
    EnvRead,
    /// `HashMap` / `HashSet` in simulation code.
    HashCollections,
    /// Ambient entropy (`thread_rng`, `OsRng`, `from_entropy`).
    Entropy,
    /// `wrapping_add` / `wrapping_sub` / `wrapping_mul` outside
    /// designated hash/RNG sites.
    CounterSafety,
    /// `.unwrap()` / `.expect(..)` in service paths.
    PanicUnwrap,
    /// `let _ =` discarding a fallible I/O result in service paths.
    SilentIo,
    /// Bare `std::fs` access in store/queue paths that must route
    /// filesystem mutations through the `Fs` seam for fault injection.
    FsSeam,
    /// A struct's fields are not all named in its mirror functions
    /// (see [`crate::mirror`]).
    Mirror,
    /// A malformed waiver comment (unknown rule, missing reason).
    WaiverSyntax,
    /// A waiver that suppressed nothing.
    UnusedWaiver,
}

impl RuleId {
    /// The rule's name as used in waivers and reports.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::WallClock => "wall-clock",
            RuleId::EnvRead => "env-read",
            RuleId::HashCollections => "hash-collections",
            RuleId::Entropy => "entropy",
            RuleId::CounterSafety => "counter-safety",
            RuleId::PanicUnwrap => "panic-unwrap",
            RuleId::SilentIo => "silent-io",
            RuleId::FsSeam => "fs-seam",
            RuleId::Mirror => "mirror",
            RuleId::WaiverSyntax => "waiver-syntax",
            RuleId::UnusedWaiver => "unused-waiver",
        }
    }

    /// Parses a rule name (waivers may only name waivable rules).
    pub fn parse(name: &str) -> Option<RuleId> {
        RuleId::WAIVABLE.iter().copied().find(|r| r.name() == name)
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::WallClock => "forbids SystemTime/Instant: sim time must come from SimTime",
            RuleId::EnvRead => "forbids std::env reads: behaviour must be a function of the spec",
            RuleId::HashCollections => {
                "forbids HashMap/HashSet: iteration order breaks bit-for-bit replay"
            }
            RuleId::Entropy => "forbids thread_rng/OsRng/from_entropy: RNGs must be seeded",
            RuleId::CounterSafety => {
                "forbids wrapping_add/sub/mul outside designated hash/RNG sites"
            }
            RuleId::PanicUnwrap => "forbids unwrap()/expect(): a panic kills a fleet worker",
            RuleId::SilentIo => "forbids `let _ =` on fallible I/O: propagate or warn",
            RuleId::FsSeam => {
                "forbids bare std::fs in store/queue paths: route through the Fs seam \
                 so fault injection and crash tests cover the operation"
            }
            RuleId::Mirror => "struct fields must appear in every designated mirror function",
            RuleId::WaiverSyntax => "waivers must name a known rule and carry a `-- <reason>`",
            RuleId::UnusedWaiver => "waivers that suppress nothing must be removed",
        }
    }

    /// The rules a waiver may name (the meta rules are not waivable).
    pub const WAIVABLE: &'static [RuleId] = &[
        RuleId::WallClock,
        RuleId::EnvRead,
        RuleId::HashCollections,
        RuleId::Entropy,
        RuleId::CounterSafety,
        RuleId::PanicUnwrap,
        RuleId::SilentIo,
        RuleId::FsSeam,
        RuleId::Mirror,
    ];

    /// Every rule, for `--list-rules`.
    pub const ALL: &'static [RuleId] = &[
        RuleId::WallClock,
        RuleId::EnvRead,
        RuleId::HashCollections,
        RuleId::Entropy,
        RuleId::CounterSafety,
        RuleId::PanicUnwrap,
        RuleId::SilentIo,
        RuleId::FsSeam,
        RuleId::Mirror,
        RuleId::WaiverSyntax,
        RuleId::UnusedWaiver,
    ];
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The file the finding is in (as passed to [`lint_source`]).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

const WRAPPING: &[&str] = &["wrapping_add", "wrapping_sub", "wrapping_mul"];
const ENTROPY: &[&str] = &["thread_rng", "OsRng", "from_entropy"];
const ENV_READS: &[&str] = &[
    "var",
    "var_os",
    "vars",
    "vars_os",
    "args",
    "args_os",
    "current_dir",
    "temp_dir",
];
/// Identifiers that mark a discarded expression as fallible I/O. A
/// heuristic by design: it trades a few theoretical misses for zero
/// dependencies, and every workspace I/O helper funnels through these.
const IO_MARKERS: &[&str] = &[
    "fs",
    "File",
    "io",
    "write",
    "write_all",
    "flush",
    "rename",
    "remove_file",
    "remove_dir_all",
    "create_dir_all",
    "read_dir",
    "read_to_string",
    "set_modified",
    "set_len",
    "sync_all",
    "copy",
    "heartbeat",
];

/// Lints `src` (labelled `file` in findings) against `rules`. Test-only
/// items (`#[cfg(test)]`, `#[test]`) are exempt: they do not ship in
/// the replayed simulation or the fleet worker.
pub fn lint_source(file: &str, src: &str, rules: &[RuleId]) -> Vec<Finding> {
    if rules.is_empty() {
        return Vec::new();
    }
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let mut findings = Vec::new();

    let (waivers, waiver_errors) = parse_waivers(&lexed.comments);
    for e in &waiver_errors {
        findings.push(Finding {
            file: file.to_string(),
            line: e.line,
            rule: RuleId::WaiverSyntax,
            message: e.message.clone(),
        });
    }
    let fn_ranges: Vec<Option<(u32, u32)>> = waivers
        .iter()
        .map(|w| match w.scope {
            Scope::Fn => fn_body_lines(tokens, w.line),
            _ => None,
        })
        .collect();
    let line_targets: Vec<u32> = waivers
        .iter()
        .map(|w| match w.scope {
            Scope::Line => target_line(w.line, tokens),
            _ => 0,
        })
        .collect();
    let mut used = vec![false; waivers.len()];

    let skip = test_item_ranges(tokens);
    let mut raw: Vec<(u32, RuleId, String)> = Vec::new();
    let mut i = 0usize;
    let mut skip_iter = skip.iter().peekable();
    while i < tokens.len() {
        if let Some(&&(lo, hi)) = skip_iter.peek() {
            if i >= lo {
                i = hi + 1;
                skip_iter.next();
                continue;
            }
        }
        check_token(tokens, i, rules, &mut raw);
        i += 1;
    }

    for (line, rule, message) in raw {
        let waived = waivers.iter().enumerate().find(|(wi, w)| {
            w.rule == rule
                && match w.scope {
                    Scope::File => true,
                    Scope::Fn => fn_ranges[*wi].is_some_and(|(lo, hi)| (lo..=hi).contains(&line)),
                    Scope::Line => line_targets[*wi] == line,
                }
        });
        match waived {
            Some((wi, _)) => used[wi] = true,
            None => findings.push(Finding {
                file: file.to_string(),
                line,
                rule,
                message,
            }),
        }
    }

    for (wi, w) in waivers.iter().enumerate() {
        if !used[wi] {
            findings.push(Finding {
                file: file.to_string(),
                line: w.line,
                rule: RuleId::UnusedWaiver,
                message: format!(
                    "waiver for `{}` suppressed nothing — remove it (or the rule is not \
                     enabled for this file)",
                    w.rule
                ),
            });
        }
    }

    findings.sort_by_key(|f| f.line);
    findings
}

fn check_token(tokens: &[Token], i: usize, rules: &[RuleId], out: &mut Vec<(u32, RuleId, String)>) {
    let t = &tokens[i];
    if t.kind != TokenKind::Ident {
        return;
    }
    let has = |r: RuleId| rules.contains(&r);
    let prev = i.checked_sub(1).map(|p| &tokens[p]);
    let next = tokens.get(i + 1);
    let next2 = tokens.get(i + 2);

    if has(RuleId::CounterSafety) && WRAPPING.contains(&t.text.as_str()) {
        out.push((
            t.line,
            RuleId::CounterSafety,
            format!(
                "`{}` can walk a counter through zero and corrupt occupancy tracking \
                 (the fio double-reap bug class); use checked/saturating arithmetic, or \
                 waive a designated hash/RNG site with a reason",
                t.text
            ),
        ));
    }
    if has(RuleId::WallClock) && (t.text == "SystemTime" || t.text == "Instant") {
        out.push((
            t.line,
            RuleId::WallClock,
            format!(
                "`{}` reads the wall clock; simulation behaviour must be a pure function \
                 of the spec (use SimTime)",
                t.text
            ),
        ));
    }
    if has(RuleId::EnvRead)
        && t.text == "env"
        && next.is_some_and(|n| n.is_punct(':'))
        && next2.is_some_and(|n| n.is_punct(':'))
        && tokens
            .get(i + 3)
            .is_some_and(|n| ENV_READS.contains(&n.text.as_str()))
    {
        out.push((
            t.line,
            RuleId::EnvRead,
            format!(
                "`env::{}` makes behaviour depend on the process environment; thread \
                 configuration through the spec instead",
                tokens[i + 3].text
            ),
        ));
    }
    if has(RuleId::HashCollections) && (t.text == "HashMap" || t.text == "HashSet") {
        out.push((
            t.line,
            RuleId::HashCollections,
            format!(
                "`{}` iterates in randomized order and breaks bit-for-bit replay; use \
                 BTreeMap/BTreeSet, a Vec, or an index table",
                t.text
            ),
        ));
    }
    if has(RuleId::Entropy) && ENTROPY.contains(&t.text.as_str()) {
        out.push((
            t.line,
            RuleId::Entropy,
            format!(
                "`{}` draws ambient entropy; every RNG must be seeded from the spec",
                t.text
            ),
        ));
    }
    if has(RuleId::PanicUnwrap)
        && (t.text == "unwrap" || t.text == "expect")
        && prev.is_some_and(|p| p.is_punct('.'))
        && next.is_some_and(|n| n.is_punct('('))
    {
        out.push((
            t.line,
            RuleId::PanicUnwrap,
            format!(
                "`.{}()` panics in a fleet-worker path; propagate a typed error (a bad \
                 task file must never kill a worker)",
                t.text
            ),
        ));
    }
    if has(RuleId::FsSeam)
        && t.text == "fs"
        && next.is_some_and(|n| n.is_punct(':'))
        && next2.is_some_and(|n| n.is_punct(':'))
    {
        out.push((
            t.line,
            RuleId::FsSeam,
            "bare `fs::` access in a store/queue path bypasses the `Fs` seam; go \
             through the injected filesystem handle so fault injection and crash \
             tests cover this operation"
                .to_string(),
        ));
    }
    if has(RuleId::SilentIo)
        && t.text == "let"
        && next.is_some_and(|n| n.is_ident("_"))
        && next2.is_some_and(|n| n.is_punct('='))
    {
        if let Some(marker) = discarded_io_marker(tokens, i + 3) {
            out.push((
                t.line,
                RuleId::SilentIo,
                format!(
                    "`let _ =` discards a fallible I/O result (`{marker}`); propagate \
                     the error or log a warning"
                ),
            ));
        }
    }
}

/// Scans the discarded expression (tokens from `start` to the `;` at
/// the same nesting depth) for an identifier marking fallible I/O.
fn discarded_io_marker(tokens: &[Token], start: usize) -> Option<String> {
    let mut depth = 0i32;
    for t in &tokens[start.min(tokens.len())..] {
        match t.kind {
            TokenKind::Punct => match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => return None,
                _ => {}
            },
            TokenKind::Ident if IO_MARKERS.contains(&t.text.as_str()) => {
                return Some(t.text.clone())
            }
            _ => {}
        }
    }
    None
}

/// Token-index ranges (inclusive) of items behind `#[cfg(test)]` /
/// `#[test]` attributes: the attribute itself through the end of the
/// annotated item (`;`-terminated, or its matching `}`).
fn test_item_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if ranges.last().is_some_and(|&(_, hi)| i <= hi) {
            i += 1;
            continue;
        }
        if !tokens[i].is_punct('#') || !tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Find the attribute's closing bracket.
        let mut j = i + 1;
        let mut bdepth = 0i32;
        let mut idents: Vec<&str> = Vec::new();
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Punct if tokens[j].text == "[" => bdepth += 1,
                TokenKind::Punct if tokens[j].text == "]" => {
                    bdepth -= 1;
                    if bdepth == 0 {
                        break;
                    }
                }
                TokenKind::Ident => idents.push(&tokens[j].text),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr =
            idents.contains(&"test") && (idents.contains(&"cfg") || idents.len() == 1);
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then the item itself.
        let mut k = j + 1;
        while tokens.get(k).is_some_and(|t| t.is_punct('#'))
            && tokens.get(k + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut d = 0i32;
            k += 1;
            while k < tokens.len() {
                if tokens[k].is_punct('[') {
                    d += 1;
                } else if tokens[k].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        // The item ends at a top-level `;` or its body's matching `}`.
        let mut d = 0i32;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => d += 1,
                    ")" | "]" => d -= 1,
                    ";" if d == 0 => break,
                    "{" if d == 0 => {
                        k = match_brace(tokens, k);
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        ranges.push((attr_start, k.min(tokens.len().saturating_sub(1))));
        i = k + 1;
    }
    ranges
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// The `(first, last)` source lines of the body of the first `fn`
/// declared at or after `after_line` — the reach of an `allow-fn`
/// waiver placed above that function.
fn fn_body_lines(tokens: &[Token], after_line: u32) -> Option<(u32, u32)> {
    let fn_idx = tokens
        .iter()
        .position(|t| t.line > after_line && t.is_ident("fn"))?;
    let open = (fn_idx..tokens.len()).find(|&k| tokens[k].is_punct('{'))?;
    let close = match_brace(tokens, open);
    Some((tokens[fn_idx].line, tokens[close].line))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM: &[RuleId] = &[
        RuleId::WallClock,
        RuleId::EnvRead,
        RuleId::HashCollections,
        RuleId::Entropy,
        RuleId::CounterSafety,
    ];

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                fn helper() { let t = std::time::Instant::now(); }
            }
            fn real() {}
        "#;
        assert!(lint_source("f.rs", src, SIM).is_empty());
    }

    #[test]
    fn cfg_test_use_item_is_exempt_but_following_code_is_not() {
        let src = "
            #[cfg(test)]
            use std::collections::HashSet;
            fn live() { let m: HashMap<u32, u32> = HashMap::new(); }
        ";
        let f = lint_source("f.rs", src, SIM);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == RuleId::HashCollections));
    }

    #[test]
    fn fn_waiver_covers_only_that_fn() {
        let src = "
            // a4-lint: allow-fn(counter-safety) -- SWAR mixer
            fn mix(x: u64) -> u64 { x.wrapping_mul(3) }
            fn counter(x: u64) -> u64 { x.wrapping_sub(1) }
        ";
        let f = lint_source("f.rs", src, SIM);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::CounterSafety);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn unused_waiver_is_reported() {
        let src = "// a4-lint: allow(wall-clock) -- stale excuse\nfn f() {}\n";
        let f = lint_source("f.rs", src, SIM);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::UnusedWaiver);
    }

    #[test]
    fn empty_rule_set_lints_nothing() {
        assert!(lint_source("f.rs", "fn f() { x.wrapping_add(1); }", &[]).is_empty());
    }
}
