//! `a4-lint`: the workspace's static-analysis pass.
//!
//! The simulator's headline guarantees — golden bit-identity, shard and
//! queue invariance, the CODE_SALT-keyed result store — all rest on
//! contracts the compiler cannot check: sim crates must be pure
//! functions of their spec, counters must never wrap, fleet workers
//! must never panic on bad input. This crate turns those contracts from
//! prose in EXPERIMENTS.md into a mechanical, CI-gating pass.
//!
//! The pipeline: a hand-rolled, dependency-free lexer ([`lexer`])
//! produces comment-and-string-aware tokens; [`waiver`] extracts
//! `// a4-lint: allow(<rule>) -- <reason>` exemptions (reason
//! mandatory, typos fail closed); [`rules`] runs token-pattern checks
//! per file with `#[cfg(test)]` items excluded; [`mirror`] audits that
//! counter structs are exhaustively replicated in their
//! accumulate/diff/merge functions; [`config`] maps workspace paths to
//! rule tiers and drives the whole-workspace run.
//!
//! Run it with `cargo run -p a4-lint -- --workspace`.

pub mod config;
pub mod lexer;
pub mod mirror;
pub mod rules;
pub mod waiver;

pub use config::{
    find_workspace_root, lint_workspace, rules_for, workspace_files, workspace_mirrors,
    COUNTER_RULES, SERVICE_RULES, SIM_RULES, STORE_RULES, TIERS,
};
pub use mirror::{check_mirrors, MirrorSpec};
pub use rules::{lint_source, Finding, RuleId};
pub use waiver::{parse_waivers, Scope, Waiver, WaiverError};
