//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p a4-lint -- --workspace        # whole workspace (CI mode)
//! cargo run -p a4-lint -- FILE...            # tiers inferred from path
//! cargo run -p a4-lint -- --tier sim FILE... # force a tier for loose files
//! cargo run -p a4-lint -- --list-rules       # every rule and what it guards
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/I/O error.

use a4_lint::{
    check_mirrors, find_workspace_root, lint_source, lint_workspace, rules_for, workspace_mirrors,
    Finding, RuleId, TIERS,
};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut tier: Option<&'static [RuleId]> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--list-rules" => {
                for r in RuleId::ALL {
                    println!("{:<17} {}", r.name(), r.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--tier" => {
                let Some(name) = it.next() else {
                    return usage("--tier needs a value (sim | service | counter)");
                };
                let Some(&(_, rules)) = TIERS.iter().find(|(n, _)| n == name) else {
                    return usage(&format!(
                        "unknown tier {name:?} (expected sim | service | counter)"
                    ));
                };
                tier = Some(rules);
            }
            "--help" | "-h" => {
                println!(
                    "usage: a4-lint --workspace | [--tier sim|service|counter] FILE...\n\
                     \n\
                     Lints Rust sources against the A4 determinism and counter-safety\n\
                     contracts. With --workspace, walks up to the workspace root and\n\
                     lints every shipped source file against its tier. Waive a finding\n\
                     with `// a4-lint: allow(<rule>) -- <reason>` (see EXPERIMENTS.md,\n\
                     \"Static guarantees\")."
                );
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return usage(&format!("unknown flag {other:?}")),
        }
    }

    let findings = if workspace {
        if !files.is_empty() || tier.is_some() {
            return usage("--workspace takes no files or --tier");
        }
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => return fail(&format!("cannot read current dir: {e}")),
        };
        let Some(root) = find_workspace_root(&cwd) else {
            return fail("no workspace root found (no Cargo.toml with [workspace] above cwd)");
        };
        match lint_workspace(&root) {
            Ok(f) => f,
            Err(e) => return fail(&format!("workspace walk failed: {e}")),
        }
    } else {
        if files.is_empty() {
            return usage("nothing to lint: pass --workspace or FILE...");
        }
        let mut out: Vec<Finding> = Vec::new();
        for f in &files {
            let src = match std::fs::read_to_string(f) {
                Ok(s) => s,
                Err(e) => return fail(&format!("cannot read {f}: {e}")),
            };
            let rel = f.trim_start_matches("./");
            let rules = tier.unwrap_or_else(|| rules_for(rel));
            out.extend(lint_source(f, &src, rules));
            for &(mirror_file, specs) in workspace_mirrors() {
                if Path::new(rel).ends_with(mirror_file) {
                    out.extend(check_mirrors(f, &src, specs));
                }
            }
        }
        out
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "a4-lint: {} finding(s); waive with `// a4-lint: allow(<rule>) -- <reason>` \
             only where the construct is the point",
            findings.len()
        );
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("a4-lint: {msg}\nusage: a4-lint --workspace | [--tier sim|service|counter] FILE...");
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("a4-lint: {msg}");
    ExitCode::from(2)
}
