//! Struct-mirror exhaustiveness: every field of a counter struct must
//! be named in each of its designated mirror functions.
//!
//! The bug this catches: add a counter to [`WorkloadCounters`-style
//! structs], bump it in the hot path, and forget to add it to
//! `accumulate`/`minus`/`merge` — shard aggregation then silently drops
//! the new counter and every figure built from merged shards is wrong
//! while all tests that use a single shard stay green. The borrow
//! checker cannot see this; a field-name roll call can.
//!
//! The check is deliberately coarse: a field **appears** in a mirror
//! function if its name occurs as an identifier anywhere in the
//! function's body. That admits a pathological mention-without-use, but
//! it has no false positives on idiomatic field-by-field bodies, and a
//! missing field — the real hazard — can never hide.

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{Finding, RuleId};

/// One struct to audit and the functions that must mirror it.
#[derive(Debug, Clone, Copy)]
pub struct MirrorSpec {
    /// The struct whose fields are the roll call.
    pub struct_name: &'static str,
    /// `(impl owner, fn name)` pairs: each function must name every
    /// field. The owner disambiguates same-named functions (two `fn
    /// minus` exist in `stats.rs`).
    pub mirrors: &'static [(&'static str, &'static str)],
}

/// Audits `src` against `specs`. A spec that fails to resolve (struct
/// or mirror function not found) is itself a finding — a rename must
/// update the spec, not silently disable the pass.
pub fn check_mirrors(file: &str, src: &str, specs: &[MirrorSpec]) -> Vec<Finding> {
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let mut findings = Vec::new();
    let finding = |line: u32, message: String| Finding {
        file: file.to_string(),
        line,
        rule: RuleId::Mirror,
        message,
    };

    for spec in specs {
        let Some(fields) = struct_fields(tokens, spec.struct_name) else {
            findings.push(finding(
                1,
                format!(
                    "mirror spec names struct `{}` but no such struct is declared here — \
                     update the spec alongside the rename",
                    spec.struct_name
                ),
            ));
            continue;
        };
        for &(owner, fn_name) in spec.mirrors {
            let Some((fn_line, body)) = fn_body_in_impl(tokens, owner, fn_name) else {
                findings.push(finding(
                    1,
                    format!(
                        "mirror spec names `{owner}::{fn_name}` but no such function is \
                         declared here — update the spec alongside the rename"
                    ),
                ));
                continue;
            };
            for field in &fields {
                if !body.iter().any(|t| t.is_ident(field)) {
                    findings.push(finding(
                        fn_line,
                        format!(
                            "`{owner}::{fn_name}` does not mention field `{field}` of \
                             `{}` — the counter would be silently dropped on this path",
                            spec.struct_name
                        ),
                    ));
                }
            }
        }
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Field names of `struct <name> { .. }`, in declaration order.
fn struct_fields(tokens: &[Token], name: &str) -> Option<Vec<String>> {
    let mut i = 0usize;
    let decl = loop {
        if i + 1 >= tokens.len() {
            return None;
        }
        if tokens[i].is_ident("struct") && tokens[i + 1].is_ident(name) {
            break i;
        }
        i += 1;
    };
    let open = (decl..tokens.len()).find(|&k| tokens[k].is_punct('{'))?;
    let close = match_brace(tokens, open);
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut k = open;
    while k < close {
        let t = &tokens[k];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                _ => {}
            }
        }
        // A field name is an identifier at body depth followed by a
        // single `:` (a `::` would mean a path segment inside a type).
        if depth == 1
            && t.kind == TokenKind::Ident
            && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(k + 2).is_some_and(|n| n.is_punct(':'))
            && !k.checked_sub(1).is_some_and(|p| tokens[p].is_punct(':'))
        {
            // `pub(crate)` parens are handled by the depth guard; `pub`
            // itself is never followed by `:`.
            fields.push(t.text.clone());
        }
        k += 1;
    }
    Some(fields)
}

/// The body tokens (and declaration line) of `fn <fn_name>` inside an
/// `impl` block whose implemented type is `owner` (for `impl Trait for
/// Type`, the type; for an inherent impl, the type itself).
fn fn_body_in_impl<'t>(
    tokens: &'t [Token],
    owner: &str,
    fn_name: &str,
) -> Option<(u32, &'t [Token])> {
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let open = (i..tokens.len()).find(|&k| tokens[k].is_punct('{'))?;
        let close = match_brace(tokens, open);
        let implemented = tokens[i..open]
            .iter()
            .rev()
            .find(|t| t.kind == TokenKind::Ident);
        if implemented.is_some_and(|t| t.text == owner) {
            let mut k = open + 1;
            while k < close {
                if tokens[k].is_ident("fn")
                    && tokens.get(k + 1).is_some_and(|n| n.is_ident(fn_name))
                {
                    let body_open = (k..close).find(|&b| tokens[b].is_punct('{'))?;
                    let body_close = match_brace(tokens, body_open);
                    return Some((tokens[k].line, &tokens[body_open..=body_close]));
                }
                // Skip nested fn bodies wholesale so an inner fn's name
                // cannot shadow the search.
                if tokens[k].is_punct('{') {
                    k = match_brace(tokens, k);
                }
                k += 1;
            }
        }
        i = close + 1;
    }
    None
}

fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: MirrorSpec = MirrorSpec {
        struct_name: "Counters",
        mirrors: &[("Counters", "accumulate"), ("Stats", "merge")],
    };

    #[test]
    fn complete_mirrors_are_clean() {
        let src = "
            pub struct Counters { pub hits: u64, pub misses: u64 }
            impl Counters {
                fn accumulate(&mut self, o: &Self) {
                    self.hits += o.hits;
                    self.misses += o.misses;
                }
            }
            struct Stats { c: Counters }
            impl Stats {
                fn merge(&mut self, o: &Self) {
                    self.c.hits += o.c.hits;
                    self.c.misses += o.c.misses;
                }
            }
        ";
        assert!(check_mirrors("f.rs", src, &[SPEC]).is_empty());
    }

    #[test]
    fn forgotten_field_is_caught_in_the_right_fn() {
        let src = "
            pub struct Counters { pub hits: u64, pub misses: u64 }
            impl Counters {
                fn accumulate(&mut self, o: &Self) {
                    self.hits += o.hits;
                    self.misses += o.misses;
                }
            }
            struct Stats { c: Counters }
            impl Stats {
                fn merge(&mut self, o: &Self) {
                    self.c.hits += o.c.hits;
                }
            }
        ";
        let f = check_mirrors("f.rs", src, &[SPEC]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`Stats::merge`"), "{}", f[0].message);
        assert!(f[0].message.contains("`misses`"), "{}", f[0].message);
    }

    #[test]
    fn same_named_fns_are_disambiguated_by_owner() {
        // Both impls declare `fn minus`; only the owner named in the
        // spec is audited.
        let src = "
            pub struct Counters { pub hits: u64 }
            struct Other { x: u64 }
            impl Other {
                fn minus(&self) -> u64 { self.x }
            }
            impl Counters {
                fn minus(&self, o: &Self) -> Self { Counters { hits: self.hits - o.hits } }
            }
        ";
        let spec = MirrorSpec {
            struct_name: "Counters",
            mirrors: &[("Counters", "minus")],
        };
        assert!(check_mirrors("f.rs", src, &[spec]).is_empty());
    }

    #[test]
    fn trait_impl_owner_is_the_type_not_the_trait() {
        let src = "
            pub struct Counters { pub hits: u64 }
            impl Default for Counters {
                fn default() -> Self { Counters { hits: 0 } }
            }
        ";
        let spec = MirrorSpec {
            struct_name: "Counters",
            mirrors: &[("Counters", "default")],
        };
        assert!(check_mirrors("f.rs", src, &[spec]).is_empty());
    }

    #[test]
    fn missing_struct_or_fn_is_itself_a_finding() {
        let src = "fn unrelated() {}";
        let f = check_mirrors("f.rs", src, &[SPEC]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no such struct"), "{}", f[0].message);

        let src = "struct Counters { hits: u64 }";
        let f = check_mirrors("f.rs", src, &[SPEC]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.message.contains("no such function")));
    }

    #[test]
    fn paths_in_field_types_are_not_fields() {
        let src = "
            struct Counters { hits: std::num::Wrapping<u64>, misses: u64 }
            impl Counters {
                fn accumulate(&mut self, o: &Self) {
                    self.hits += o.hits;
                    self.misses += o.misses;
                }
            }
        ";
        let spec = MirrorSpec {
            struct_name: "Counters",
            mirrors: &[("Counters", "accumulate")],
        };
        assert!(check_mirrors("f.rs", src, &[spec]).is_empty());
    }
}
