//! Which rules apply where: the per-crate tier map and the
//! workspace-wide driver.
//!
//! Four tiers:
//!
//! * **sim-deterministic** — the crates whose output must replay
//!   bit-for-bit (`cache`, `sim`, `pcie`, `workloads`, `mem`, `model`,
//!   `core`): all determinism rules plus counter-safety;
//! * **service** — the experiments service/fault/worker paths that run
//!   unattended fleets: panic and silent-I/O rules plus counter-safety;
//! * **store** — the store and queue (the crash-consistent state on
//!   disk): the service rules plus fs-seam, because a filesystem
//!   mutation that bypasses the `Fs` seam escapes fault injection and
//!   the crash-consistency proptests;
//! * **counter** — everything else we ship (remaining experiments
//!   code, the facade, benches, this linter): counter-safety only.
//!
//! `crates/compat/**` is exempt: it vendors third-party code whose
//! style we deliberately do not own. Test/bench/example trees are not
//! scanned — they do not ship in the replayed sim or the fleet worker
//! (and `#[cfg(test)]` modules inside scanned files are skipped by the
//! engine itself).

use crate::mirror::{check_mirrors, MirrorSpec};
use crate::rules::{lint_source, Finding, RuleId};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rules for the sim-deterministic tier.
pub const SIM_RULES: &[RuleId] = &[
    RuleId::WallClock,
    RuleId::EnvRead,
    RuleId::HashCollections,
    RuleId::Entropy,
    RuleId::CounterSafety,
];

/// Rules for the service tier.
pub const SERVICE_RULES: &[RuleId] =
    &[RuleId::PanicUnwrap, RuleId::SilentIo, RuleId::CounterSafety];

/// Rules for the store tier: the service rules plus the `Fs`-seam
/// requirement on the files that own on-disk state.
pub const STORE_RULES: &[RuleId] = &[
    RuleId::PanicUnwrap,
    RuleId::SilentIo,
    RuleId::CounterSafety,
    RuleId::FsSeam,
];

/// Rules for everything else that ships.
pub const COUNTER_RULES: &[RuleId] = &[RuleId::CounterSafety];

/// Named tiers accepted by `--tier`.
pub const TIERS: &[(&str, &[RuleId])] = &[
    ("sim", SIM_RULES),
    ("service", SERVICE_RULES),
    ("store", STORE_RULES),
    ("counter", COUNTER_RULES),
];

const SIM_CRATES: &[&str] = &["cache", "sim", "pcie", "workloads", "mem", "model", "core"];

/// Experiments-crate files on the service tier: the sweep service, the
/// fault-injection seam (whose `RealFs` legitimately owns the bare
/// `std::fs` calls), and every worker binary.
const SERVICE_FILES: &[&str] = &[
    "crates/experiments/src/service.rs",
    "crates/experiments/src/fault.rs",
];

/// Experiments-crate files on the store tier: the result cache and the
/// job queue, whose every filesystem mutation must go through the `Fs`
/// seam.
const STORE_FILES: &[&str] = &[
    "crates/experiments/src/queue.rs",
    "crates/experiments/src/cache.rs",
];

/// The rule set for a file, keyed by its path relative to the
/// workspace root (with `/` separators).
pub fn rules_for(rel: &str) -> &'static [RuleId] {
    if rel.starts_with("crates/compat/") {
        return &[];
    }
    for c in SIM_CRATES {
        if rel.starts_with(&format!("crates/{c}/src/")) {
            return SIM_RULES;
        }
    }
    if STORE_FILES.contains(&rel) {
        return STORE_RULES;
    }
    if SERVICE_FILES.contains(&rel) || rel.starts_with("crates/experiments/src/bin/") {
        return SERVICE_RULES;
    }
    COUNTER_RULES
}

/// The struct-mirror audits, keyed by workspace-relative file.
///
/// Two field-roll-call families:
///
/// * `stats.rs` — a struct's fields must be replicated by hand across
///   accumulate/diff/merge paths; see [`crate::mirror`] for the bug
///   class.
/// * checkpoint pairs — every mutable field of a checkpointed component
///   must be named in both its `save_state` and `restore_state` (a
///   field that is rebuilt by the constructor is named in the
///   `_rebuilt_by_constructor` roll-call tuple instead). Adding a field
///   to a simulated component without serializing it would make a
///   restored run silently diverge from the uninterrupted one — the
///   exact bug the bit-identical-resume property test exists to catch,
///   except the lint catches it before any test runs.
pub fn workspace_mirrors() -> &'static [(&'static str, &'static [MirrorSpec])] {
    const STATS: &[MirrorSpec] = &[
        MirrorSpec {
            struct_name: "WorkloadCounters",
            mirrors: &[
                ("WorkloadCounters", "accumulate"),
                ("WorkloadCounters", "minus"),
            ],
        },
        MirrorSpec {
            struct_name: "DeviceCounters",
            mirrors: &[("DeviceCounters", "minus"), ("HierarchyStats", "merge")],
        },
        MirrorSpec {
            struct_name: "HierarchyStats",
            mirrors: &[
                ("HierarchyStats", "delta_into"),
                ("HierarchyStats", "copy_from"),
                ("HierarchyStats", "merge"),
            ],
        },
    ];
    const MLC_CKPT: &[MirrorSpec] = &[MirrorSpec {
        struct_name: "Mlc",
        mirrors: &[("Mlc", "save_state"), ("Mlc", "restore_state")],
    }];
    const LLC_CKPT: &[MirrorSpec] = &[MirrorSpec {
        struct_name: "Llc",
        mirrors: &[("Llc", "save_state"), ("Llc", "restore_state")],
    }];
    const HIERARCHY_CKPT: &[MirrorSpec] = &[MirrorSpec {
        struct_name: "CacheHierarchy",
        mirrors: &[
            ("CacheHierarchy", "save_state"),
            ("CacheHierarchy", "restore_state"),
        ],
    }];
    const ROUTE_CKPT: &[MirrorSpec] = &[
        MirrorSpec {
            struct_name: "UpiLink",
            mirrors: &[("UpiLink", "save_state"), ("UpiLink", "restore_state")],
        },
        MirrorSpec {
            struct_name: "UpiFabric",
            mirrors: &[("UpiFabric", "save_state"), ("UpiFabric", "restore_state")],
        },
        MirrorSpec {
            struct_name: "RemoteCache",
            mirrors: &[
                ("RemoteCache", "save_state"),
                ("RemoteCache", "restore_state"),
            ],
        },
    ];
    const NIC_CKPT: &[MirrorSpec] = &[MirrorSpec {
        struct_name: "NicModel",
        mirrors: &[("NicModel", "save_state"), ("NicModel", "restore_state")],
    }];
    const NVME_CKPT: &[MirrorSpec] = &[MirrorSpec {
        struct_name: "NvmeModel",
        mirrors: &[("NvmeModel", "save_state"), ("NvmeModel", "restore_state")],
    }];
    const MEM_CKPT: &[MirrorSpec] = &[MirrorSpec {
        struct_name: "MemoryController",
        mirrors: &[
            ("MemoryController", "save_state"),
            ("MemoryController", "restore_state"),
        ],
    }];
    // `DeviceModel` is an enum (out of the struct roll call's reach);
    // its save/restore is exercised through `System`, whose own spec
    // covers the `devices` field.
    const SYSTEM_CKPT: &[MirrorSpec] = &[MirrorSpec {
        struct_name: "System",
        mirrors: &[("System", "save_state"), ("System", "restore_state")],
    }];
    const CONTROLLER_CKPT: &[MirrorSpec] = &[MirrorSpec {
        struct_name: "A4Controller",
        mirrors: &[
            ("A4Controller", "save_ckpt"),
            ("A4Controller", "restore_ckpt"),
        ],
    }];
    &[
        ("crates/cache/src/stats.rs", STATS),
        ("crates/cache/src/mlc.rs", MLC_CKPT),
        ("crates/cache/src/llc.rs", LLC_CKPT),
        ("crates/cache/src/hierarchy.rs", HIERARCHY_CKPT),
        ("crates/cache/src/route.rs", ROUTE_CKPT),
        ("crates/pcie/src/nic.rs", NIC_CKPT),
        ("crates/pcie/src/nvme.rs", NVME_CKPT),
        ("crates/mem/src/lib.rs", MEM_CKPT),
        ("crates/sim/src/system.rs", SYSTEM_CKPT),
        ("crates/core/src/controller.rs", CONTROLLER_CKPT),
    ]
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every `.rs` file the lint scans, as workspace-relative `/`-separated
/// paths, sorted — so findings and CI logs are stable across machines.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    collect_rs(&root.join("src"), root, &mut out)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            if dir.file_name().is_some_and(|n| n == "compat") {
                continue;
            }
            collect_rs(&dir.join("src"), root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`: every scanned file
/// against its tier's rules, plus the struct-mirror audits.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in workspace_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        findings.extend(lint_source(&rel, &src, rules_for(&rel)));
        for &(mirror_file, specs) in workspace_mirrors() {
            if rel == mirror_file {
                findings.extend(check_mirrors(&rel, &src, specs));
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_mapping_matches_the_contract() {
        assert_eq!(rules_for("crates/cache/src/lru.rs"), SIM_RULES);
        assert_eq!(rules_for("crates/workloads/src/fio.rs"), SIM_RULES);
        assert_eq!(rules_for("crates/experiments/src/queue.rs"), STORE_RULES);
        assert_eq!(rules_for("crates/experiments/src/cache.rs"), STORE_RULES);
        assert_eq!(rules_for("crates/experiments/src/fault.rs"), SERVICE_RULES);
        assert_eq!(
            rules_for("crates/experiments/src/service.rs"),
            SERVICE_RULES
        );
        assert_eq!(
            rules_for("crates/experiments/src/bin/a4_repro.rs"),
            SERVICE_RULES
        );
        assert_eq!(rules_for("crates/experiments/src/runner.rs"), COUNTER_RULES);
        assert_eq!(rules_for("src/lib.rs"), COUNTER_RULES);
        assert!(rules_for("crates/compat/serde/src/lib.rs").is_empty());
    }

    #[test]
    fn checkpoint_mirror_specs_resolve_and_pass_on_the_real_tree() {
        // Every registered (file, spec) pair must resolve against the
        // actual workspace source and be clean: a rename that breaks a
        // spec or a field that slips out of a save/restore roll call
        // fails here, not just in the --workspace binary run.
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("lint crate lives inside the workspace");
        for &(file, specs) in workspace_mirrors() {
            let src = fs::read_to_string(root.join(file))
                .unwrap_or_else(|e| panic!("mirror file {file} unreadable: {e}"));
            let findings = check_mirrors(file, &src, specs);
            assert!(findings.is_empty(), "{file}: {findings:?}");
        }
    }

    #[test]
    fn forgetting_a_field_in_a_checkpoint_pair_is_a_lint_failure() {
        // The checkpoint idiom: constructor-rebuilt fields are named in
        // a `_rebuilt_by_constructor` roll-call tuple, mutable fields
        // field-by-field. Dropping `live` from restore_state must be
        // caught — that is a restored run silently diverging.
        let src = "
            pub struct Mlc { geometry: u64, sets: Vec<u64>, live: u64 }
            impl Mlc {
                pub fn save_state(&self) -> MlcState {
                    let _rebuilt_by_constructor = &self.geometry;
                    MlcState { sets: self.sets.clone(), live: self.live }
                }
                pub fn restore_state(&mut self, st: &MlcState) -> bool {
                    let _rebuilt_by_constructor = &self.geometry;
                    self.sets = st.sets.clone();
                    true
                }
            }
        ";
        let specs = workspace_mirrors()
            .iter()
            .find(|(file, _)| *file == "crates/cache/src/mlc.rs")
            .map(|(_, specs)| *specs)
            .expect("mlc checkpoint spec registered");
        let findings = check_mirrors("crates/cache/src/mlc.rs", src, specs);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("`Mlc::restore_state`")
                && findings[0].message.contains("`live`"),
            "{}",
            findings[0].message
        );
    }

    #[test]
    fn sim_tier_has_no_service_rules_and_vice_versa() {
        assert!(!SIM_RULES.contains(&RuleId::PanicUnwrap));
        assert!(!SERVICE_RULES.contains(&RuleId::WallClock));
        assert!(SIM_RULES.contains(&RuleId::CounterSafety));
        assert!(SERVICE_RULES.contains(&RuleId::CounterSafety));
        // The store tier is the service tier plus the seam requirement;
        // the seam's own implementation file must NOT carry it.
        assert!(STORE_RULES.contains(&RuleId::FsSeam));
        assert!(!SERVICE_RULES.contains(&RuleId::FsSeam));
        for r in SERVICE_RULES {
            assert!(STORE_RULES.contains(r), "store tier supersets service");
        }
    }
}
