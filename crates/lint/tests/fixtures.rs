//! Fixture-based self-tests: every rule fires on a bad snippet at the
//! expected line, stays quiet on good/waived snippets, and the
//! workspace-level guarantees (clean run, fio-regression catch) hold
//! against the real source tree.

use a4_lint::{
    check_mirrors, lint_source, lint_workspace, rules_for, workspace_files, MirrorSpec, RuleId,
    SERVICE_RULES, SIM_RULES, STORE_RULES,
};
use std::path::{Path, PathBuf};

/// Lints `src` with `rules` and returns `(rule, line)` pairs.
fn fire(src: &str, rules: &[RuleId]) -> Vec<(RuleId, u32)> {
    lint_source("fixture.rs", src, rules)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

/// A fixture row: source snippet, rules to apply, expected findings.
type Case = (&'static str, &'static [RuleId], &'static [(RuleId, u32)]);

/// Each bad snippet must produce exactly the expected `(rule, line)`
/// findings; each good snippet must be clean.
#[test]
fn bad_snippets_fire_at_the_expected_line() {
    let cases: &[Case] = &[
        (
            "fn f(t: u64) -> u64 {\n    t.wrapping_add(1)\n}\n",
            SIM_RULES,
            &[(RuleId::CounterSafety, 2)],
        ),
        (
            "fn f(t: u64) -> u64 {\n    t.wrapping_sub(1)\n}\n",
            SIM_RULES,
            &[(RuleId::CounterSafety, 2)],
        ),
        (
            "fn f(t: u64) -> u64 {\n    t.wrapping_mul(3)\n}\n",
            SIM_RULES,
            &[(RuleId::CounterSafety, 2)],
        ),
        (
            "use std::time::Instant;\nfn f() {\n    let t = Instant::now();\n}\n",
            SIM_RULES,
            &[(RuleId::WallClock, 1), (RuleId::WallClock, 3)],
        ),
        (
            "fn f() -> std::time::SystemTime {\n    std::time::SystemTime::now()\n}\n",
            SIM_RULES,
            &[(RuleId::WallClock, 1), (RuleId::WallClock, 2)],
        ),
        (
            "fn f() {\n    let v = std::env::var(\"A4_DBG\");\n}\n",
            SIM_RULES,
            &[(RuleId::EnvRead, 2)],
        ),
        (
            "use std::collections::HashMap;\nfn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n",
            SIM_RULES,
            &[
                (RuleId::HashCollections, 1),
                (RuleId::HashCollections, 3),
                (RuleId::HashCollections, 3),
            ],
        ),
        (
            "fn f() {\n    let mut rng = thread_rng();\n}\n",
            SIM_RULES,
            &[(RuleId::Entropy, 2)],
        ),
        (
            "fn f() {\n    let s = OsRng.next_u64();\n}\n",
            SIM_RULES,
            &[(RuleId::Entropy, 2)],
        ),
        (
            "fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
            SERVICE_RULES,
            &[(RuleId::PanicUnwrap, 2)],
        ),
        (
            "fn f(o: Option<u32>) -> u32 {\n    o.expect(\"present\")\n}\n",
            SERVICE_RULES,
            &[(RuleId::PanicUnwrap, 2)],
        ),
        (
            "fn f() {\n    let _ = std::fs::write(\"x\", \"y\");\n}\n",
            SERVICE_RULES,
            &[(RuleId::SilentIo, 2)],
        ),
        (
            "fn f(file: &std::fs::File) {\n    let _ = file.set_modified(t);\n}\n",
            SERVICE_RULES,
            &[(RuleId::SilentIo, 2)],
        ),
        // A store-tier filesystem mutation bypassing the Fs seam.
        (
            "fn f() {\n    std::fs::rename(\"a\", \"b\").ok();\n}\n",
            STORE_RULES,
            &[(RuleId::FsSeam, 2)],
        ),
        // Even an import of std::fs items is a seam bypass in disguise.
        (
            "use std::fs::write;\nfn f() {\n    write(\"a\", \"b\").ok();\n}\n",
            STORE_RULES,
            &[(RuleId::FsSeam, 1)],
        ),
    ];
    for (src, rules, expected) in cases {
        assert_eq!(&fire(src, rules), expected, "snippet:\n{src}");
    }
}

#[test]
fn good_snippets_are_clean() {
    let cases: &[(&str, &[RuleId])] = &[
        // The sanctioned counter idiom: checked arithmetic.
        (
            "fn f(t: u64) -> u64 {\n    t.checked_sub(1).unwrap_or(0)\n}\n",
            SIM_RULES,
        ),
        // Saturating arithmetic is fine too.
        ("fn f(t: u64) -> u64 {\n    t.saturating_add(1)\n}\n", SIM_RULES),
        // `env!` (compile-time) is not an env *read*.
        (
            "const V: &str = concat!(\"a4/\", env!(\"CARGO_PKG_VERSION\"));\n",
            SIM_RULES,
        ),
        // Deterministic collections.
        (
            "use std::collections::BTreeMap;\nfn f() -> BTreeMap<u32, u32> {\n    BTreeMap::new()\n}\n",
            SIM_RULES,
        ),
        // Identifiers inside strings and comments never fire.
        (
            "// HashMap, Instant::now, wrapping_add, thread_rng\nfn f() -> &'static str {\n    \"SystemTime::now() .unwrap()\"\n}\n",
            SIM_RULES,
        ),
        // unwrap_or / unwrap_or_else are the *fix* for panic-unwrap.
        (
            "fn f(o: Option<u32>) -> u32 {\n    o.unwrap_or_else(|| 7)\n}\n",
            SERVICE_RULES,
        ),
        // A bound `let r =` on I/O is visible, not silent.
        (
            "fn f() {\n    if let Err(e) = std::fs::write(\"x\", \"y\") {\n        eprintln!(\"{e}\");\n    }\n}\n",
            SERVICE_RULES,
        ),
        // `let _ =` on a non-I/O expression is allowed.
        (
            "fn f(v: Vec<u32>) {\n    let _ = v.binary_search(&3);\n}\n",
            SERVICE_RULES,
        ),
        // Test-only items are exempt in any tier.
        (
            "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() {\n        None::<u32>.unwrap();\n    }\n}\n",
            SIM_RULES,
        ),
        // Going through the injected Fs handle is the seam, not a bypass.
        (
            "fn f(s: &Store) {\n    s.fs.rename(&a, &b).ok();\n}\n",
            STORE_RULES,
        ),
        // The service tier (fault.rs, bins) may own bare std::fs calls.
        (
            "fn f() -> std::io::Result<()> {\n    std::fs::write(\"x\", \"y\")\n}\n",
            SERVICE_RULES,
        ),
    ];
    for (src, rules) in cases {
        assert_eq!(fire(src, rules), vec![], "snippet:\n{src}");
    }
}

#[test]
fn waived_snippets_are_clean_and_waivers_must_be_earned() {
    // A reasoned line waiver silences exactly its line...
    let src = "fn f(c: u64) -> u64 {\n    // a4-lint: allow(counter-safety) -- hash mixing step\n    c.wrapping_mul(3)\n}\n";
    assert_eq!(fire(src, SIM_RULES), vec![]);

    // ...a trailing waiver silences its own line...
    let src =
        "fn f(c: u64) -> u64 {\n    c.wrapping_mul(3) // a4-lint: allow(counter-safety) -- hash mixing step\n}\n";
    assert_eq!(fire(src, SIM_RULES), vec![]);

    // ...an fn waiver covers the whole function but nothing after it...
    let src = "// a4-lint: allow-fn(counter-safety) -- FNV body\nfn fnv(mut h: u64) -> u64 {\n    h = h.wrapping_mul(3);\n    h.wrapping_add(1)\n}\nfn counter(c: u64) -> u64 {\n    c.wrapping_sub(1)\n}\n";
    assert_eq!(fire(src, SIM_RULES), vec![(RuleId::CounterSafety, 7)]);

    // ...and a file waiver covers everything.
    let src = "// a4-lint: allow-file(counter-safety) -- this file is the hash module\nfn a(x: u64) -> u64 {\n    x.wrapping_mul(3)\n}\nfn b(x: u64) -> u64 {\n    x.wrapping_add(1)\n}\n";
    assert_eq!(fire(src, SIM_RULES), vec![]);

    // A waiver for rule A does not silence rule B on the same line.
    let src = "fn f(c: u64) -> u64 {\n    // a4-lint: allow(wall-clock) -- wrong rule\n    c.wrapping_mul(3)\n}\n";
    assert_eq!(
        fire(src, SIM_RULES),
        vec![(RuleId::UnusedWaiver, 2), (RuleId::CounterSafety, 3)]
    );
}

#[test]
fn waiver_syntax_is_strictly_policed() {
    // Missing reason: the waiver is rejected AND does not suppress.
    let src =
        "fn f(c: u64) -> u64 {\n    // a4-lint: allow(counter-safety)\n    c.wrapping_mul(3)\n}\n";
    let findings = fire(src, SIM_RULES);
    assert!(
        findings.contains(&(RuleId::WaiverSyntax, 2)),
        "{findings:?}"
    );
    assert!(
        findings.contains(&(RuleId::CounterSafety, 3)),
        "rejected waiver must not suppress: {findings:?}"
    );

    // Empty reason is as bad as none.
    let src = "// a4-lint: allow(counter-safety) --   \nfn f() {}\n";
    assert_eq!(fire(src, SIM_RULES), vec![(RuleId::WaiverSyntax, 1)]);

    // Unknown rule name.
    let src = "// a4-lint: allow(no-such-rule) -- because\nfn f() {}\n";
    assert_eq!(fire(src, SIM_RULES), vec![(RuleId::WaiverSyntax, 1)]);

    // Mangled marker (missing colon) fails closed.
    let src = "fn f(c: u64) -> u64 {\n    // a4-lint allow(counter-safety) -- typo\n    c.wrapping_mul(3)\n}\n";
    let findings = fire(src, SIM_RULES);
    assert!(
        findings.contains(&(RuleId::WaiverSyntax, 2)),
        "{findings:?}"
    );
    assert!(
        findings.contains(&(RuleId::CounterSafety, 3)),
        "{findings:?}"
    );

    // The meta rules themselves are not waivable.
    assert!(RuleId::parse("waiver-syntax").is_none());
    assert!(RuleId::parse("unused-waiver").is_none());

    // Unused waivers are flagged so stale exemptions cannot linger.
    let src = "// a4-lint: allow(counter-safety) -- stale excuse\nfn f() {}\n";
    assert_eq!(fire(src, SIM_RULES), vec![(RuleId::UnusedWaiver, 1)]);
}

#[test]
fn mirror_rule_fires_on_a_forgotten_field() {
    const SPEC: MirrorSpec = MirrorSpec {
        struct_name: "C",
        mirrors: &[("C", "accumulate")],
    };
    let good = "struct C { a: u64, b: u64 }\nimpl C {\n    fn accumulate(&mut self, o: &Self) {\n        self.a += o.a;\n        self.b += o.b;\n    }\n}\n";
    assert!(check_mirrors("fixture.rs", good, &[SPEC]).is_empty());

    let bad = "struct C { a: u64, b: u64 }\nimpl C {\n    fn accumulate(&mut self, o: &Self) {\n        self.a += o.a;\n    }\n}\n";
    let findings = check_mirrors("fixture.rs", bad, &[SPEC]);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, RuleId::Mirror);
    assert!(
        findings[0].message.contains("`b`"),
        "{}",
        findings[0].message
    );
}

fn repo_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels under the workspace root")
        .to_path_buf()
}

/// The acceptance bar: the whole workspace lints clean — every
/// remaining wrap/unwrap/IO site carries a reasoned waiver.
#[test]
fn workspace_lints_clean() {
    let findings = lint_workspace(&repo_root()).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "workspace must lint clean; run `cargo run -p a4-lint -- --workspace`:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The other acceptance bar: re-introducing PR 5's double-reap bug —
/// `wrapping_sub` on `Fio::outstanding` instead of `checked_sub` — is
/// caught by counter-safety in the fio tier.
#[test]
fn reintroducing_the_fio_wrapping_sub_is_caught() {
    let rel = "crates/workloads/src/fio.rs";
    let src = std::fs::read_to_string(repo_root().join(rel)).expect("fio.rs readable");
    assert!(
        src.contains("checked_sub"),
        "fio reap path should use checked_sub (the PR 5 fix)"
    );
    let rules = rules_for(rel);
    assert!(rules.contains(&RuleId::CounterSafety), "fio is sim tier");
    assert!(
        lint_source(rel, &src, rules).is_empty(),
        "pristine fio.rs lints clean"
    );

    let regressed = src.replace("checked_sub", "wrapping_sub");
    let findings = lint_source(rel, &regressed, rules);
    assert!(
        findings.iter().any(|f| f.rule == RuleId::CounterSafety),
        "the double-reap regression must trip counter-safety: {findings:?}"
    );
}

/// The real `stats.rs` passes its mirror audit, and deleting a field's
/// mention from `merge` (the add-a-counter-forget-the-flush bug) fails
/// it.
#[test]
fn stats_mirror_audit_guards_merge() {
    let rel = "crates/cache/src/stats.rs";
    let src = std::fs::read_to_string(repo_root().join(rel)).expect("stats.rs readable");
    let specs = a4_lint::workspace_mirrors()
        .iter()
        .find(|(file, _)| *file == rel)
        .expect("stats.rs has mirror specs")
        .1;
    assert!(
        check_mirrors(rel, &src, specs).is_empty(),
        "pristine stats.rs passes the mirror audit"
    );

    // Simulate forgetting the device-leak counter in the shard merge.
    let forgot = src.replace("dst.dma_leaks += src.dma_leaks;", "");
    let findings = check_mirrors(rel, &forgot, specs);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == RuleId::Mirror && f.message.contains("dma_leaks")),
        "forgotten field must fail the audit: {findings:?}"
    );
}

/// The scanner sees the files the contract is about and skips the ones
/// it exempts.
#[test]
fn workspace_walk_covers_the_right_files() {
    let files = workspace_files(&repo_root()).expect("workspace walk");
    for must in [
        "crates/cache/src/lru.rs",
        "crates/workloads/src/fio.rs",
        "crates/experiments/src/queue.rs",
        "crates/experiments/src/bin/a4_repro.rs",
        "crates/lint/src/rules.rs",
        "src/lib.rs",
    ] {
        assert!(files.iter().any(|f| f == must), "walk must include {must}");
    }
    assert!(
        !files.iter().any(|f| f.starts_with("crates/compat/")),
        "compat crates are exempt"
    );
}
