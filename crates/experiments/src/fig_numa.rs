//! NUMA placement sweep (beyond the paper): the §7.1 microbenchmark mix
//! on socket 0 of a two-socket system, with the NIC and the SSD swept
//! between the local socket and the remote one.
//!
//! The paper's colocation results all assume I/O lands on the socket
//! that owns the DCA-capable LLC. Real deployments routinely mis-place
//! NICs and NVMe across sockets; this figure quantifies what that costs
//! under each LLC-management scheme:
//!
//! * **remote-nic** — the NIC (and its Rx rings) sit on socket 1 while
//!   every consumer core is on socket 0: DCA still injects into socket
//!   1's LLC, but each descriptor/payload line is consumed across the
//!   UPI link (one hop per line, no MLC residency), so network latency
//!   rises and per-budget throughput falls;
//! * **remote-ssd** — the SSD sits on socket 1 while FIO's buffers are
//!   homed with FIO on socket 0: every DMA write crosses the link and —
//!   DDIO being socket-local — cannot DCA-inject, so consumption comes
//!   from memory instead of the DCA ways.
//!
//! Cells are generated from a typed sweep ([`crate::runner::TypedSweep2`]):
//! the placement and scheme axes carry their values, so `specs()` is the
//! grid itself rather than a label-to-value re-derivation.

use crate::runner::{SweepRunner, TypedAxis, TypedSweep2};
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, Scheme, SystemTweaks, WorkloadSpec};
use crate::table::Table;
use a4_model::Priority;
use a4_sim::LatencyKind;

/// Where the I/O devices sit relative to the (socket-0) workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// NIC and SSD both on socket 0 (the paper's implicit assumption).
    Local,
    /// NIC on socket 1, SSD local.
    RemoteNic,
    /// SSD on socket 1, NIC local.
    RemoteSsd,
}

impl Placement {
    /// Display label ("local", "remote-nic", "remote-ssd").
    pub fn label(self) -> &'static str {
        match self {
            Placement::Local => "local",
            Placement::RemoteNic => "remote-nic",
            Placement::RemoteSsd => "remote-ssd",
        }
    }
}

/// The typed placement × scheme grid every entry point shares.
pub fn grid() -> TypedSweep2<Placement, Scheme> {
    TypedSweep2::new(
        TypedAxis::new(
            "placement",
            [Placement::Local, Placement::RemoteNic, Placement::RemoteSsd].map(|p| (p, p.label())),
        ),
        TypedAxis::new("scheme", Scheme::main_three().map(|s| (s, s.label()))),
    )
}

/// The §7.1 mix on socket 0 of a two-socket system, devices placed per
/// `placement`.
pub fn mix_spec(opts: &RunOpts, scheme: Scheme, placement: Placement) -> ScenarioSpec {
    let nic_socket = u8::from(placement == Placement::RemoteNic);
    let ssd_socket = u8::from(placement == Placement::RemoteSsd);
    ScenarioSpec::new(
        format!("fig_numa {} {}", placement.label(), scheme.label()),
        *opts,
    )
    .with_system(SystemTweaks::two_socket(None))
    .with_nic_on(nic_socket, 4, 1514)
    .with_ssd_on(ssd_socket)
    .with_workload_on(
        0,
        "dpdk",
        WorkloadSpec::Dpdk {
            device: "nic".into(),
            touch: true,
        },
        &[0, 1, 2, 3],
        Priority::High,
    )
    .with_workload_on(
        0,
        "fio",
        WorkloadSpec::Fio {
            device: "ssd".into(),
            block_kib: 512,
        },
        &[4, 5, 6, 7],
        Priority::Low,
    )
    .with_workload_on(
        0,
        "xmem1",
        WorkloadSpec::XMem { instance: 1 },
        &[8, 9],
        Priority::High,
    )
    .with_workload_on(
        0,
        "xmem2",
        WorkloadSpec::XMem { instance: 2 },
        &[10],
        Priority::Low,
    )
    .with_workload_on(
        0,
        "xmem3",
        WorkloadSpec::XMem { instance: 3 },
        &[11],
        Priority::Low,
    )
    .with_scheme(scheme)
}

/// All cells of the figure, generated from the typed grid (placement
/// major, scheme minor — the same order `grid().sweep().cells()`
/// enumerates).
pub fn specs(opts: &RunOpts) -> Vec<ScenarioSpec> {
    grid().map(|&placement, &scheme| mix_spec(opts, scheme, placement))
}

/// Runs the full figure serially.
pub fn run(opts: &RunOpts) -> Table {
    run_with(opts, &SweepRunner::serial())
}

/// Runs the full figure, fanning cells out over `runner`: per placement,
/// per scheme, DPDK-T p99 latency (µs) and rx throughput (GB/s), FIO
/// mean block latency (µs) and I/O throughput (GB/s).
pub fn run_with(opts: &RunOpts, runner: &SweepRunner) -> Table {
    let runs = runner
        .run_specs(&specs(opts))
        .expect("static fig_numa grid");
    table(&runs)
}

/// Renders the figure from the runs of [`specs`] (same order).
pub fn table(runs: &[ScenarioRun]) -> Table {
    let grid = grid();
    let mut columns = Vec::new();
    for scheme in &grid.b.values {
        columns.push(format!("{}_net_p99_us", scheme.label()));
        columns.push(format!("{}_rx_gbps", scheme.label()));
        columns.push(format!("{}_sto_us", scheme.label()));
        columns.push(format!("{}_sto_gbps", scheme.label()));
    }
    let mut table = Table::new(
        "fig_numa",
        "I/O metrics vs NIC/SSD socket placement (2-socket, UPI 80ns)",
        columns,
    );
    for (chunk, placement) in runs.chunks_exact(grid.b.len()).zip(&grid.a.labels) {
        let mut row = Vec::new();
        for run in chunk {
            row.push(run.p99_latency_us("dpdk", LatencyKind::NetTotal));
            row.push(run.io_gbps("dpdk"));
            row.push(run.mean_latency_us("fio", LatencyKind::StorageTotal));
            row.push(run.io_gbps("fio"));
        }
        table.push(placement.clone(), row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunOpts {
        RunOpts {
            warmup: 12,
            measure: 4,
            seed: 0xA4,
        }
    }

    #[test]
    fn specs_follow_the_typed_grid_order() {
        let opts = RunOpts::quick();
        let specs = specs(&opts);
        let cells = grid().sweep().cells();
        assert_eq!(specs.len(), cells.len());
        for (spec, cell) in specs.iter().zip(&cells) {
            assert_eq!(
                spec.name,
                format!("fig_numa {} {}", cell.labels[0], cell.labels[1]),
                "spec order must match the label grid's cell order"
            );
            assert_eq!(spec.system.sockets, Some(2));
            spec.validate().expect("static fig_numa cells are valid");
        }
    }

    #[test]
    fn remote_placement_is_strictly_slower() {
        let opts = quick();
        let local = mix_spec(&opts, Scheme::Default, Placement::Local)
            .build()
            .unwrap()
            .run();
        let remote_nic = mix_spec(&opts, Scheme::Default, Placement::RemoteNic)
            .build()
            .unwrap()
            .run();
        let remote_ssd = mix_spec(&opts, Scheme::Default, Placement::RemoteSsd)
            .build()
            .unwrap()
            .run();
        // The acceptance bar: remote cells show strictly higher I/O
        // latency than local cells.
        let net_local = local.mean_latency_us("dpdk", LatencyKind::NetTotal);
        let net_remote = remote_nic.mean_latency_us("dpdk", LatencyKind::NetTotal);
        assert!(
            net_remote > net_local,
            "remote NIC must inflate network latency: local={net_local:.1}us \
             remote={net_remote:.1}us"
        );
        // For the remote SSD the causal chain is DCA defeat: cross-socket
        // DMA lands in memory, so every consumed line costs DRAM instead
        // of a DCA-way hit. That shows directly (and robustly) in the
        // block *consumption* latency; the end-to-end StorageTotal is
        // dominated by queueing/transfer time, where the same delta is
        // present but thin.
        let sto_local = local.mean_latency_us("fio", LatencyKind::StorageRegex);
        let sto_remote = remote_ssd.mean_latency_us("fio", LatencyKind::StorageRegex);
        assert!(
            sto_remote > sto_local,
            "remote SSD must inflate block consumption latency: \
             local={sto_local:.1}us remote={sto_remote:.1}us"
        );
        // And the throughput side of the NIC story: per-budget payload
        // consumption falls when every line crosses the UPI link.
        assert!(
            remote_nic.io_gbps("dpdk") < local.io_gbps("dpdk"),
            "remote NIC must lower network consumption throughput"
        );
    }
}
