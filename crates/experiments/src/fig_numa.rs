//! NUMA placement sweep (beyond the paper): the §7.1 microbenchmark mix
//! on socket 0 of a two-socket system, with the NIC and the SSD swept
//! between the local socket and the remote one.
//!
//! The paper's colocation results all assume I/O lands on the socket
//! that owns the DCA-capable LLC. Real deployments routinely mis-place
//! NICs and NVMe across sockets; this figure quantifies what that costs
//! under each LLC-management scheme:
//!
//! * **remote-nic** — the NIC (and its Rx rings) sit on socket 1 while
//!   every consumer core is on socket 0: DCA still injects into socket
//!   1's LLC, but each descriptor/payload line is consumed across the
//!   UPI link (one hop per line, no MLC residency), so network latency
//!   rises and per-budget throughput falls;
//! * **remote-ssd** — the SSD sits on socket 1 while FIO's buffers are
//!   homed with FIO on socket 0: every DMA write crosses the link and —
//!   DDIO being socket-local — cannot DCA-inject, so consumption comes
//!   from memory instead of the DCA ways.
//!
//! Cells are generated from a typed sweep ([`crate::runner::TypedSweep2`]):
//! the placement and scheme axes carry their values, so `specs()` is the
//! grid itself rather than a label-to-value re-derivation.
//!
//! A second panel — the **saturation ramp** ([`ramp_specs`] /
//! [`ramp_table`]) — ramps streamer count on a four-socket system whose
//! UPI links are capacity-limited to [`RAMP_GBPS`]: the local arm's
//! memory throughput keeps growing with offered load while the remote
//! arm's (0, 1)-link throughput flattens at the link's capacity. The
//! paper has no such figure; it exists because the simulator's link
//! model makes the saturation cliff measurable.

use crate::runner::{SweepRunner, TypedAxis, TypedSweep2};
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, Scheme, SystemTweaks, WorkloadSpec};
use crate::table::Table;
use a4_model::Priority;
use a4_sim::LatencyKind;

/// Where the I/O devices sit relative to the (socket-0) workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// NIC and SSD both on socket 0 (the paper's implicit assumption).
    Local,
    /// NIC on socket 1, SSD local.
    RemoteNic,
    /// SSD on socket 1, NIC local.
    RemoteSsd,
}

impl Placement {
    /// Display label ("local", "remote-nic", "remote-ssd").
    pub fn label(self) -> &'static str {
        match self {
            Placement::Local => "local",
            Placement::RemoteNic => "remote-nic",
            Placement::RemoteSsd => "remote-ssd",
        }
    }
}

/// The typed placement × scheme grid every entry point shares.
pub fn grid() -> TypedSweep2<Placement, Scheme> {
    TypedSweep2::new(
        TypedAxis::new(
            "placement",
            [Placement::Local, Placement::RemoteNic, Placement::RemoteSsd].map(|p| (p, p.label())),
        ),
        TypedAxis::new("scheme", Scheme::main_three().map(|s| (s, s.label()))),
    )
}

/// The §7.1 mix on socket 0 of a two-socket system, devices placed per
/// `placement`.
pub fn mix_spec(opts: &RunOpts, scheme: Scheme, placement: Placement) -> ScenarioSpec {
    let nic_socket = u8::from(placement == Placement::RemoteNic);
    let ssd_socket = u8::from(placement == Placement::RemoteSsd);
    ScenarioSpec::new(
        format!("fig_numa {} {}", placement.label(), scheme.label()),
        *opts,
    )
    .with_system(SystemTweaks::two_socket(None))
    .with_nic_on(nic_socket, 4, 1514)
    .with_ssd_on(ssd_socket)
    .with_workload_on(
        0,
        "dpdk",
        WorkloadSpec::Dpdk {
            device: "nic".into(),
            touch: true,
        },
        &[0, 1, 2, 3],
        Priority::High,
    )
    .with_workload_on(
        0,
        "fio",
        WorkloadSpec::Fio {
            device: "ssd".into(),
            block_kib: 512,
        },
        &[4, 5, 6, 7],
        Priority::Low,
    )
    .with_workload_on(
        0,
        "xmem1",
        WorkloadSpec::XMem { instance: 1 },
        &[8, 9],
        Priority::High,
    )
    .with_workload_on(
        0,
        "xmem2",
        WorkloadSpec::XMem { instance: 2 },
        &[10],
        Priority::Low,
    )
    .with_workload_on(
        0,
        "xmem3",
        WorkloadSpec::XMem { instance: 3 },
        &[11],
        Priority::Low,
    )
    .with_scheme(scheme)
}

/// All cells of the figure, generated from the typed grid (placement
/// major, scheme minor — the same order `grid().sweep().cells()`
/// enumerates).
pub fn specs(opts: &RunOpts) -> Vec<ScenarioSpec> {
    grid().map(|&placement, &scheme| mix_spec(opts, scheme, placement))
}

/// Runs the full figure serially.
pub fn run(opts: &RunOpts) -> Table {
    run_with(opts, &SweepRunner::serial())
}

/// Runs the full figure, fanning cells out over `runner`: per placement,
/// per scheme, DPDK-T p99 latency (µs) and rx throughput (GB/s), FIO
/// mean block latency (µs) and I/O throughput (GB/s).
pub fn run_with(opts: &RunOpts, runner: &SweepRunner) -> Table {
    let runs = runner
        .run_specs(&specs(opts))
        .expect("static fig_numa grid");
    table(&runs)
}

/// Renders the figure from the runs of [`specs`] (same order).
pub fn table(runs: &[ScenarioRun]) -> Table {
    let grid = grid();
    let mut columns = Vec::new();
    for scheme in &grid.b.values {
        columns.push(format!("{}_net_p99_us", scheme.label()));
        columns.push(format!("{}_rx_gbps", scheme.label()));
        columns.push(format!("{}_sto_us", scheme.label()));
        columns.push(format!("{}_sto_gbps", scheme.label()));
    }
    let mut table = Table::new(
        "fig_numa",
        "I/O metrics vs NIC/SSD socket placement (2-socket, UPI 80ns)",
        columns,
    );
    for (chunk, placement) in runs.chunks_exact(grid.b.len()).zip(&grid.a.labels) {
        let mut row = Vec::new();
        for run in chunk {
            row.push(run.p99_latency_us("dpdk", LatencyKind::NetTotal));
            row.push(run.io_gbps("dpdk"));
            row.push(run.mean_latency_us("fio", LatencyKind::StorageTotal));
            row.push(run.io_gbps("fio"));
        }
        table.push(placement.clone(), row);
    }
    table
}

/// Per-direction UPI link capacity of the saturation ramp, GB/s. Small
/// enough that a handful of streamers overruns it.
pub const RAMP_GBPS: f64 = 1.0;

/// Streamer counts of the ramp's load axis.
pub const RAMP_STREAMERS: [usize; 4] = [1, 2, 4, 6];

/// One ramp cell: `k` single-core X-Mem streamers on socket 0 of a
/// four-socket system with [`RAMP_GBPS`] links. The local arm homes
/// every buffer with its streamer; the remote arm homes them all on
/// socket 1, so the whole offered load funnels through the (0, 1) link.
pub fn ramp_spec(opts: &RunOpts, remote: bool, k: usize) -> ScenarioSpec {
    let arm = if remote { "remote" } else { "local" };
    let mut spec =
        ScenarioSpec::new(format!("fig_numa ramp {arm} x{k}"), *opts).with_system(SystemTweaks {
            sockets: Some(a4_model::MAX_SOCKETS),
            upi_gbps: Some(RAMP_GBPS),
            ..SystemTweaks::none()
        });
    for i in 0..k {
        let role = format!("s{i}");
        let wl = WorkloadSpec::XMem { instance: 1 };
        let cores = [i as u8];
        spec = if remote {
            spec.with_workload_on_homed(0, 1, role, wl, &cores, Priority::High)
        } else {
            spec.with_workload_on(0, role, wl, &cores, Priority::High)
        };
    }
    spec
}

/// All ramp cells: the local arm over [`RAMP_STREAMERS`], then the
/// remote arm in the same order.
pub fn ramp_specs(opts: &RunOpts) -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    for &remote in &[false, true] {
        for &k in &RAMP_STREAMERS {
            specs.push(ramp_spec(opts, remote, k));
        }
    }
    specs
}

/// Renders the ramp from the runs of [`ramp_specs`] (same order): per
/// streamer count, the local arm's memory read throughput and the
/// remote arm's memory and (0, 1)-link read throughput. The remote link
/// column flattening at [`RAMP_GBPS`] while the local column keeps
/// growing *is* the figure.
pub fn ramp_table(runs: &[ScenarioRun]) -> Table {
    let n = RAMP_STREAMERS.len();
    let mut table = Table::new(
        "fig_numa_ramp",
        "UPI saturation ramp (4-socket, 1 GB/s links): read GB/s vs streamers",
        vec![
            "local_mem_gbps".to_string(),
            "remote_mem_gbps".to_string(),
            "remote_link01_gbps".to_string(),
        ],
    );
    for (i, k) in RAMP_STREAMERS.iter().enumerate() {
        let local = &runs[i];
        let remote = &runs[n + i];
        table.push(
            format!("x{k}"),
            vec![
                local.mem_read_gbps(),
                remote.mem_read_gbps(),
                remote.upi_link_read_gbps(0, 1),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunOpts {
        RunOpts {
            warmup: 12,
            measure: 4,
            seed: 0xA4,
        }
    }

    #[test]
    fn specs_follow_the_typed_grid_order() {
        let opts = RunOpts::quick();
        let specs = specs(&opts);
        let cells = grid().sweep().cells();
        assert_eq!(specs.len(), cells.len());
        for (spec, cell) in specs.iter().zip(&cells) {
            assert_eq!(
                spec.name,
                format!("fig_numa {} {}", cell.labels[0], cell.labels[1]),
                "spec order must match the label grid's cell order"
            );
            assert_eq!(spec.system.sockets, Some(2));
            spec.validate().expect("static fig_numa cells are valid");
        }
    }

    #[test]
    fn ramp_specs_are_valid_and_ordered() {
        let opts = RunOpts::quick();
        let specs = ramp_specs(&opts);
        assert_eq!(specs.len(), 2 * RAMP_STREAMERS.len());
        for (i, spec) in specs.iter().enumerate() {
            let arm = if i < RAMP_STREAMERS.len() {
                "local"
            } else {
                "remote"
            };
            let k = RAMP_STREAMERS[i % RAMP_STREAMERS.len()];
            assert_eq!(spec.name, format!("fig_numa ramp {arm} x{k}"));
            assert_eq!(spec.system.sockets, Some(a4_model::MAX_SOCKETS));
            assert_eq!(spec.system.upi_gbps, Some(RAMP_GBPS));
            assert_eq!(spec.workloads.len(), k);
            for p in &spec.workloads {
                assert_eq!(p.buffer_home, (arm == "remote").then_some(1));
            }
            spec.validate().expect("static ramp cells are valid");
        }
    }

    #[test]
    fn ramp_remote_throughput_flattens_at_link_capacity() {
        let opts = RunOpts::quick();
        let runs: Vec<ScenarioRun> = ramp_specs(&opts)
            .into_iter()
            .map(|s| s.build().unwrap().run())
            .collect();
        let n = RAMP_STREAMERS.len();
        let local: Vec<f64> = runs[..n].iter().map(|r| r.mem_read_gbps()).collect();
        let link: Vec<f64> = runs[n..]
            .iter()
            .map(|r| r.upi_link_read_gbps(0, 1))
            .collect();

        // Low offered load: doubling the streamers nearly doubles the
        // link throughput.
        assert!(
            link[1] > link[0] * 1.3,
            "unsaturated link must scale with load: {link:?}"
        );
        // High offered load: throughput flattens at the configured
        // capacity instead of scaling — x6 gains almost nothing over x4
        // and never exceeds the link's capacity.
        assert!(
            link[3] <= link[2] * 1.25,
            "remote throughput must flatten: {link:?}"
        );
        assert!(
            link[3] <= RAMP_GBPS * 1.05,
            "remote throughput exceeded link capacity: {link:?}"
        );
        assert!(
            link[3] >= RAMP_GBPS * 0.4,
            "saturated link should run near capacity: {link:?}"
        );
        // The local arm sees no link and keeps scaling.
        assert!(
            local[3] > local[0] * 2.5,
            "local throughput must keep growing: {local:?}"
        );
        assert!(
            local[3] > link[3] * 2.0,
            "local must beat the capacity-limited link: local={local:?} link={link:?}"
        );

        // The rendered table carries the same story.
        let table = ramp_table(&runs);
        assert_eq!(table.rows.len(), n);
    }

    #[test]
    fn remote_placement_is_strictly_slower() {
        let opts = quick();
        let local = mix_spec(&opts, Scheme::Default, Placement::Local)
            .build()
            .unwrap()
            .run();
        let remote_nic = mix_spec(&opts, Scheme::Default, Placement::RemoteNic)
            .build()
            .unwrap()
            .run();
        let remote_ssd = mix_spec(&opts, Scheme::Default, Placement::RemoteSsd)
            .build()
            .unwrap()
            .run();
        // The acceptance bar: remote cells show strictly higher I/O
        // latency than local cells.
        let net_local = local.mean_latency_us("dpdk", LatencyKind::NetTotal);
        let net_remote = remote_nic.mean_latency_us("dpdk", LatencyKind::NetTotal);
        assert!(
            net_remote > net_local,
            "remote NIC must inflate network latency: local={net_local:.1}us \
             remote={net_remote:.1}us"
        );
        // For the remote SSD the causal chain is DCA defeat: cross-socket
        // DMA lands in memory, so every consumed line costs DRAM instead
        // of a DCA-way hit. That shows directly (and robustly) in the
        // block *consumption* latency; the end-to-end StorageTotal is
        // dominated by queueing/transfer time, where the same delta is
        // present but thin.
        let sto_local = local.mean_latency_us("fio", LatencyKind::StorageRegex);
        let sto_remote = remote_ssd.mean_latency_us("fio", LatencyKind::StorageRegex);
        assert!(
            sto_remote > sto_local,
            "remote SSD must inflate block consumption latency: \
             local={sto_local:.1}us remote={sto_remote:.1}us"
        );
        // And the throughput side of the NIC story: per-budget payload
        // consumption falls when every line crosses the UPI link.
        assert!(
            remote_nic.io_gbps("dpdk") < local.io_gbps("dpdk"),
            "remote NIC must lower network consumption throughput"
        );
    }
}
