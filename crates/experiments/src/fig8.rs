//! Fig. 8: the two F2 mechanisms in isolation.
//!
//! * **8a** — selectively disabling DCA for the SSD (`[SSD-DCA off]`)
//!   removes the storage-driven latency inflation of DPDK-T while leaving
//!   FIO throughput untouched (observation O4).
//! * **8b** — shrinking FIO's ways from `[2:5]` down to `[2:2]` lowers
//!   co-running X-Mem's miss rate with flat storage throughput
//!   (observation O5, the basis of pseudo LLC bypassing).

use crate::runner::{SweepRunner, TypedAxis, TypedSweep2};
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, WorkloadSpec};
use crate::table::Table;
use a4_model::{Priority, WayMask};
use a4_sim::LatencyKind;

/// Block sizes of Fig. 8a in KiB.
pub const BLOCK_KIB: [u64; 6] = [16, 32, 64, 128, 256, 512];

/// FIO mask upper ways of Fig. 8b, in figure order.
pub const FIO_LAST_WAYS: [usize; 4] = [5, 4, 3, 2];

/// One Fig. 8a cell: DPDK-T + FIO with only the SSD port's DCA toggled
/// (the NIC keeps its DDIO fast path).
pub fn spec_8a(opts: &RunOpts, block_kib: u64, ssd_dca: bool) -> ScenarioSpec {
    ScenarioSpec::new(
        format!(
            "fig8a {block_kib}KB ssd-dca={}",
            if ssd_dca { "on" } else { "off" }
        ),
        *opts,
    )
    .with_nic(4, 1024)
    .with_ssd()
    .with_workload(
        "dpdk",
        WorkloadSpec::Dpdk {
            device: "nic".into(),
            touch: true,
        },
        &[0, 1, 2, 3],
        Priority::High,
    )
    .with_workload(
        "fio",
        WorkloadSpec::Fio {
            device: "ssd".into(),
            block_kib,
        },
        &[4, 5, 6, 7],
        Priority::Low,
    )
    .with_cat(
        1,
        WayMask::from_paper_range(4, 5).expect("static"),
        &["dpdk"],
    )
    .with_cat(
        2,
        WayMask::from_paper_range(2, 3).expect("static"),
        &["fio"],
    )
    .with_device_dca("ssd", ssd_dca)
}

/// One Fig. 8b cell: FIO at `[2:fio_last_way]`, X-Mem at `[2:5]`, SSD
/// DCA already off (the 8a insight).
pub fn spec_8b(opts: &RunOpts, fio_last_way: usize) -> ScenarioSpec {
    ScenarioSpec::new(format!("fig8b fio@[2:{fio_last_way}]"), *opts)
        .with_ssd()
        .with_workload(
            "fio",
            WorkloadSpec::Fio {
                device: "ssd".into(),
                block_kib: 2048,
            },
            &[0, 1, 2, 3],
            Priority::Low,
        )
        .with_workload(
            "xmem",
            WorkloadSpec::XMem { instance: 1 },
            &[4, 5],
            Priority::High,
        )
        .with_cat(
            1,
            WayMask::from_paper_range(2, fio_last_way).expect("valid"),
            &["fio"],
        )
        .with_cat(
            2,
            WayMask::from_paper_range(2, 5).expect("static"),
            &["xmem"],
        )
        .with_device_dca("ssd", false)
}

/// The Fig. 8a block × SSD-DCA grid (block slowest, off before on).
pub fn grid_a() -> TypedSweep2<u64, bool> {
    TypedSweep2::new(
        TypedAxis::new("block_kib", BLOCK_KIB.map(|k| (k, format!("{k}KB")))),
        TypedAxis::new("ssd_dca", [(false, "off"), (true, "on")]),
    )
}

/// The Fig. 8b FIO-mask axis, in figure order.
pub fn axis_b() -> TypedAxis<usize> {
    TypedAxis::new(
        "fio_last_way",
        FIO_LAST_WAYS.map(|w| (w, format!("[2:{w}]"))),
    )
}

/// The Fig. 8a grid: off/on per block size, block-major.
pub fn specs_a(opts: &RunOpts) -> Vec<ScenarioSpec> {
    grid_a().map(|&kib, &ssd_dca| spec_8a(opts, kib, ssd_dca))
}

/// The Fig. 8b cells, in figure order.
pub fn specs_b(opts: &RunOpts) -> Vec<ScenarioSpec> {
    axis_b()
        .values
        .into_iter()
        .map(|last| spec_8b(opts, last))
        .collect()
}

/// All Fig. 8a cells followed by the 8b cells.
pub fn specs(opts: &RunOpts) -> Vec<ScenarioSpec> {
    let mut specs = specs_a(opts);
    specs.extend(specs_b(opts));
    specs
}

fn metrics_8a(run: &ScenarioRun) -> (f64, f64, f64) {
    (
        run.mean_latency_us("dpdk", LatencyKind::NetTotal),
        run.p99_latency_us("dpdk", LatencyKind::NetTotal),
        run.io_gbps("fio"),
    )
}

/// One Fig. 8a point: returns `(net_al_us, net_tl_us, storage_gbps)`.
pub fn run_point_8a(opts: &RunOpts, block_kib: u64, ssd_dca: bool) -> (f64, f64, f64) {
    let run = spec_8a(opts, block_kib, ssd_dca)
        .build()
        .expect("static fig8a layout")
        .run();
    metrics_8a(&run)
}

/// One Fig. 8b point: FIO at `[2:n]`, X-Mem at `[2:5]`; returns
/// `(xmem_llc_miss, storage_gbps)`.
pub fn run_point_8b(opts: &RunOpts, fio_last_way: usize) -> (f64, f64) {
    let run = spec_8b(opts, fio_last_way)
        .build()
        .expect("static fig8b layout")
        .run();
    (run.llc_miss_rate("xmem"), run.io_gbps("fio"))
}

/// Runs Fig. 8a serially.
pub fn run_a(opts: &RunOpts) -> Table {
    run_a_with(opts, &SweepRunner::serial())
}

/// Renders Fig. 8a from the runs of [`specs_a`] (same order).
pub fn table_a(runs: &[ScenarioRun]) -> Table {
    let grid = grid_a();
    let mut table = Table::new(
        "fig8a",
        "[SSD-DCA off] vs [DCA on]: DPDK-T latency and FIO throughput",
        [
            "al_ssd_off_us",
            "tl_ssd_off_us",
            "tp_ssd_off",
            "al_on_us",
            "tl_on_us",
            "tp_on",
        ],
    );
    for (pair, label) in runs.chunks_exact(grid.b.len()).zip(&grid.a.labels) {
        let (al_off, tl_off, tp_off) = metrics_8a(&pair[0]);
        let (al_on, tl_on, tp_on) = metrics_8a(&pair[1]);
        table.push(label.clone(), [al_off, tl_off, tp_off, al_on, tl_on, tp_on]);
    }
    table
}

/// Renders Fig. 8b from the runs of [`specs_b`] (same order).
pub fn table_b(runs: &[ScenarioRun]) -> Table {
    let mut table = Table::new(
        "fig8b",
        "shrinking FIO's trash ways: X-Mem miss rate and FIO throughput",
        ["xmem_llc_miss", "storage_tp"],
    );
    for (run, label) in runs.iter().zip(&axis_b().labels) {
        table.push(
            label.clone(),
            [run.llc_miss_rate("xmem"), run.io_gbps("fio")],
        );
    }
    table
}

/// Runs Fig. 8a, fanning cells out over `runner`.
pub fn run_a_with(opts: &RunOpts, runner: &SweepRunner) -> Table {
    let runs = runner
        .run_specs(&specs_a(opts))
        .expect("static fig8a layout");
    table_a(&runs)
}

/// Runs Fig. 8b serially.
pub fn run_b(opts: &RunOpts) -> Table {
    run_b_with(opts, &SweepRunner::serial())
}

/// Runs Fig. 8b, fanning cells out over `runner`.
pub fn run_b_with(opts: &RunOpts, runner: &SweepRunner) -> Table {
    let runs = runner
        .run_specs(&specs_b(opts))
        .expect("static fig8b layout");
    table_b(&runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_dca_off_lowers_network_latency_not_storage_tp() {
        let opts = RunOpts::quick();
        let (al_off, _, tp_off) = run_point_8a(&opts, 128, false);
        let (al_on, _, tp_on) = run_point_8a(&opts, 128, true);
        assert!(
            al_off < al_on,
            "[SSD-DCA off] helps DPDK-T: off={al_off:.1}us on={al_on:.1}us"
        );
        let ratio = tp_off / tp_on.max(1e-9);
        assert!(
            (0.8..1.25).contains(&ratio),
            "FIO unharmed: off={tp_off:.2} on={tp_on:.2}"
        );
    }

    #[test]
    fn fewer_fio_ways_help_xmem_without_hurting_fio() {
        let opts = RunOpts::quick();
        let (miss_wide, tp_wide) = run_point_8b(&opts, 5);
        let (miss_narrow, tp_narrow) = run_point_8b(&opts, 2);
        assert!(
            miss_narrow < miss_wide,
            "fewer overlapped ways: [2:5]={miss_wide:.3} [2:2]={miss_narrow:.3}"
        );
        let ratio = tp_narrow / tp_wide.max(1e-9);
        assert!(
            (0.8..1.25).contains(&ratio),
            "storage tp flat: {tp_wide:.2} -> {tp_narrow:.2}"
        );
    }
}
