//! Fig. 8: the two F2 mechanisms in isolation.
//!
//! * **8a** — selectively disabling DCA for the SSD (`[SSD-DCA off]`)
//!   removes the storage-driven latency inflation of DPDK-T while leaving
//!   FIO throughput untouched (observation O4).
//! * **8b** — shrinking FIO's ways from `[2:5]` down to `[2:2]` lowers
//!   co-running X-Mem's miss rate with flat storage throughput
//!   (observation O5, the basis of pseudo LLC bypassing).

use crate::scenario::{self, RunOpts};
use crate::table::Table;
use a4_core::Harness;
use a4_model::{ClosId, Priority, WayMask};
use a4_sim::LatencyKind;

/// Block sizes of Fig. 8a in KiB.
pub const BLOCK_KIB: [u64; 6] = [16, 32, 64, 128, 256, 512];

/// One Fig. 8a point: returns `(net_al_us, net_tl_us, storage_gbps)`.
pub fn run_point_8a(opts: &RunOpts, block_kib: u64, ssd_dca: bool) -> (f64, f64, f64) {
    let mut sys = scenario::base_system(opts);
    let nic = scenario::attach_nic(&mut sys, 4, 1024).expect("port free");
    let ssd = scenario::attach_ssd(&mut sys).expect("port free");
    let dpdk =
        scenario::add_dpdk(&mut sys, nic, true, &[0, 1, 2, 3], Priority::High).expect("cores free");
    let lines = scenario::block_lines(&sys, block_kib);
    let fio =
        scenario::add_fio(&mut sys, ssd, lines, &[4, 5, 6, 7], Priority::Low).expect("cores free");
    sys.cat_set_mask(ClosId(1), WayMask::from_paper_range(4, 5).expect("static"))
        .expect("ok");
    sys.cat_assign_workload(dpdk, ClosId(1))
        .expect("registered");
    sys.cat_set_mask(ClosId(2), WayMask::from_paper_range(2, 3).expect("static"))
        .expect("ok");
    sys.cat_assign_workload(fio, ClosId(2)).expect("registered");
    // The hidden knob: NIC keeps DCA, only the SSD's port is toggled.
    sys.set_device_dca(ssd, ssd_dca).expect("attached");

    let mut harness = Harness::new(sys);
    let report = harness.run(opts.warmup, opts.measure);
    let secs = report.samples.len() as f64 * 1e-3;
    (
        report.mean_latency_ns(dpdk, LatencyKind::NetTotal) / 1000.0,
        report.p99_latency_ns(dpdk, LatencyKind::NetTotal) as f64 / 1000.0,
        report.total_io_bytes(fio) as f64 / secs / 1e9,
    )
}

/// One Fig. 8b point: FIO at `[2:n]`, X-Mem at `[2:5]`; returns
/// `(xmem_llc_miss, storage_gbps)`.
pub fn run_point_8b(opts: &RunOpts, fio_last_way: usize) -> (f64, f64) {
    let mut sys = scenario::base_system(opts);
    let ssd = scenario::attach_ssd(&mut sys).expect("port free");
    let lines = scenario::block_lines(&sys, 2048);
    let fio =
        scenario::add_fio(&mut sys, ssd, lines, &[0, 1, 2, 3], Priority::Low).expect("cores free");
    let xmem = scenario::add_xmem(&mut sys, 1, &[4, 5], Priority::High).expect("cores free");
    sys.cat_set_mask(
        ClosId(1),
        WayMask::from_paper_range(2, fio_last_way).expect("valid"),
    )
    .expect("ok");
    sys.cat_assign_workload(fio, ClosId(1)).expect("registered");
    sys.cat_set_mask(ClosId(2), WayMask::from_paper_range(2, 5).expect("static"))
        .expect("ok");
    sys.cat_assign_workload(xmem, ClosId(2))
        .expect("registered");
    // Fig. 8b runs with the SSD's DCA already disabled (the 8a insight).
    sys.set_device_dca(ssd, false).expect("attached");

    let mut harness = Harness::new(sys);
    let report = harness.run(opts.warmup, opts.measure);
    let secs = report.samples.len() as f64 * 1e-3;
    (
        report.llc_miss_rate(xmem),
        report.total_io_bytes(fio) as f64 / secs / 1e9,
    )
}

/// Runs Fig. 8a.
pub fn run_a(opts: &RunOpts) -> Table {
    let mut table = Table::new(
        "fig8a",
        "[SSD-DCA off] vs [DCA on]: DPDK-T latency and FIO throughput",
        [
            "al_ssd_off_us",
            "tl_ssd_off_us",
            "tp_ssd_off",
            "al_on_us",
            "tl_on_us",
            "tp_on",
        ],
    );
    for kib in BLOCK_KIB {
        let (al_off, tl_off, tp_off) = run_point_8a(opts, kib, false);
        let (al_on, tl_on, tp_on) = run_point_8a(opts, kib, true);
        table.push(
            format!("{kib}KB"),
            [al_off, tl_off, tp_off, al_on, tl_on, tp_on],
        );
    }
    table
}

/// Runs Fig. 8b.
pub fn run_b(opts: &RunOpts) -> Table {
    let mut table = Table::new(
        "fig8b",
        "shrinking FIO's trash ways: X-Mem miss rate and FIO throughput",
        ["xmem_llc_miss", "storage_tp"],
    );
    for last in [5usize, 4, 3, 2] {
        let (miss, tp) = run_point_8b(opts, last);
        table.push(format!("[2:{last}]"), [miss, tp]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_dca_off_lowers_network_latency_not_storage_tp() {
        let opts = RunOpts::quick();
        let (al_off, _, tp_off) = run_point_8a(&opts, 128, false);
        let (al_on, _, tp_on) = run_point_8a(&opts, 128, true);
        assert!(
            al_off < al_on,
            "[SSD-DCA off] helps DPDK-T: off={al_off:.1}us on={al_on:.1}us"
        );
        let ratio = tp_off / tp_on.max(1e-9);
        assert!(
            (0.8..1.25).contains(&ratio),
            "FIO unharmed: off={tp_off:.2} on={tp_on:.2}"
        );
    }

    #[test]
    fn fewer_fio_ways_help_xmem_without_hurting_fio() {
        let opts = RunOpts::quick();
        let (miss_wide, tp_wide) = run_point_8b(&opts, 5);
        let (miss_narrow, tp_narrow) = run_point_8b(&opts, 2);
        assert!(
            miss_narrow < miss_wide,
            "fewer overlapped ways: [2:5]={miss_wide:.3} [2:2]={miss_narrow:.3}"
        );
        let ratio = tp_narrow / tp_wide.max(1e-9);
        assert!(
            (0.8..1.25).contains(&ratio),
            "storage tp flat: {tp_wide:.2} -> {tp_narrow:.2}"
        );
    }
}
