//! `a4-repro` — regenerates every measured figure of the A4 paper.
//!
//! Usage:
//!
//! ```text
//! a4-repro [FIGURES...] [--quick] [--json DIR]
//!
//! FIGURES: fig3 fig4 fig5 fig6 fig7 fig8 fig11 fig12 fig13 fig14 fig15
//!          (default: all)
//! --quick: short warm-up/measure windows (CI-friendly)
//! --json DIR: additionally dump each table as DIR/<id>.json
//! ```

use a4_experiments::{fig11, fig12, fig13, fig14, fig15, fig3, fig4, fig5, fig6, fig7, fig8};
use a4_experiments::{RunOpts, Table};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let figures: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with("fig"))
        .map(String::as_str)
        .collect();
    let all = figures.is_empty();
    let wants = |name: &str| all || figures.contains(&name);

    let opts = if quick {
        RunOpts::quick()
    } else {
        RunOpts::paper()
    };
    let ctl_opts = if quick {
        RunOpts {
            warmup: 12,
            measure: 4,
            ..RunOpts::quick()
        }
    } else {
        RunOpts::controller()
    };

    let mut tables: Vec<Table> = Vec::new();
    if wants("fig3") {
        eprintln!("[a4-repro] fig3 (way sweep, ~20 runs)...");
        tables.push(fig3::run(&opts, false));
        tables.push(fig3::run(&opts, true));
    }
    if wants("fig4") {
        eprintln!("[a4-repro] fig4 (directory-contention validation)...");
        tables.push(fig4::run(&opts));
    }
    if wants("fig5") {
        eprintln!("[a4-repro] fig5 (storage block-size sweep)...");
        tables.push(fig5::run(&opts));
    }
    if wants("fig6") {
        eprintln!("[a4-repro] fig6 (FIO vs DPDK-T latency)...");
        tables.push(fig6::run(&opts));
    }
    if wants("fig7") {
        eprintln!("[a4-repro] fig7 (overlap vs exclude strategies)...");
        tables.push(fig7::run(&opts));
    }
    if wants("fig8") {
        eprintln!("[a4-repro] fig8 (selective DCA off + trash ways)...");
        tables.push(fig8::run_a(&opts));
        tables.push(fig8::run_b(&opts));
    }
    if wants("fig11") {
        eprintln!("[a4-repro] fig11 (X-Mem vs packet size, 3 schemes)...");
        tables.push(fig11::run(&ctl_opts));
    }
    if wants("fig12") {
        eprintln!("[a4-repro] fig12 (network vs block size, 3 schemes)...");
        tables.push(fig12::run(&ctl_opts));
    }
    if wants("fig13") {
        eprintln!("[a4-repro] fig13 (real-world colocations, 6 schemes)...");
        tables.push(fig13::run(&ctl_opts, true));
        tables.push(fig13::run(&ctl_opts, false));
    }
    if wants("fig14") {
        eprintln!("[a4-repro] fig14 (breakdowns + system metrics)...");
        tables.extend(fig14::run(&ctl_opts));
    }
    if wants("fig15") {
        eprintln!("[a4-repro] fig15 (sensitivity studies)...");
        tables.push(fig15::run_a(&ctl_opts));
        tables.push(fig15::run_b(&ctl_opts));
        tables.push(fig15::run_c(&ctl_opts));
    }

    for table in &tables {
        println!("{table}");
    }
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json output dir");
        for table in &tables {
            let path = format!("{dir}/{}.json", table.id);
            let mut f = std::fs::File::create(&path).expect("create json file");
            let json = serde_json::to_string_pretty(table).expect("tables serialize");
            f.write_all(json.as_bytes()).expect("write json");
            eprintln!("[a4-repro] wrote {path}");
        }
    }
}
