//! `a4-repro` — regenerates every measured figure of the A4 paper.
//!
//! One client of the sweep service ([`a4_experiments::service`]): every
//! figure run is a [`SweepJob`] executed against the shared
//! content-addressed store, and the printed tables are a pure function
//! of that store — which is what makes sharded, queued and resumed runs
//! merge byte-identically.
//!
//! Usage:
//!
//! ```text
//! a4-repro [FIGURES...] [--quick] [--threads N] [--json DIR]
//!          [--dump-specs DIR] [--spec FILE] [--list]
//!          [--cache-dir DIR] [--no-cache] [--cache-gc]
//!          [--max-age-days N] [--replicas N] [--timing]
//!          [--shard I/N] [--merge-only] [--best-effort]
//!          [--enqueue | --worker | --serve] [--shards N]
//!          [--stale-secs S] [--ckpt-every Q] [--max-attempts N]
//!
//! FIGURES: fig3 fig4 fig5 fig6 fig7 fig8 fig11 fig12 fig13 fig14 fig15
//!          fig_numa (default: all)
//! --quick:          short warm-up/measure windows (CI-friendly)
//! --threads N:      fan sweep cells out over N threads (default 1;
//!                   tables are identical for any N)
//! --json DIR:       additionally dump each table as DIR/<id>.json
//! --dump-specs DIR: write each figure's cells as DIR/<fig>.specs.json
//!                   instead of running them
//! --spec FILE:      load a ScenarioSpec (or array of them) from JSON —
//!                   older schema versions are migrated — run it, and
//!                   print a per-role metric table
//! --cache-dir DIR:  the shared result store (default out/.cache);
//!                   cells already stored are loaded instead of
//!                   re-simulated, so edited sweeps re-run only the
//!                   edited cells and interrupted sweeps resume. Tables
//!                   are byte-identical either way.
//! --no-cache:       disable the result store entirely
//! --cache-gc:       garbage-collect the store before running: drop
//!                   entries not touched (stored or loaded) within
//!                   --max-age-days (default 30). With no figures/specs
//!                   requested, exits after the sweep.
//! --replicas N:     run every cell at N derived-seed replicas and
//!                   report mean ± stddev per metric (replicas hit the
//!                   store independently); --json writes <id>.mean.json
//!                   and <id>.stddev.json
//! --shard I/N:      execute only shard I of N of each figure's work
//!                   units into the store (run the other shards in
//!                   other processes against the same --cache-dir);
//!                   tables render only once every shard has landed
//! --merge-only:     never simulate — render each figure's tables
//!                   purely from the store (the merge pass after
//!                   sharded or queued execution)
//! --best-effort:    with --merge-only: render partial sweeps anyway,
//!                   with explicit (missing) cells and a title suffix,
//!                   instead of erroring on missing store entries
//! --enqueue:        split each figure into --shards tasks on the
//!                   store's filesystem job queue and exit
//! --worker:         claim queued tasks (from any figure) one lease at
//!                   a time, execute them into the store, and exit when
//!                   none are claimable; takes no FIGURES
//! --serve:          --enqueue, then work the queue in-process until it
//!                   drains (stale leases are re-claimed), then merge
//!                   and render the tables
//! --shards N:       task count per figure for --enqueue/--serve
//!                   (default 2)
//! --stale-secs S:   lease age after which --worker/--serve re-claim a
//!                   task from a crashed worker (default 300)
//! --ckpt-every Q:   checkpoint each in-flight cell's complete
//!                   simulation state into <store>/ckpt/ every Q quanta
//!                   (default off; 1000 quanta = 1 logical second). A
//!                   killed worker's replacement resumes each cell from
//!                   its latest valid checkpoint instead of quantum 0;
//!                   results are bit-identical either way
//! --max-attempts N: executions a task gets before --worker/--serve
//!                   quarantine it as exhausted instead of retrying
//!                   (default 3); distinct from parse-poison
//! --timing:         run the hot-loop timing harness on the fig12
//!                   representative cell and write BENCH_hotloop.json
//!                   (to --json DIR, or the current directory)
//! --list:           list figures and their cell counts, then exit
//! ```
//!
//! Setting `A4_FAULTS=<seed>` routes every store and queue filesystem
//! operation through a seeded deterministic fault injector
//! ([`a4_experiments::FaultFs`]: ENOSPC/EIO writes, refused renames,
//! torn tmp files). Workers retry transients with bounded backoff and
//! report a fabric-health summary — the chaos knob CI uses to prove
//! that an injected run merges byte-identically to a fault-free one.

use a4_experiments::cache::ResultCache;
use a4_experiments::fig11;
use a4_experiments::service::ServiceError;
use a4_experiments::{drain_queue, fabric_health, Backoff, DrainReport, FaultFs, Fs};
use a4_experiments::{figures, FigureDef, JobTables, SeedPolicy, Shard, SweepJob};
use a4_experiments::{CkptStore, MAX_ATTEMPTS};
use a4_experiments::{JobQueue, Task};
use a4_experiments::{RunOpts, ScenarioSpec, Scheme, SweepRunner, Table, TableStats};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Prints the error and exits with status 2. The CLI front door for
/// every fatal condition: fleet workers and scripted callers get a
/// one-line diagnosis and a clean exit code, never a panic backtrace.
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("[a4-repro] error: {msg}");
    std::process::exit(2);
}

/// `assert!` for user input: bad arguments are usage errors (exit 2
/// via [`fail`]), not program bugs, so they never deserve a backtrace.
fn require(cond: bool, msg: impl std::fmt::Display) {
    if !cond {
        fail(msg);
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        // `--json --quick` must not treat the next flag as a directory.
        _ => fail(format!("{flag} requires a value argument")),
    }
}

fn spec_table(run: &a4_experiments::ScenarioRun) -> Table {
    let mut table = Table::new(
        format!("spec-{}", run.name),
        format!("scenario {} ({})", run.name, run.report.policy),
        ["perf", "ipc", "llc_hit", "io_gbps"],
    );
    for binding in &run.workloads {
        table.push(
            binding.role.clone(),
            [
                run.perf(&binding.role),
                run.ipc(&binding.role),
                run.llc_hit_rate(&binding.role),
                run.io_gbps(&binding.role),
            ],
        );
    }
    table
}

/// The fig12 representative cell the timing harness pins: the §7.1 mix
/// at 1514 B packets / 512 KB blocks — mid-sweep, all contention
/// mechanisms active.
fn timing_cell(opts: &RunOpts, scheme: Scheme) -> ScenarioSpec {
    fig11::mix_spec(opts, scheme, 1514, 512)
}

/// Runs the hot-loop timing harness and writes `BENCH_hotloop.json`:
/// wall-clock and quanta/sec for the fig12 representative cell under the
/// Default and A4-d schemes (best of `reps` runs each).
fn run_timing(quick: bool, json_dir: Option<&str>) {
    let opts = if quick {
        RunOpts {
            warmup: 12,
            measure: 4,
            ..RunOpts::quick()
        }
    } else {
        RunOpts::controller()
    };
    // Quanta per logical second comes from the built cell's system
    // config, so a future quantum change cannot silently skew the
    // trajectory this artifact tracks.
    let probe = timing_cell(&opts, Scheme::Default)
        .build()
        .unwrap_or_else(|e| fail(format!("timing cell failed to build: {e}")));
    let quanta_per_logical_sec = u64::from(probe.harness.system().config().quanta_per_second);
    drop(probe);
    let quanta = (opts.warmup + opts.measure) * quanta_per_logical_sec;
    let reps = 3;
    let mut rows = Vec::new();
    for scheme in [Scheme::Default, Scheme::A4(a4_core::FeatureLevel::D)] {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let scenario = timing_cell(&opts, scheme)
                .build()
                .unwrap_or_else(|e| fail(format!("timing cell failed to build: {e}")));
            let t0 = std::time::Instant::now();
            let run = scenario.run();
            let secs = t0.elapsed().as_secs_f64();
            assert!(run.report.total_instructions_all() > 0);
            best = best.min(secs);
        }
        let qps = quanta as f64 / best;
        eprintln!(
            "[a4-repro] timing {}: best of {reps} = {best:.3}s wall, {qps:.0} quanta/sec",
            scheme.label()
        );
        rows.push((scheme.label(), best, qps));
    }
    // Headline: combined throughput over the measured schemes (total
    // quanta over total wall), so neither the baseline nor the
    // controller cell alone defines the trajectory.
    let total_wall: f64 = rows.iter().map(|(_, w, _)| w).sum();
    let combined = (quanta * rows.len() as u64) as f64 / total_wall;
    eprintln!("[a4-repro] timing combined: {combined:.0} quanta/sec");
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"hotloop\",\n");
    json.push_str("  \"cell\": \"fig12 mix 1514B 512KB\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"logical_seconds\": {},\n  \"quanta\": {quanta},\n",
        opts.warmup + opts.measure
    ));
    json.push_str(&format!(
        "  \"quanta_per_sec\": {combined:.0},\n  \"runs\": [\n"
    ));
    for (i, (label, wall, qps)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scheme\": \"{label}\", \"wall_secs\": {wall:.4}, \"quanta_per_sec\": {qps:.0}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = json_dir.unwrap_or(".");
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| fail(format!("cannot create timing output dir {dir}: {e}")));
    let path = format!("{dir}/BENCH_hotloop.json");
    std::fs::write(&path, json).unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
    eprintln!("[a4-repro] wrote {path}");
}

/// Positional (non-flag) arguments: everything that is not a `--flag`
/// or the value slot of a value-taking flag, so `--json fig-tables/`
/// never turns its directory into a figure filter.
fn positional_args(args: &[String]) -> Vec<&str> {
    const VALUE_FLAGS: [&str; 12] = [
        "--json",
        "--dump-specs",
        "--spec",
        "--threads",
        "--cache-dir",
        "--replicas",
        "--max-age-days",
        "--shard",
        "--shards",
        "--stale-secs",
        "--ckpt-every",
        "--max-attempts",
    ];
    let mut positional = Vec::new();
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            skip_value = true;
            continue;
        }
        if arg.starts_with("--") {
            continue;
        }
        positional.push(arg.as_str());
    }
    positional
}

/// One [`drain_queue`] pass with the CLI's retry policy and log
/// prefix; a fatal queue/execution error exits via [`fail`] (the
/// library released the task first, so it survives for another
/// worker).
fn drain(
    queue: &JobQueue,
    runner: &SweepRunner,
    worker: &str,
    stale: Duration,
    max_attempts: u64,
) -> DrainReport {
    drain_queue(
        queue,
        runner,
        worker,
        stale,
        max_attempts,
        &Backoff::fabric(),
        |line| eprintln!("[a4-repro] {worker}: {line}"),
    )
    .unwrap_or_else(|e| fail(format!("{worker}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let timing = args.iter().any(|a| a == "--timing");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let merge_only = args.iter().any(|a| a == "--merge-only");
    let best_effort = args.iter().any(|a| a == "--best-effort");
    let enqueue = args.iter().any(|a| a == "--enqueue");
    let worker = args.iter().any(|a| a == "--worker");
    let serve = args.iter().any(|a| a == "--serve");
    let json_dir = flag_value(&args, "--json");
    let dump_dir = flag_value(&args, "--dump-specs");
    let spec_file = flag_value(&args, "--spec");
    let cache_dir = flag_value(&args, "--cache-dir");
    let shard = flag_value(&args, "--shard")
        .map(|s| Shard::parse(&s).unwrap_or_else(|e| fail(format!("--shard: {e}"))));
    let shards: u64 = flag_value(&args, "--shards")
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| fail("--shards takes a positive integer"))
        })
        .unwrap_or(2);
    require(shards >= 1, "--shards takes a positive integer");
    let stale_secs: u64 = flag_value(&args, "--stale-secs")
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| fail("--stale-secs takes a second count"))
        })
        .unwrap_or(300);
    let ckpt_every: u64 = flag_value(&args, "--ckpt-every")
        .map(|q| {
            q.parse()
                .unwrap_or_else(|_| fail("--ckpt-every takes a quantum count"))
        })
        .unwrap_or(0);
    let max_attempts: u64 = flag_value(&args, "--max-attempts")
        .map(|n| {
            n.parse()
                .unwrap_or_else(|_| fail("--max-attempts takes a positive integer"))
        })
        .unwrap_or(MAX_ATTEMPTS);
    require(max_attempts >= 1, "--max-attempts takes a positive integer");
    let threads: usize = flag_value(&args, "--threads")
        .map(|t| {
            t.parse()
                .unwrap_or_else(|_| fail("--threads takes a positive integer"))
        })
        .unwrap_or(1);
    let replicas: usize = flag_value(&args, "--replicas")
        .map(|r| {
            r.parse()
                .unwrap_or_else(|_| fail("--replicas takes a positive integer"))
        })
        .unwrap_or(1);
    require(replicas >= 1, "--replicas takes a positive integer");
    let cache_gc = args.iter().any(|a| a == "--cache-gc");
    let max_age_days: u64 = flag_value(&args, "--max-age-days")
        .map(|d| {
            d.parse()
                .unwrap_or_else(|_| fail("--max-age-days takes a day count"))
        })
        .unwrap_or(30);
    require(
        !(no_cache && cache_dir.is_some()),
        "--no-cache and --cache-dir are mutually exclusive",
    );
    require(
        !(no_cache && cache_gc),
        "--cache-gc needs the cache enabled (drop --no-cache)",
    );
    require(
        cache_gc || flag_value(&args, "--max-age-days").is_none(),
        "--max-age-days only applies to --cache-gc",
    );
    let service_modes = usize::from(shard.is_some())
        + [merge_only, enqueue, worker, serve]
            .iter()
            .filter(|m| **m)
            .count();
    require(
        service_modes <= 1,
        "--shard, --merge-only, --enqueue, --worker and --serve are mutually exclusive",
    );
    if service_modes == 1 {
        require(
            !no_cache,
            "sharded/queued sweeps need the shared store (drop --no-cache)",
        );
        require(
            spec_file.is_none() && dump_dir.is_none() && !timing,
            "--spec/--dump-specs/--timing do not combine with sweep-service modes",
        );
    }
    require(
        enqueue || serve || flag_value(&args, "--shards").is_none(),
        "--shards only applies to --enqueue/--serve",
    );
    require(
        worker || serve || flag_value(&args, "--stale-secs").is_none(),
        "--stale-secs only applies to --worker/--serve",
    );
    require(
        worker || serve || flag_value(&args, "--max-attempts").is_none(),
        "--max-attempts only applies to --worker/--serve",
    );
    require(
        !(no_cache && ckpt_every > 0),
        "--ckpt-every needs the shared store (drop --no-cache)",
    );
    require(
        merge_only || !best_effort,
        "--best-effort only applies to --merge-only",
    );
    let store_dir = cache_dir.clone().unwrap_or_else(|| "out/.cache".into());
    // The chaos knob: A4_FAULTS=<seed> puts the store (and the queue,
    // below) on a deterministic fault-injecting filesystem.
    let faults = FaultFs::from_env();
    if faults.is_some() {
        eprintln!("[a4-repro] A4_FAULTS set: injecting seeded store/queue faults");
        require(!no_cache, "A4_FAULTS exercises the store; drop --no-cache");
    }
    let mut runner = SweepRunner::with_threads(threads);
    if !no_cache {
        runner = match &faults {
            Some(f) => {
                runner.with_cache(ResultCache::with_fs(&store_dir, f.clone() as Arc<dyn Fs>))
            }
            None => runner.with_cache_dir(&store_dir),
        };
        if ckpt_every > 0 {
            let ckpt_dir = std::path::Path::new(&store_dir).join("ckpt");
            let ckpt = match &faults {
                Some(f) => CkptStore::with_fs(&ckpt_dir, f.clone() as Arc<dyn Fs>),
                None => CkptStore::new(&ckpt_dir),
            };
            runner = runner.with_ckpt(ckpt, ckpt_every);
        }
    }
    let wanted = positional_args(&args);
    let known: Vec<&str> = figures().iter().map(|f| f.name).collect();
    for name in &wanted {
        require(
            known.contains(name),
            format!("unknown figure {name:?} (run --list for the vocabulary)"),
        );
    }
    require(
        !worker || wanted.is_empty(),
        "--worker takes no figure arguments: tasks on the queue already name their figure",
    );
    let all = wanted.is_empty();
    let wants = |name: &str| all || wanted.contains(&name);

    if cache_gc {
        let cache = runner
            .cache()
            .unwrap_or_else(|| fail("cache disabled but --cache-gc requested (internal)"));
        let (removed, kept) = cache.gc(std::time::Duration::from_secs(max_age_days * 86_400));
        eprintln!(
            "[a4-repro] cache-gc {}: removed {removed} entr{} older than {max_age_days} day(s), kept {kept}",
            cache.dir().display(),
            if removed == 1 { "y" } else { "ies" },
        );
        // GC-only invocation: nothing else to run (or dump).
        if wanted.is_empty() && spec_file.is_none() && dump_dir.is_none() && !timing && !list {
            return;
        }
    }

    let job_for = |f: &FigureDef| {
        SweepJob::new(
            f.name,
            f.protocol.opts(quick),
            replicas as u64,
            SeedPolicy::SpecSeed,
        )
        .unwrap_or_else(|e| fail(format!("figure registry inconsistent for {}: {e}", f.name)))
    };

    if list {
        println!("figure  cells  description");
        for f in figures() {
            let cells = (f.specs)(&f.protocol.opts(quick)).len();
            println!("{:<7} {:>5}  {}", f.name, cells, f.desc);
        }
        return;
    }

    if timing {
        run_timing(quick, json_dir.as_deref());
        if wanted.is_empty() && spec_file.is_none() {
            return;
        }
    }

    let mut tables: Vec<Table> = Vec::new();
    let mut replica_tables: Vec<TableStats> = Vec::new();
    fn collect(rendered: JobTables, tables: &mut Vec<Table>, replicated: &mut Vec<TableStats>) {
        match rendered {
            JobTables::Single(ts) => tables.extend(ts),
            JobTables::Replicated(stats) => replicated.extend(stats),
        }
    }

    // The health summary folds in whatever ran: store counters, queue
    // poison count, worker drain stats, and the injector's fault count.
    let print_health = |queue: Option<&JobQueue>, report: Option<&DrainReport>| {
        let mut health = fabric_health(runner.cache(), queue, report);
        if let Some(f) = &faults {
            health.injected_faults = f.injected();
        }
        eprintln!("[a4-repro] fabric {health}");
    };

    if enqueue || worker || serve {
        let queue = match &faults {
            Some(f) => JobQueue::open_with_fs(&store_dir, f.clone() as Arc<dyn Fs>),
            None => JobQueue::open(&store_dir),
        }
        .unwrap_or_else(|e| fail(format!("cannot open job queue: {e}")));
        let stale = Duration::from_secs(stale_secs);
        let queue_counts = |queue: &JobQueue| {
            queue
                .counts()
                .unwrap_or_else(|e| fail(format!("cannot scan queue: {e}")))
        };
        let report_poisoned = |queue: &JobQueue| {
            let poisoned = queue.poisoned().unwrap_or(0);
            if poisoned > 0 {
                eprintln!(
                    "[a4-repro] warning: {poisoned} unparseable task(s) quarantined in {}",
                    queue.root().join("poison").display()
                );
            }
            let exhausted = queue.exhausted().unwrap_or(0);
            if exhausted > 0 {
                eprintln!(
                    "[a4-repro] warning: {exhausted} repeatedly-failing task(s) \
                     quarantined as exhausted in {}",
                    queue.root().join("poison").display()
                );
            }
        };
        if enqueue || serve {
            for f in figures().iter().filter(|f| wants(f.name)) {
                let job = job_for(f);
                for index in 0..shards {
                    let task = Task {
                        job: job.clone(),
                        shard: Shard::new(index, shards),
                    };
                    let state = queue
                        .enqueue(&task)
                        .unwrap_or_else(|e| fail(format!("cannot enqueue task: {e}")));
                    eprintln!(
                        "[a4-repro] enqueue {} shard {}: {state:?}",
                        f.name, task.shard
                    );
                }
            }
        }
        let me = format!("w{}", std::process::id());
        if worker {
            let report = drain(&queue, &runner, &me, stale, max_attempts);
            let (pending, leased, done) = queue_counts(&queue);
            eprintln!(
                "[a4-repro] {me}: executed {} unit(s); queue now \
                 {pending} pending / {leased} leased / {done} done",
                report.executed
            );
            report_poisoned(&queue);
            print_health(Some(&queue), Some(&report));
            return;
        }
        if enqueue {
            let (pending, leased, done) = queue_counts(&queue);
            eprintln!(
                "[a4-repro] queue {}: {pending} pending / {leased} leased / {done} done \
                 (start workers with --worker --cache-dir {store_dir})",
                queue.root().display()
            );
            return;
        }
        // --serve: work the queue alongside any external workers, wait
        // for stragglers (re-claiming their leases if they go stale),
        // then fall through to the merge below.
        let mut serve_report = DrainReport::default();
        loop {
            let report = drain(&queue, &runner, &me, stale, max_attempts);
            serve_report.tasks += report.tasks;
            serve_report.executed += report.executed;
            serve_report.reclaimed += report.reclaimed;
            serve_report.exhausted += report.exhausted;
            serve_report.cell_failures += report.cell_failures;
            serve_report.retries += report.retries;
            serve_report.heartbeat_failures += report.heartbeat_failures;
            if report.released {
                // Our own lease heartbeats keep failing: the store dir
                // is unhealthy, and looping would thrash it.
                fail(format!(
                    "{me}: lease heartbeats keep failing; task released"
                ));
            }
            let (pending, leased, _) = queue_counts(&queue);
            if pending == 0 && leased == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(200));
        }
        report_poisoned(&queue);
        print_health(Some(&queue), Some(&serve_report));
    }

    if let Some(shard) = shard {
        let store = runner
            .cache()
            .unwrap_or_else(|| fail("store disabled in --shard mode (internal)"));
        for f in figures().iter().filter(|f| wants(f.name)) {
            let job = job_for(f);
            let executed = job
                .execute_shard(shard, &runner)
                .unwrap_or_else(|e| fail(format!("{}: {e}", f.name)));
            match job.render_from_store(store) {
                Ok(rendered) => collect(rendered, &mut tables, &mut replica_tables),
                Err(ServiceError::MissingCells { missing, total, .. }) => eprintln!(
                    "[a4-repro] {} shard {shard}: executed {executed} unit(s); \
                     {}/{total} cell(s) not in the store yet — render with \
                     --merge-only once every shard has run",
                    f.name,
                    missing.len()
                ),
                Err(e) => fail(format!("{}: {e}", f.name)),
            }
        }
    } else if merge_only || serve {
        let store = runner
            .cache()
            .unwrap_or_else(|| fail("store disabled in a merge mode (internal)"));
        for f in figures().iter().filter(|f| wants(f.name)) {
            let job = job_for(f);
            let rendered = if best_effort {
                let (rendered, missing, total) = job
                    .render_from_store_best_effort(store)
                    .unwrap_or_else(|e| fail(format!("{}: {e}", f.name)));
                if missing > 0 {
                    eprintln!(
                        "[a4-repro] {}: best-effort merge with {missing}/{total} cell(s) missing",
                        f.name
                    );
                }
                rendered
            } else {
                job.render_from_store(store)
                    .unwrap_or_else(|e| fail(format!("{}: {e}", f.name)))
            };
            collect(rendered, &mut tables, &mut replica_tables);
        }
        if merge_only {
            print_health(None, None);
        }
    }

    if let Some(path) = &spec_file {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("cannot read spec file {path}: {e}")));
        // Accept a single spec object or an array of them; migrate
        // older schema versions to the current one.
        let parsed: Vec<ScenarioSpec> = serde_json::from_str::<Vec<ScenarioSpec>>(&json)
            .or_else(|_| serde_json::from_str::<ScenarioSpec>(&json).map(|s| vec![s]))
            .unwrap_or_else(|e| fail(format!("cannot parse {path} as ScenarioSpec JSON: {e}")));
        let specs: Vec<ScenarioSpec> = parsed
            .into_iter()
            .map(|s| s.migrate().unwrap_or_else(|e| fail(format!("{path}: {e}"))))
            .collect();
        require(
            !specs.is_empty(),
            format!("{path} contains no scenario specs"),
        );
        eprintln!(
            "[a4-repro] running {} scenario(s) from {path} on {threads} thread(s)...",
            specs.len()
        );
        if replicas > 1 {
            // Runs the spec file at every replica and aggregates
            // cell-wise; replica r's runner derives seeds as replica(r).
            let per_replica: Vec<Vec<Table>> = (0..replicas as u64)
                .map(|r| {
                    runner
                        .clone()
                        .replica(r)
                        .run_specs(&specs)
                        .unwrap_or_else(|e| fail(format!("spec failed to build: {e}")))
                        .iter()
                        .map(spec_table)
                        .collect()
                })
                .collect();
            replica_tables.extend((0..per_replica[0].len()).map(|ti| {
                let group: Vec<Table> = per_replica.iter().map(|rep| rep[ti].clone()).collect();
                TableStats::from_replicas(&group)
            }));
        } else {
            let runs = runner
                .run_specs(&specs)
                .unwrap_or_else(|e| fail(format!("spec failed to build: {e}")));
            tables.extend(runs.iter().map(spec_table));
        }
    }

    if let Some(dir) = dump_dir {
        require(
            json_dir.is_none() || !tables.is_empty(),
            "--json has no tables to write in --dump-specs mode; \
             combine --json with figure runs or --spec instead",
        );
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| fail(format!("cannot create spec output dir {dir}: {e}")));
        for f in figures().iter().filter(|f| wants(f.name)) {
            let specs = (f.specs)(&f.protocol.opts(quick));
            let path = format!("{dir}/{}.specs.json", f.name);
            let json = serde_json::to_string_pretty(&specs)
                .unwrap_or_else(|e| fail(format!("specs failed to serialize: {e}")));
            std::fs::write(&path, json)
                .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
            eprintln!("[a4-repro] wrote {path} ({} cells)", specs.len());
        }
        if tables.is_empty() {
            return;
        }
    } else if service_modes == 0 && (spec_file.is_none() || !wanted.is_empty()) {
        for f in figures().iter().filter(|f| wants(f.name)) {
            let job = job_for(f);
            let cells = (f.specs)(&job.opts).len();
            eprintln!(
                "[a4-repro] {} ({}; {cells} cells, {threads} thread(s), {replicas} replica(s))...",
                f.name, f.desc
            );
            let rendered = job
                .execute(&runner)
                .unwrap_or_else(|e| fail(format!("{}: {e}", f.name)));
            collect(rendered, &mut tables, &mut replica_tables);
        }
    }

    if let Some(cache) = runner.cache() {
        let (hits, simulated) = (cache.hits(), cache.simulated());
        if hits + simulated > 0 {
            eprintln!(
                "[a4-repro] cache {}: {hits} cell(s) loaded, {simulated} simulated \
                 (--no-cache forces re-simulation)",
                cache.dir().display()
            );
        }
    }
    for table in &tables {
        println!("{table}");
    }
    for stats in &replica_tables {
        println!("{stats}");
    }
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| fail(format!("cannot create json output dir {dir}: {e}")));
        let write_table = |path: String, table: &Table| {
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| fail(format!("cannot create {path}: {e}")));
            let json = serde_json::to_string_pretty(table)
                .unwrap_or_else(|e| fail(format!("table failed to serialize: {e}")));
            f.write_all(json.as_bytes())
                .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
            eprintln!("[a4-repro] wrote {path}");
        };
        for table in &tables {
            write_table(format!("{dir}/{}.json", table.id), table);
        }
        for stats in &replica_tables {
            write_table(format!("{dir}/{}.mean.json", stats.mean.id), &stats.mean);
            write_table(
                format!("{dir}/{}.stddev.json", stats.stddev.id),
                &stats.stddev,
            );
        }
    }
}
