//! `a4-repro` — regenerates every measured figure of the A4 paper.
//!
//! Usage:
//!
//! ```text
//! a4-repro [FIGURES...] [--quick] [--threads N] [--json DIR]
//!          [--dump-specs DIR] [--spec FILE] [--list]
//!          [--cache-dir DIR] [--no-cache] [--cache-gc]
//!          [--max-age-days N] [--replicas N] [--timing]
//!
//! FIGURES: fig3 fig4 fig5 fig6 fig7 fig8 fig11 fig12 fig13 fig14 fig15
//!          fig_numa (default: all)
//! --quick:          short warm-up/measure windows (CI-friendly)
//! --threads N:      fan sweep cells out over N threads (default 1;
//!                   tables are identical for any N)
//! --json DIR:       additionally dump each table as DIR/<id>.json
//! --dump-specs DIR: write each figure's cells as DIR/<fig>.specs.json
//!                   instead of running them
//! --spec FILE:      load a ScenarioSpec (or array of them) from JSON,
//!                   run it, and print a per-role metric table
//! --cache-dir DIR:  cache per-cell RunReports under DIR (default
//!                   out/.cache); unchanged cells are loaded instead of
//!                   re-simulated, so edited sweeps re-run only the
//!                   edited cells and interrupted sweeps resume. Tables
//!                   are byte-identical either way.
//! --no-cache:       disable the result cache entirely
//! --cache-gc:       garbage-collect the result cache before running:
//!                   drop entries not touched (stored or loaded) within
//!                   --max-age-days (default 30). With no figures/specs
//!                   requested, exits after the sweep.
//! --replicas N:     run every cell at N derived-seed replicas and
//!                   report mean ± stddev per metric (replicas hit the
//!                   result cache independently); --json writes
//!                   <id>.mean.json and <id>.stddev.json
//! --timing:         run the hot-loop timing harness on the fig12
//!                   representative cell and write BENCH_hotloop.json
//!                   (to --json DIR, or the current directory)
//! --list:           list figures and their cell counts, then exit
//! ```

use a4_experiments::fig_numa;
use a4_experiments::{fig11, fig12, fig13, fig14, fig15, fig3, fig4, fig5, fig6, fig7, fig8};
use a4_experiments::{RunOpts, ScenarioSpec, Scheme, SweepRunner, Table, TableStats};
use std::io::Write as _;

/// Which run protocol a figure uses.
#[derive(Clone, Copy)]
enum Protocol {
    /// Static-CAT discovery experiments (`RunOpts::paper`).
    Paper,
    /// Controller-driven experiments (`RunOpts::controller`).
    Controller,
}

struct Figure {
    name: &'static str,
    desc: &'static str,
    protocol: Protocol,
    run: fn(&RunOpts, &SweepRunner) -> Vec<Table>,
    specs: fn(&RunOpts) -> Vec<ScenarioSpec>,
}

fn figures() -> Vec<Figure> {
    vec![
        Figure {
            name: "fig3",
            desc: "way sweep: latent contention, DMA bloat, directory contention",
            protocol: Protocol::Paper,
            run: |o, r| vec![fig3::run_with(o, false, r), fig3::run_with(o, true, r)],
            specs: |o| {
                let mut s = fig3::specs(o, false);
                s.extend(fig3::specs(o, true));
                s
            },
        },
        Figure {
            name: "fig4",
            desc: "directory-contention validation: DCA on vs off",
            protocol: Protocol::Paper,
            run: |o, r| vec![fig4::run_with(o, r)],
            specs: fig4::specs,
        },
        Figure {
            name: "fig5",
            desc: "storage block-size sweep: throughput and DMA leak",
            protocol: Protocol::Paper,
            run: |o, r| vec![fig5::run_with(o, r)],
            specs: fig5::specs,
        },
        Figure {
            name: "fig6",
            desc: "FIO vs DPDK-T latency across block sizes",
            protocol: Protocol::Paper,
            run: |o, r| vec![fig6::run_with(o, r)],
            specs: fig6::specs,
        },
        Figure {
            name: "fig7",
            desc: "overlap vs exclude allocation strategies",
            protocol: Protocol::Paper,
            run: |o, r| vec![fig7::run_with(o, r)],
            specs: fig7::specs,
        },
        Figure {
            name: "fig8",
            desc: "selective DCA off + trash-way shrinking",
            protocol: Protocol::Paper,
            run: |o, r| vec![fig8::run_a_with(o, r), fig8::run_b_with(o, r)],
            specs: fig8::specs,
        },
        Figure {
            name: "fig11",
            desc: "X-Mem IPC/hit rate vs packet size, 3 schemes",
            protocol: Protocol::Controller,
            run: |o, r| vec![fig11::run_with(o, r)],
            specs: fig11::specs,
        },
        Figure {
            name: "fig12",
            desc: "network metrics vs storage block size, 3 schemes",
            protocol: Protocol::Controller,
            run: |o, r| vec![fig12::run_with(o, r)],
            specs: fig12::specs,
        },
        Figure {
            name: "fig13",
            desc: "real-world colocations, 6 schemes",
            protocol: Protocol::Controller,
            run: |o, r| vec![fig13::run_with(o, true, r), fig13::run_with(o, false, r)],
            specs: |o| {
                let mut s = fig13::specs(o, true);
                s.extend(fig13::specs(o, false));
                s
            },
        },
        Figure {
            name: "fig14",
            desc: "latency breakdowns + system-wide metrics",
            protocol: Protocol::Controller,
            run: |o, r| fig14::run_with(o, r),
            specs: fig14::specs,
        },
        Figure {
            name: "fig15",
            desc: "threshold & timing sensitivity",
            protocol: Protocol::Controller,
            run: fig15::run_all_with,
            specs: fig15::specs,
        },
        Figure {
            name: "fig_numa",
            desc: "2-socket NIC/SSD placement: local vs remote, 3 schemes",
            protocol: Protocol::Controller,
            run: |o, r| vec![fig_numa::run_with(o, r)],
            specs: fig_numa::specs,
        },
    ]
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        // `--json --quick` must not treat the next flag as a directory.
        _ => panic!("{flag} requires a value argument"),
    }
}

fn spec_table(run: &a4_experiments::ScenarioRun) -> Table {
    let mut table = Table::new(
        format!("spec-{}", run.name),
        format!("scenario {} ({})", run.name, run.report.policy),
        ["perf", "ipc", "llc_hit", "io_gbps"],
    );
    for binding in &run.workloads {
        table.push(
            binding.role.clone(),
            [
                run.perf(&binding.role),
                run.ipc(&binding.role),
                run.llc_hit_rate(&binding.role),
                run.io_gbps(&binding.role),
            ],
        );
    }
    table
}

/// The fig12 representative cell the timing harness pins: the §7.1 mix
/// at 1514 B packets / 512 KB blocks — mid-sweep, all contention
/// mechanisms active.
fn timing_cell(opts: &RunOpts, scheme: Scheme) -> ScenarioSpec {
    fig11::mix_spec(opts, scheme, 1514, 512)
}

/// Runs the hot-loop timing harness and writes `BENCH_hotloop.json`:
/// wall-clock and quanta/sec for the fig12 representative cell under the
/// Default and A4-d schemes (best of `reps` runs each).
fn run_timing(quick: bool, json_dir: Option<&str>) {
    let opts = if quick {
        RunOpts {
            warmup: 12,
            measure: 4,
            ..RunOpts::quick()
        }
    } else {
        RunOpts::controller()
    };
    // Quanta per logical second comes from the built cell's system
    // config, so a future quantum change cannot silently skew the
    // trajectory this artifact tracks.
    let probe = timing_cell(&opts, Scheme::Default)
        .build()
        .expect("static cell");
    let quanta_per_logical_sec = u64::from(probe.harness.system().config().quanta_per_second);
    drop(probe);
    let quanta = (opts.warmup + opts.measure) * quanta_per_logical_sec;
    let reps = 3;
    let mut rows = Vec::new();
    for scheme in [Scheme::Default, Scheme::A4(a4_core::FeatureLevel::D)] {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let scenario = timing_cell(&opts, scheme).build().expect("static cell");
            let t0 = std::time::Instant::now();
            let run = scenario.run();
            let secs = t0.elapsed().as_secs_f64();
            assert!(run.report.total_instructions_all() > 0);
            best = best.min(secs);
        }
        let qps = quanta as f64 / best;
        eprintln!(
            "[a4-repro] timing {}: best of {reps} = {best:.3}s wall, {qps:.0} quanta/sec",
            scheme.label()
        );
        rows.push((scheme.label(), best, qps));
    }
    // Headline: combined throughput over the measured schemes (total
    // quanta over total wall), so neither the baseline nor the
    // controller cell alone defines the trajectory.
    let total_wall: f64 = rows.iter().map(|(_, w, _)| w).sum();
    let combined = (quanta * rows.len() as u64) as f64 / total_wall;
    eprintln!("[a4-repro] timing combined: {combined:.0} quanta/sec");
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"hotloop\",\n");
    json.push_str("  \"cell\": \"fig12 mix 1514B 512KB\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"logical_seconds\": {},\n  \"quanta\": {quanta},\n",
        opts.warmup + opts.measure
    ));
    json.push_str(&format!(
        "  \"quanta_per_sec\": {combined:.0},\n  \"runs\": [\n"
    ));
    for (i, (label, wall, qps)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scheme\": \"{label}\", \"wall_secs\": {wall:.4}, \"quanta_per_sec\": {qps:.0}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let dir = json_dir.unwrap_or(".");
    std::fs::create_dir_all(dir).expect("create timing output dir");
    let path = format!("{dir}/BENCH_hotloop.json");
    std::fs::write(&path, json).expect("write BENCH_hotloop.json");
    eprintln!("[a4-repro] wrote {path}");
}

/// Positional (non-flag) arguments: everything that is not a `--flag`
/// or the value slot of a value-taking flag, so `--json fig-tables/`
/// never turns its directory into a figure filter.
fn positional_args(args: &[String]) -> Vec<&str> {
    const VALUE_FLAGS: [&str; 7] = [
        "--json",
        "--dump-specs",
        "--spec",
        "--threads",
        "--cache-dir",
        "--replicas",
        "--max-age-days",
    ];
    let mut positional = Vec::new();
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            skip_value = true;
            continue;
        }
        if arg.starts_with("--") {
            continue;
        }
        positional.push(arg.as_str());
    }
    positional
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let timing = args.iter().any(|a| a == "--timing");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let json_dir = flag_value(&args, "--json");
    let dump_dir = flag_value(&args, "--dump-specs");
    let spec_file = flag_value(&args, "--spec");
    let cache_dir = flag_value(&args, "--cache-dir");
    let threads: usize = flag_value(&args, "--threads")
        .map(|t| t.parse().expect("--threads takes a positive integer"))
        .unwrap_or(1);
    let replicas: usize = flag_value(&args, "--replicas")
        .map(|r| r.parse().expect("--replicas takes a positive integer"))
        .unwrap_or(1);
    assert!(replicas >= 1, "--replicas takes a positive integer");
    let cache_gc = args.iter().any(|a| a == "--cache-gc");
    let max_age_days: u64 = flag_value(&args, "--max-age-days")
        .map(|d| d.parse().expect("--max-age-days takes a day count"))
        .unwrap_or(30);
    assert!(
        !(no_cache && cache_dir.is_some()),
        "--no-cache and --cache-dir are mutually exclusive"
    );
    assert!(
        !(no_cache && cache_gc),
        "--cache-gc needs the cache enabled (drop --no-cache)"
    );
    assert!(
        cache_gc || flag_value(&args, "--max-age-days").is_none(),
        "--max-age-days only applies to --cache-gc"
    );
    let mut runner = SweepRunner::with_threads(threads);
    if !no_cache {
        runner = runner.with_cache_dir(cache_dir.as_deref().unwrap_or("out/.cache"));
    }
    let wanted = positional_args(&args);
    let known: Vec<&str> = figures().iter().map(|f| f.name).collect();
    for name in &wanted {
        assert!(
            known.contains(name),
            "unknown figure {name:?} (run --list for the vocabulary)"
        );
    }
    let all = wanted.is_empty();
    let wants = |name: &str| all || wanted.contains(&name);

    if cache_gc {
        let cache = runner.cache().expect("cache enabled (asserted above)");
        let (removed, kept) = cache.gc(std::time::Duration::from_secs(max_age_days * 86_400));
        eprintln!(
            "[a4-repro] cache-gc {}: removed {removed} entr{} older than {max_age_days} day(s), kept {kept}",
            cache.dir().display(),
            if removed == 1 { "y" } else { "ies" },
        );
        // GC-only invocation: nothing else to run (or dump).
        if wanted.is_empty() && spec_file.is_none() && dump_dir.is_none() && !timing && !list {
            return;
        }
    }

    let opts = if quick {
        RunOpts::quick()
    } else {
        RunOpts::paper()
    };
    let ctl_opts = if quick {
        RunOpts {
            warmup: 12,
            measure: 4,
            ..RunOpts::quick()
        }
    } else {
        RunOpts::controller()
    };
    let opts_for = |f: &Figure| match f.protocol {
        Protocol::Paper => opts,
        Protocol::Controller => ctl_opts,
    };

    if list {
        println!("figure  cells  description");
        for f in figures() {
            let cells = (f.specs)(&opts_for(&f)).len();
            println!("{:<7} {:>5}  {}", f.name, cells, f.desc);
        }
        return;
    }

    if timing {
        run_timing(quick, json_dir.as_deref());
        if wanted.is_empty() && spec_file.is_none() {
            return;
        }
    }

    let mut tables: Vec<Table> = Vec::new();
    let mut replica_tables: Vec<TableStats> = Vec::new();
    // Runs one table-producing closure at every replica and aggregates
    // cell-wise; replica r's runner derives seeds as replica(r).
    let replicated = |produce: &dyn Fn(&SweepRunner) -> Vec<Table>| -> Vec<TableStats> {
        let per_replica: Vec<Vec<Table>> = (0..replicas as u64)
            .map(|r| produce(&runner.clone().replica(r)))
            .collect();
        (0..per_replica[0].len())
            .map(|ti| {
                let group: Vec<Table> = per_replica.iter().map(|rep| rep[ti].clone()).collect();
                TableStats::from_replicas(&group)
            })
            .collect()
    };

    if let Some(path) = &spec_file {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read spec file {path}: {e}"));
        // Accept a single spec object or an array of them.
        let specs: Vec<ScenarioSpec> = serde_json::from_str::<Vec<ScenarioSpec>>(&json)
            .or_else(|_| serde_json::from_str::<ScenarioSpec>(&json).map(|s| vec![s]))
            .unwrap_or_else(|e| panic!("cannot parse {path} as ScenarioSpec JSON: {e}"));
        assert!(!specs.is_empty(), "{path} contains no scenario specs");
        eprintln!(
            "[a4-repro] running {} scenario(s) from {path} on {threads} thread(s)...",
            specs.len()
        );
        if replicas > 1 {
            replica_tables.extend(replicated(&|r| {
                r.run_specs(&specs)
                    .unwrap_or_else(|e| panic!("spec failed to build: {e}"))
                    .iter()
                    .map(spec_table)
                    .collect()
            }));
        } else {
            let runs = runner
                .run_specs(&specs)
                .unwrap_or_else(|e| panic!("spec failed to build: {e}"));
            tables.extend(runs.iter().map(spec_table));
        }
    }

    if let Some(dir) = dump_dir {
        assert!(
            json_dir.is_none() || !tables.is_empty(),
            "--json has no tables to write in --dump-specs mode; \
             combine --json with figure runs or --spec instead"
        );
        std::fs::create_dir_all(&dir).expect("create spec output dir");
        for f in figures().iter().filter(|f| wants(f.name)) {
            let specs = (f.specs)(&opts_for(f));
            let path = format!("{dir}/{}.specs.json", f.name);
            let json = serde_json::to_string_pretty(&specs).expect("specs serialize");
            std::fs::write(&path, json).expect("write specs json");
            eprintln!("[a4-repro] wrote {path} ({} cells)", specs.len());
        }
        if tables.is_empty() {
            return;
        }
    } else if spec_file.is_none() || !wanted.is_empty() {
        for f in figures().iter().filter(|f| wants(f.name)) {
            let o = opts_for(f);
            let cells = (f.specs)(&o).len();
            eprintln!(
                "[a4-repro] {} ({}; {cells} cells, {threads} thread(s), {replicas} replica(s))...",
                f.name, f.desc
            );
            if replicas > 1 {
                replica_tables.extend(replicated(&|r| (f.run)(&o, r)));
            } else {
                tables.extend((f.run)(&o, &runner));
            }
        }
    }

    if let Some(cache) = runner.cache() {
        let (hits, simulated) = (cache.hits(), cache.simulated());
        if hits + simulated > 0 {
            eprintln!(
                "[a4-repro] cache {}: {hits} cell(s) loaded, {simulated} simulated \
                 (--no-cache forces re-simulation)",
                cache.dir().display()
            );
        }
    }
    for table in &tables {
        println!("{table}");
    }
    for stats in &replica_tables {
        println!("{stats}");
    }
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json output dir");
        let write_table = |path: String, table: &Table| {
            let mut f = std::fs::File::create(&path).expect("create json file");
            let json = serde_json::to_string_pretty(table).expect("tables serialize");
            f.write_all(json.as_bytes()).expect("write json");
            eprintln!("[a4-repro] wrote {path}");
        };
        for table in &tables {
            write_table(format!("{dir}/{}.json", table.id), table);
        }
        for stats in &replica_tables {
            write_table(format!("{dir}/{}.mean.json", stats.mean.id), &stats.mean);
            write_table(
                format!("{dir}/{}.stddev.json", stats.stddev.id),
                &stats.stddev,
            );
        }
    }
}
