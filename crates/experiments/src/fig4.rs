//! Fig. 4: validating the directory contention — disabling DCA removes
//! the inclusive-way bump, at the cost of much higher DPDK-T tail
//! latency.
//!
//! Setup (§3.1): the Fig. 3b pair (DPDK-T at `[5:6]`, X-Mem at one of
//! `[0:1]`, `[3:4]`, `[5:6]`, `[9:10]`), once with DCA on and once with
//! DCA globally off, plus an X-Mem solo reference.

use crate::scenario::{self, RunOpts};
use crate::table::Table;
use a4_core::Harness;
use a4_model::{ClosId, Priority, WayMask};
use a4_sim::LatencyKind;

/// The four X-Mem placements of the figure.
pub fn placements() -> Vec<WayMask> {
    vec![
        WayMask::from_paper_range(0, 1).expect("static"),
        WayMask::from_paper_range(3, 4).expect("static"),
        WayMask::from_paper_range(5, 6).expect("static"),
        WayMask::from_paper_range(9, 10).expect("static"),
    ]
}

/// One configuration: returns `(dpdk_p99_us, xmem_llc_miss)`.
pub fn run_point(opts: &RunOpts, dca_on: bool, xmem_mask: Option<WayMask>) -> (f64, f64) {
    let mut sys = scenario::base_system(opts);
    let nic = scenario::attach_nic(&mut sys, 4, 1024).expect("port free");
    let dpdk =
        scenario::add_dpdk(&mut sys, nic, true, &[0, 1, 2, 3], Priority::High).expect("cores free");
    sys.cat_set_mask(ClosId(1), WayMask::from_paper_range(5, 6).expect("static"))
        .expect("valid");
    sys.cat_assign_workload(dpdk, ClosId(1))
        .expect("registered");

    let xmem = match xmem_mask {
        Some(mask) => {
            let id = scenario::add_xmem(&mut sys, 1, &[4, 5], Priority::High).expect("cores");
            sys.cat_set_mask(ClosId(2), mask).expect("valid");
            sys.cat_assign_workload(id, ClosId(2)).expect("registered");
            Some(id)
        }
        None => None,
    };

    sys.set_global_dca(dca_on);
    let mut harness = Harness::new(sys);
    let report = harness.run(opts.warmup, opts.measure);
    let p99_us = report.p99_latency_ns(dpdk, LatencyKind::NetTotal) as f64 / 1000.0;
    let miss = xmem.map_or(0.0, |id| report.llc_miss_rate(id));
    (p99_us, miss)
}

/// Runs the full figure.
pub fn run(opts: &RunOpts) -> Table {
    let mut table = Table::new(
        "fig4",
        "directory contention validation: DCA on vs off",
        ["dpdk_p99_us", "xmem_llc_miss"],
    );
    // X-Mem solo reference (no DPDK interference on X-Mem's ways).
    {
        let mut sys = scenario::base_system(opts);
        let xm = scenario::add_xmem(&mut sys, 1, &[4, 5], Priority::High).expect("cores");
        sys.cat_set_mask(ClosId(2), WayMask::INCLUSIVE)
            .expect("valid");
        sys.cat_assign_workload(xm, ClosId(2)).expect("registered");
        let mut harness = Harness::new(sys);
        let report = harness.run(opts.warmup, opts.measure);
        table.push("solo [9:10]", [0.0, report.llc_miss_rate(xm)]);
    }
    for dca_on in [true, false] {
        for mask in placements() {
            let (p99, miss) = run_point(opts, dca_on, Some(mask));
            let label = format!("dca={} {}", if dca_on { "on" } else { "off" }, mask);
            table.push(label, [p99, miss]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabling_dca_removes_directory_contention() {
        let opts = RunOpts::quick();
        let inclusive = WayMask::INCLUSIVE;
        let (_, miss_on) = run_point(&opts, true, Some(inclusive));
        let (_, miss_off) = run_point(&opts, false, Some(inclusive));
        assert!(
            miss_off < miss_on,
            "DCA off avoids migrations into the inclusive ways: on={miss_on:.3} off={miss_off:.3}"
        );
    }

    #[test]
    fn disabling_dca_hurts_network_latency() {
        let opts = RunOpts::quick();
        let (p99_on, _) = run_point(&opts, true, None);
        let (p99_off, _) = run_point(&opts, false, None);
        assert!(
            p99_off > p99_on,
            "device-memory-MLC path is slower: on={p99_on:.1}us off={p99_off:.1}us"
        );
    }
}
