//! Fig. 4: validating the directory contention — disabling DCA removes
//! the inclusive-way bump, at the cost of much higher DPDK-T tail
//! latency.
//!
//! Setup (§3.1): the Fig. 3b pair (DPDK-T at `[5:6]`, X-Mem at one of
//! `[0:1]`, `[3:4]`, `[5:6]`, `[9:10]`), once with DCA on and once with
//! DCA globally off, plus an X-Mem solo reference.

use crate::runner::{SweepRunner, TypedAxis, TypedSweep2};
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, WorkloadSpec};
use crate::table::Table;
use a4_model::{Priority, WayMask};
use a4_sim::LatencyKind;

/// The four X-Mem placements of the figure.
pub fn placements() -> Vec<WayMask> {
    vec![
        WayMask::from_paper_range(0, 1).expect("static"),
        WayMask::from_paper_range(3, 4).expect("static"),
        WayMask::from_paper_range(5, 6).expect("static"),
        WayMask::from_paper_range(9, 10).expect("static"),
    ]
}

/// One cell: DPDK-T at `[5:6]` plus an optional X-Mem at `xmem_mask`,
/// with the global DCA (BIOS) knob at `dca_on`.
pub fn spec(opts: &RunOpts, dca_on: bool, xmem_mask: Option<WayMask>) -> ScenarioSpec {
    let mut s = ScenarioSpec::new(
        format!(
            "fig4 dca={} xmem={}",
            if dca_on { "on" } else { "off" },
            xmem_mask.map_or("solo".to_string(), |m| m.to_string())
        ),
        *opts,
    )
    .with_nic(4, 1024)
    .with_workload(
        "dpdk",
        WorkloadSpec::Dpdk {
            device: "nic".into(),
            touch: true,
        },
        &[0, 1, 2, 3],
        Priority::High,
    )
    .with_cat(
        1,
        WayMask::from_paper_range(5, 6).expect("static"),
        &["dpdk"],
    )
    .with_global_dca(dca_on);
    if let Some(mask) = xmem_mask {
        s = s
            .with_workload(
                "xmem",
                WorkloadSpec::XMem { instance: 1 },
                &[4, 5],
                Priority::High,
            )
            .with_cat(2, mask, &["xmem"]);
    }
    s
}

/// The X-Mem solo reference cell (no DPDK interference on X-Mem's ways).
pub fn solo_spec(opts: &RunOpts) -> ScenarioSpec {
    ScenarioSpec::new("fig4 xmem solo", *opts)
        .with_workload(
            "xmem",
            WorkloadSpec::XMem { instance: 1 },
            &[4, 5],
            Priority::High,
        )
        .with_cat(2, WayMask::INCLUSIVE, &["xmem"])
}

/// The dca × placement grid that follows the solo reference cell
/// (DCA slowest: on before off).
pub fn grid() -> TypedSweep2<bool, WayMask> {
    TypedSweep2::new(
        TypedAxis::new("dca", [(true, "on"), (false, "off")]),
        TypedAxis::labeled("xmem_mask", placements()),
    )
}

/// All cells of the figure: the solo reference followed by the
/// dca × placement grid.
pub fn specs(opts: &RunOpts) -> Vec<ScenarioSpec> {
    let mut specs = vec![solo_spec(opts)];
    specs.extend(grid().map(|&dca_on, &mask| spec(opts, dca_on, Some(mask))));
    specs
}

/// Renders the figure from the runs of [`specs`] (same order).
pub fn table(runs: &[ScenarioRun]) -> Table {
    let mut table = Table::new(
        "fig4",
        "directory contention validation: DCA on vs off",
        ["dpdk_p99_us", "xmem_llc_miss"],
    );
    let solo = &runs[0];
    table.push("solo [9:10]", [0.0, solo.llc_miss_rate("xmem")]);
    for (cell, run) in grid().sweep().cells().iter().zip(&runs[1..]) {
        let (p99, miss) = point_metrics(run, true);
        table.push(
            format!("dca={} {}", cell.labels[0], cell.labels[1]),
            [p99, miss],
        );
    }
    table
}

/// One configuration: returns `(dpdk_p99_us, xmem_llc_miss)`.
pub fn run_point(opts: &RunOpts, dca_on: bool, xmem_mask: Option<WayMask>) -> (f64, f64) {
    let run = spec(opts, dca_on, xmem_mask)
        .build()
        .expect("static fig4 layout")
        .run();
    point_metrics(&run, xmem_mask.is_some())
}

fn point_metrics(run: &ScenarioRun, with_xmem: bool) -> (f64, f64) {
    let p99_us = run.p99_latency_us("dpdk", LatencyKind::NetTotal);
    let miss = if with_xmem {
        run.llc_miss_rate("xmem")
    } else {
        0.0
    };
    (p99_us, miss)
}

/// Runs the full figure serially.
pub fn run(opts: &RunOpts) -> Table {
    run_with(opts, &SweepRunner::serial())
}

/// Runs the full figure, fanning cells out over `runner`.
pub fn run_with(opts: &RunOpts, runner: &SweepRunner) -> Table {
    let runs = runner.run_specs(&specs(opts)).expect("static fig4 layout");
    table(&runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabling_dca_removes_directory_contention() {
        let opts = RunOpts::quick();
        let inclusive = WayMask::INCLUSIVE;
        let (_, miss_on) = run_point(&opts, true, Some(inclusive));
        let (_, miss_off) = run_point(&opts, false, Some(inclusive));
        assert!(
            miss_off < miss_on,
            "DCA off avoids migrations into the inclusive ways: on={miss_on:.3} off={miss_off:.3}"
        );
    }

    #[test]
    fn disabling_dca_hurts_network_latency() {
        let opts = RunOpts::quick();
        let (p99_on, _) = run_point(&opts, true, None);
        let (p99_off, _) = run_point(&opts, false, None);
        assert!(
            p99_off > p99_on,
            "device-memory-MLC path is slower: on={p99_on:.1}us off={p99_off:.1}us"
        );
    }
}
