//! Declarative scenario specifications: the one typed, serializable
//! description every experiment is built from.
//!
//! A [`ScenarioSpec`] captures a full experiment cell — system tweaks,
//! device attachments ([`DeviceSpec`]), workload placements
//! ([`WorkloadSpec`] with named roles), static CAT rules, DCA knobs, the
//! LLC-management [`Scheme`] and the run protocol ([`RunOpts`]) — as
//! plain data. `ScenarioSpec::build()` turns it into a ready
//! [`Harness`]; [`Scenario::run`] executes the protocol and returns a
//! [`ScenarioRun`] whose metrics are looked up by role name.
//!
//! Because the spec is serde-serializable, every figure's cells can be
//! dumped as JSON (`a4-repro --dump-specs`), edited, and re-run
//! (`a4-repro --spec file.json`) — new colocation mixes are data, not
//! code.

use a4_core::{
    A4Config, A4Controller, DefaultPolicy, FeatureLevel, Harness, IsolatePolicy, LlcPolicy,
    RunAborted, RunReport, RunSupervisor, Thresholds,
};
use a4_model::{
    A4Error, Bytes, ClosId, CoreId, DeviceId, LineAddr, PortId, Priority, Result, WayMask,
    WorkloadId,
};
use a4_pcie::{NicConfig, NvmeConfig};
use a4_sim::{LatencyKind, MonitorSample, System, SystemConfig, Workload};
use a4_workloads::{scale, Dpdk, Fastclick, Ffsb, Fio, Redis, RedisRole, SpecCpu, XMem};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ring entries per core: the paper's 2048-entry rings scaled by ≈36×,
/// rounded to a power of two.
pub const RING_ENTRIES: usize = 64;

/// Cores per socket of the paper's testbed (Table 1), the default when
/// [`SystemTweaks::cores`] is not overridden.
pub const DEFAULT_CORES_PER_SOCKET: usize = 18;

/// Current [`ScenarioSpec::schema`] version.
///
/// History:
///
/// * **v1** — the pre-NUMA spec: no `schema` field, no
///   [`SystemTweaks::sockets`]/[`SystemTweaks::upi_ns`]/
///   [`SystemTweaks::socket_dca_ways`], no [`DeviceSlot::socket`].
///   Dumps without a `schema` key deserialize as version 0 and are
///   treated as v1.
/// * **v2** — adds the two-socket NUMA surface. Every v1 spec means the
///   same thing under v2 with the new fields at their defaults, so
///   [`ScenarioSpec::migrate`] upgrades in place.
/// * **v3** — matures the NUMA surface: up to
///   [`a4_model::MAX_SOCKETS`] sockets, the
///   [`SystemTweaks::upi_gbps`] link-capacity override and
///   [`Placement::buffer_home`]. All serde-defaulted, so v1/v2 specs
///   again mean the same thing and `migrate` just stamps the version.
///
/// Bump this (and extend `migrate`) whenever a serialized field is
/// added, removed, or changes meaning — never reuse a version for two
/// different layouts.
pub const SCHEMA_VERSION: u32 = 3;

/// Run-length options shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunOpts {
    /// Warm-up logical seconds (discarded).
    pub warmup: u64,
    /// Measured logical seconds.
    pub measure: u64,
    /// RNG seed.
    pub seed: u64,
}

impl RunOpts {
    /// Paper-like protocol scaled down: 10 s warm-up, 10 s measurement
    /// (the paper uses 70 s runs with 10 s warm-up windows).
    pub fn paper() -> Self {
        RunOpts {
            warmup: 10,
            measure: 10,
            seed: 0xA4,
        }
    }

    /// Long-converging protocol for the controller-driven experiments
    /// (A4 needs ~20 s to settle its zones in the colocation mixes).
    pub fn controller() -> Self {
        RunOpts {
            warmup: 22,
            measure: 10,
            seed: 0xA4,
        }
    }

    /// Fast settings for unit/integration tests.
    pub fn quick() -> Self {
        RunOpts {
            warmup: 3,
            measure: 3,
            seed: 0xA4,
        }
    }
}

impl Default for RunOpts {
    fn default() -> Self {
        Self::paper()
    }
}

/// An LLC-management scheme of the paper's §6: the two baselines and the
/// four A4 variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheme {
    /// Share everything, no CAT.
    Default,
    /// Static proportional partitions.
    Isolate,
    /// A4 at a given feature level (`FeatureLevel::D` = full A4).
    A4(FeatureLevel),
}

impl Scheme {
    /// The three schemes of Figs. 11-12.
    pub fn main_three() -> [Scheme; 3] {
        [
            Scheme::Default,
            Scheme::Isolate,
            Scheme::A4(FeatureLevel::D),
        ]
    }

    /// The six schemes of Figs. 13-14 (DF, IS, A4-a..d).
    pub fn all_six() -> [Scheme; 6] {
        [
            Scheme::Default,
            Scheme::Isolate,
            Scheme::A4(FeatureLevel::A),
            Scheme::A4(FeatureLevel::B),
            Scheme::A4(FeatureLevel::C),
            Scheme::A4(FeatureLevel::D),
        ]
    }

    /// Instantiates the policy object with the paper's thresholds.
    pub fn policy(self) -> Box<dyn LlcPolicy> {
        self.policy_with(None)
    }

    /// Instantiates the policy object; `thresholds` overrides the A4
    /// detection/timing parameters (the Fig. 15 sensitivity knob) and is
    /// ignored by the baselines.
    pub fn policy_with(self, thresholds: Option<Thresholds>) -> Box<dyn LlcPolicy> {
        match self {
            Scheme::Default => Box::new(DefaultPolicy::new()),
            Scheme::Isolate => Box::new(IsolatePolicy::new()),
            Scheme::A4(level) => Box::new(A4Controller::new(A4Config::with_level(
                level,
                thresholds.unwrap_or_else(Thresholds::scaled_sim),
            ))),
        }
    }

    /// Display label ("Default", "Isolate", "A4-a", ...).
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Default => "Default",
            Scheme::Isolate => "Isolate",
            Scheme::A4(FeatureLevel::A) => "A4-a",
            Scheme::A4(FeatureLevel::B) => "A4-b",
            Scheme::A4(FeatureLevel::C) => "A4-c",
            Scheme::A4(FeatureLevel::D) => "A4-d",
        }
    }
}

/// Error building a [`ScenarioSpec`] into a runnable [`Scenario`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A substrate rejected the configuration (port conflict, core
    /// already pinned, invalid mask, ...).
    Model(A4Error),
    /// The spec itself is inconsistent (unknown role/device name,
    /// out-of-vocabulary workload, duplicate names, ...).
    Invalid(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Model(e) => write!(f, "scenario wiring failed: {e}"),
            SpecError::Invalid(what) => write!(f, "invalid scenario spec: {what}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<A4Error> for SpecError {
    fn from(e: A4Error) -> Self {
        SpecError::Model(e)
    }
}

/// A per-socket DCA (DDIO) way-count override.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocketDca {
    /// Socket the override applies to.
    pub socket: u8,
    /// DCA way count on that socket, programmed as ways `[0:n-1]`.
    pub dca_ways: usize,
}

/// Overrides applied on top of the paper's scaled Xeon Gold 6140
/// configuration (system / cache / memory layers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemTweaks {
    /// Cores *per socket* (default: the paper's 18).
    pub cores: Option<usize>,
    /// DCA (DDIO) way count on every socket, programmed as ways
    /// `[0:n-1]` (default: 2, the IIO `IIO_LLC_WAYS` power-on value).
    pub dca_ways: Option<usize>,
    /// DDR channel count (default: 6).
    pub mem_channels: Option<usize>,
    /// Socket count (default 1; the NUMA model covers up to
    /// [`a4_model::MAX_SOCKETS`]). Each socket owns a full hierarchy —
    /// cores, MLCs, LLC, DCA ways, CLOS tables — and placements address
    /// cores globally (`socket × cores + local_core`). Absent in v1
    /// dumps.
    #[serde(default)]
    pub sockets: Option<usize>,
    /// UPI hop latency override in nanoseconds (default 80). Charged per
    /// line whenever a core or device touches a buffer homed on another
    /// socket. Absent in v1 dumps.
    #[serde(default)]
    pub upi_ns: Option<u64>,
    /// Per-direction UPI link capacity override in GB/s. `None` (the
    /// default) keeps the simulator's unthrottled links: remote lines
    /// cost the fixed hop latency at any offered load. Setting a
    /// capacity adds per-line serialization and a utilization-driven
    /// queueing factor, so remote throughput saturates at the link's
    /// capacity. Absent in v1/v2 dumps.
    #[serde(default)]
    pub upi_gbps: Option<f64>,
    /// Per-socket DCA way-count overrides, applied after the global
    /// [`SystemTweaks::dca_ways`] knob. Absent in v1 dumps.
    #[serde(default)]
    pub socket_dca_ways: Vec<SocketDca>,
}

impl SystemTweaks {
    /// No overrides: the paper's testbed as-is.
    pub fn none() -> Self {
        SystemTweaks {
            cores: None,
            dca_ways: None,
            mem_channels: None,
            sockets: None,
            upi_ns: None,
            upi_gbps: None,
            socket_dca_ways: Vec::new(),
        }
    }

    /// A two-socket system with the given UPI hop latency (`None` keeps
    /// the default 80 ns).
    pub fn two_socket(upi_ns: Option<u64>) -> Self {
        SystemTweaks {
            sockets: Some(2),
            upi_ns,
            ..SystemTweaks::none()
        }
    }

    /// Cores per socket after overrides.
    pub fn cores_per_socket(&self) -> usize {
        self.cores.unwrap_or(DEFAULT_CORES_PER_SOCKET)
    }

    /// Socket count after overrides.
    pub fn socket_count(&self) -> usize {
        self.sockets.unwrap_or(1)
    }
}

impl Default for SystemTweaks {
    fn default() -> Self {
        Self::none()
    }
}

/// A device attachment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeviceSpec {
    /// The 100 Gbps ConnectX-6-like NIC with one ring per serving core.
    Nic {
        /// Number of rings (one per serving core).
        rings: usize,
        /// Packet size in bytes.
        packet_bytes: u64,
        /// Microburst amplitude override (default: the model's 0.5).
        burst_amplitude: Option<f64>,
    },
    /// The RAID-0 array of four 980 Pro-like NVMe SSDs.
    Ssd,
}

/// One named, port-addressed device slot of a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSlot {
    /// Name workloads and DCA rules refer to ("nic", "ssd", ...).
    pub name: String,
    /// PCIe root port.
    pub port: u8,
    /// Socket the device's root port belongs to. Ring/DMA buffers
    /// internal to the device are homed here, DCA injects into this
    /// socket's LLC, and traffic to buffers homed elsewhere crosses the
    /// UPI link. Absent in v1 dumps (socket 0).
    #[serde(default)]
    pub socket: u8,
    /// What is plugged in.
    pub device: DeviceSpec,
}

/// A workload generator from the paper's Tables 2/3, referencing devices
/// by slot name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// DPDK l3fwd-style packet forwarder; `touch` selects the
    /// payload-touching variant.
    Dpdk {
        /// NIC slot name.
        device: String,
        /// Whether payloads are read (DPDK-T) or only descriptors
        /// (DPDK-NT).
        touch: bool,
    },
    /// FIO random direct reads at the paper's queue depth of 32 per
    /// thread.
    Fio {
        /// SSD slot name.
        device: String,
        /// Block size in paper KiB (scaled to lines at build time).
        block_kib: u64,
    },
    /// X-Mem instance 1–3 (Table 3).
    XMem {
        /// Table 3 instance number (1, 2 or 3).
        instance: u8,
    },
    /// Fastclick NAT+LB network function.
    Fastclick {
        /// NIC slot name.
        device: String,
    },
    /// FFSB-H: 2 MB-block file server benchmark.
    FfsbHeavy {
        /// SSD slot name.
        device: String,
    },
    /// FFSB-L: 32 KB-block file server benchmark (single core).
    FfsbLight {
        /// SSD slot name.
        device: String,
    },
    /// Redis-S: the persistent key-value store (YCSB-A footprint).
    RedisServer,
    /// Redis-C: the YCSB client half.
    RedisClient,
    /// A SPEC CPU2017-like synthetic, by benchmark name ("lbm", "mcf",
    /// ...).
    SpecCpu {
        /// Benchmark name from the fixed experiment vocabulary.
        benchmark: String,
    },
}

impl WorkloadSpec {
    /// The performance metric the paper reports for this workload class:
    /// throughput (completed operations) for the multi-threaded I/O
    /// workloads, IPC for everything else.
    pub fn default_metric(&self) -> Metric {
        match self {
            WorkloadSpec::Dpdk { .. }
            | WorkloadSpec::Fio { .. }
            | WorkloadSpec::Fastclick { .. }
            | WorkloadSpec::FfsbHeavy { .. }
            | WorkloadSpec::FfsbLight { .. } => Metric::Ops,
            WorkloadSpec::XMem { .. }
            | WorkloadSpec::RedisServer
            | WorkloadSpec::RedisClient
            | WorkloadSpec::SpecCpu { .. } => Metric::Ipc,
        }
    }
}

/// How a workload's performance is summarized (the paper's convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Total completed operations over the window.
    Ops,
    /// Mean instructions per cycle over the window.
    Ipc,
}

/// One workload placement: a named role pinned to cores at a priority.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Role name metrics are looked up by ("dpdk", "xmem1", ...).
    pub role: String,
    /// The workload generator.
    pub workload: WorkloadSpec,
    /// Cores the workload is pinned to.
    pub cores: Vec<u8>,
    /// QoS priority.
    pub priority: Priority,
    /// Reported performance metric.
    pub metric: Metric,
    /// Socket the workload's host buffers are allocated on. `None` (the
    /// default) homes them with the cores; an explicit socket makes the
    /// workload a *remote* consumer whose every buffer line crosses UPI
    /// — the knob the saturation experiments turn. Only meaningful for
    /// workloads that own host buffers (X-Mem, FIO, FFSB, Redis, SPEC);
    /// rejected for the NIC-ring-only workloads. Absent in v1/v2 dumps.
    #[serde(default)]
    pub buffer_home: Option<usize>,
}

/// A static CAT rule: program `clos` with `mask` and move the listed
/// roles' cores into it (the §3/§4 discovery experiments).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatRule {
    /// CLOS index.
    pub clos: u8,
    /// Capacity mask.
    pub mask: WayMask,
    /// Roles assigned to the CLOS.
    pub roles: Vec<String>,
}

/// A per-device DCA override (`perfctrlsts_0`, A4's F2 knob).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcaRule {
    /// Device slot name.
    pub device: String,
    /// Whether the port's DMA writes use DCA.
    pub enabled: bool,
}

/// A declarative, serializable description of one experiment cell.
///
/// # Examples
///
/// ```
/// use a4_experiments::spec::{RunOpts, ScenarioSpec, Scheme, WorkloadSpec};
/// use a4_model::Priority;
///
/// let spec = ScenarioSpec::new("demo", RunOpts::quick())
///     .with_nic(4, 1024)
///     .with_workload(
///         "dpdk",
///         WorkloadSpec::Dpdk { device: "nic".into(), touch: true },
///         &[0, 1, 2, 3],
///         Priority::High,
///     )
///     .with_scheme(Scheme::Default);
/// let run = spec.build().unwrap().run();
/// assert!(run.perf("dpdk") > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Spec layout version (see [`SCHEMA_VERSION`]). Deserializes as 0
    /// when the key is absent — i.e. a pre-versioning v1 dump — which
    /// [`ScenarioSpec::migrate`] upgrades in place.
    #[serde(default)]
    pub schema: u32,
    /// Display name ("fig12 512KB A4-d", ...).
    pub name: String,
    /// System/cache/memory configuration overrides.
    pub system: SystemTweaks,
    /// Device attachments, in attach order.
    pub devices: Vec<DeviceSlot>,
    /// Workload placements, in registration order.
    pub workloads: Vec<Placement>,
    /// Static CAT rules applied after registration.
    pub cat: Vec<CatRule>,
    /// Global DCA state (the BIOS knob; default on).
    pub global_dca: bool,
    /// Per-device DCA overrides applied after the global knob.
    pub dca: Vec<DcaRule>,
    /// LLC-management scheme; `None` runs uncontrolled (static-CAT
    /// discovery experiments).
    pub scheme: Option<Scheme>,
    /// A4 threshold override (Fig. 15 sensitivity studies).
    pub thresholds: Option<Thresholds>,
    /// Run protocol.
    pub opts: RunOpts,
}

impl ScenarioSpec {
    /// An empty scenario on the paper's testbed.
    pub fn new(name: impl Into<String>, opts: RunOpts) -> Self {
        ScenarioSpec {
            schema: SCHEMA_VERSION,
            name: name.into(),
            system: SystemTweaks::none(),
            devices: Vec::new(),
            workloads: Vec::new(),
            cat: Vec::new(),
            global_dca: true,
            dca: Vec::new(),
            scheme: None,
            thresholds: None,
            opts,
        }
    }

    /// The §7.1 microbenchmark colocation: DPDK-T (4 cores) + FIO
    /// (4 cores, 2 MB blocks) + X-Mem 1/2/3 — the facade quickstart.
    pub fn microbench(opts: RunOpts) -> Self {
        ScenarioSpec::new("microbench", opts)
            .with_nic(4, 1024)
            .with_ssd()
            .with_workload(
                "dpdk",
                WorkloadSpec::Dpdk {
                    device: "nic".into(),
                    touch: true,
                },
                &[0, 1, 2, 3],
                Priority::High,
            )
            .with_workload(
                "fio",
                WorkloadSpec::Fio {
                    device: "ssd".into(),
                    block_kib: 2048,
                },
                &[4, 5, 6, 7],
                Priority::Low,
            )
            .with_workload(
                "xmem1",
                WorkloadSpec::XMem { instance: 1 },
                &[8, 9],
                Priority::High,
            )
            .with_workload(
                "xmem2",
                WorkloadSpec::XMem { instance: 2 },
                &[10],
                Priority::Low,
            )
            .with_workload(
                "xmem3",
                WorkloadSpec::XMem { instance: 3 },
                &[11],
                Priority::Low,
            )
    }

    /// Adds a named device slot on socket 0.
    pub fn with_device(self, name: impl Into<String>, port: u8, device: DeviceSpec) -> Self {
        self.with_device_on(name, port, 0, device)
    }

    /// Adds a named device slot on an explicit socket.
    pub fn with_device_on(
        mut self,
        name: impl Into<String>,
        port: u8,
        socket: u8,
        device: DeviceSpec,
    ) -> Self {
        self.devices.push(DeviceSlot {
            name: name.into(),
            port,
            socket,
            device,
        });
        self
    }

    /// Adds the standard NIC slot ("nic", port 0, socket 0).
    pub fn with_nic(self, rings: usize, packet_bytes: u64) -> Self {
        self.with_nic_on(0, rings, packet_bytes)
    }

    /// Adds the standard NIC slot ("nic", port 0) on an explicit socket.
    pub fn with_nic_on(self, socket: u8, rings: usize, packet_bytes: u64) -> Self {
        self.with_device_on(
            "nic",
            0,
            socket,
            DeviceSpec::Nic {
                rings,
                packet_bytes,
                burst_amplitude: None,
            },
        )
    }

    /// Adds the standard SSD array slot ("ssd", port 1, socket 0).
    pub fn with_ssd(self) -> Self {
        self.with_ssd_on(0)
    }

    /// Adds the standard SSD array slot ("ssd", port 1) on an explicit
    /// socket.
    pub fn with_ssd_on(self, socket: u8) -> Self {
        self.with_device_on("ssd", 1, socket, DeviceSpec::Ssd)
    }

    /// Adds a workload placement with the paper's default metric.
    pub fn with_workload(
        self,
        role: impl Into<String>,
        workload: WorkloadSpec,
        cores: &[u8],
        priority: Priority,
    ) -> Self {
        let metric = workload.default_metric();
        self.with_workload_metric(role, workload, cores, priority, metric)
    }

    /// Adds a workload placement on an explicit socket, addressing
    /// cores by their *socket-local* index
    /// (`global = socket × cores_per_socket + local`). Apply
    /// [`ScenarioSpec::with_system`] *before* this builder when
    /// overriding the per-socket core count — the mapping uses the
    /// tweaks already present.
    pub fn with_workload_on(
        self,
        socket: u8,
        role: impl Into<String>,
        workload: WorkloadSpec,
        local_cores: &[u8],
        priority: Priority,
    ) -> Self {
        let cps = self.system.cores_per_socket() as u8;
        let cores: Vec<u8> = local_cores.iter().map(|&c| socket * cps + c).collect();
        let metric = workload.default_metric();
        self.with_workload_metric(role, workload, &cores, priority, metric)
    }

    /// [`ScenarioSpec::with_workload_on`] with the workload's host
    /// buffers homed on a *different* socket — cores on `socket`, data
    /// on `buffer_home` — so every buffer line is a remote access.
    pub fn with_workload_on_homed(
        mut self,
        socket: u8,
        buffer_home: usize,
        role: impl Into<String>,
        workload: WorkloadSpec,
        local_cores: &[u8],
        priority: Priority,
    ) -> Self {
        self = self.with_workload_on(socket, role, workload, local_cores, priority);
        self.workloads
            .last_mut()
            .expect("placement just pushed")
            .buffer_home = Some(buffer_home);
        self
    }

    /// Adds a workload placement with an explicit metric.
    pub fn with_workload_metric(
        mut self,
        role: impl Into<String>,
        workload: WorkloadSpec,
        cores: &[u8],
        priority: Priority,
        metric: Metric,
    ) -> Self {
        self.workloads.push(Placement {
            role: role.into(),
            workload,
            cores: cores.to_vec(),
            priority,
            metric,
            buffer_home: None,
        });
        self
    }

    /// Adds a static CAT rule.
    pub fn with_cat(mut self, clos: u8, mask: WayMask, roles: &[&str]) -> Self {
        self.cat.push(CatRule {
            clos,
            mask,
            roles: roles.iter().map(|r| (*r).to_string()).collect(),
        });
        self
    }

    /// Sets the global DCA (BIOS) knob.
    pub fn with_global_dca(mut self, enabled: bool) -> Self {
        self.global_dca = enabled;
        self
    }

    /// Adds a per-device DCA override.
    pub fn with_device_dca(mut self, device: impl Into<String>, enabled: bool) -> Self {
        self.dca.push(DcaRule {
            device: device.into(),
            enabled,
        });
        self
    }

    /// Attaches an LLC-management scheme.
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = Some(scheme);
        self
    }

    /// Overrides the A4 thresholds (no effect on baseline schemes).
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = Some(thresholds);
        self
    }

    /// Applies system/cache/memory overrides.
    pub fn with_system(mut self, tweaks: SystemTweaks) -> Self {
        self.system = tweaks;
        self
    }

    /// Overrides the RNG seed (per-cell seed derivation).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// The role and device bindings this spec produces when built,
    /// without building the system: workload and device ids are assigned
    /// in registration order, so the bindings are a pure function of the
    /// spec. This is what lets a cached [`a4_core::RunReport`] be
    /// re-wrapped into a [`ScenarioRun`] with no simulation
    /// (`debug_assert`-checked against the built system in
    /// [`ScenarioSpec::build`]).
    pub fn bindings(&self) -> (Vec<RoleBinding>, Vec<DeviceBinding>) {
        let workloads = self
            .workloads
            .iter()
            .enumerate()
            .map(|(i, p)| RoleBinding {
                role: p.role.clone(),
                id: WorkloadId(i as u16),
                priority: p.priority,
                metric: p.metric,
            })
            .collect();
        let devices = self
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| DeviceBinding {
                name: d.name.clone(),
                id: DeviceId(i as u8),
            })
            .collect();
        (workloads, devices)
    }

    /// Wraps an already-computed report (typically loaded from a
    /// [`crate::cache::ResultCache`]) into the [`ScenarioRun`] this spec
    /// would produce, using the spec-derived [`ScenarioSpec::bindings`].
    pub fn run_from_report(&self, report: RunReport) -> ScenarioRun {
        let (workloads, devices) = self.bindings();
        ScenarioRun {
            name: self.name.clone(),
            report,
            workloads,
            devices,
            missing: false,
        }
    }

    /// A placeholder for a cell whose report is not in the store: the
    /// bindings are real (renderers can still resolve roles and
    /// devices) but every metric accessor returns NaN, which tables
    /// print as `(missing)`. This is what `--merge-only --best-effort`
    /// substitutes for unexecuted cells.
    pub fn missing_run(&self) -> ScenarioRun {
        let (workloads, devices) = self.bindings();
        ScenarioRun {
            name: self.name.clone(),
            report: RunReport {
                policy: "(missing)".into(),
                samples: Vec::new(),
            },
            workloads,
            devices,
            missing: true,
        }
    }

    /// Upgrades a deserialized spec to the current [`SCHEMA_VERSION`].
    ///
    /// Version 0 (a pre-versioning dump without a `schema` key), v1 and
    /// v2 all mean the same thing: every field added since was absent
    /// and its `#[serde(default)]` value — one socket, default UPI
    /// latency, unthrottled links, buffers homed with their cores,
    /// every device on socket 0 — reproduces the older semantics
    /// exactly, so the upgrade is just stamping the current version.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for versions newer than
    /// [`SCHEMA_VERSION`] (a dump from a future build of this crate).
    pub fn migrate(mut self) -> std::result::Result<Self, SpecError> {
        match self.schema {
            0..=SCHEMA_VERSION => {
                self.schema = SCHEMA_VERSION;
                Ok(self)
            }
            newer => Err(SpecError::Invalid(format!(
                "spec {:?} has schema v{newer}, but this build only knows up to \
                 v{SCHEMA_VERSION} — re-dump it with a matching a4-repro",
                self.name
            ))),
        }
    }

    /// Parses one spec from JSON and migrates it to the current schema
    /// (the `a4-repro --spec` loader).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for malformed JSON or a
    /// future-versioned schema.
    pub fn from_json(json: &str) -> std::result::Result<Self, SpecError> {
        let spec: ScenarioSpec = serde_json::from_str(json)
            .map_err(|e| SpecError::Invalid(format!("unparseable spec JSON: {e}")))?;
        spec.migrate()
    }

    /// Checks internal consistency without building the system.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] for duplicate names, unknown
    /// device references, empty core lists and out-of-vocabulary
    /// workloads.
    pub fn validate(&self) -> std::result::Result<(), SpecError> {
        if self.schema > SCHEMA_VERSION {
            return Err(SpecError::Invalid(format!(
                "schema v{} is newer than this build's v{SCHEMA_VERSION}",
                self.schema
            )));
        }
        if let Some(cores) = self.system.cores {
            if cores == 0 {
                return Err(SpecError::Invalid("core count override is zero".into()));
            }
        }
        if let Some(ways) = self.system.dca_ways {
            if !(1..=a4_model::LLC_WAYS).contains(&ways) {
                return Err(SpecError::Invalid(format!(
                    "dca_ways override {ways} outside the LLC's 1..={} ways",
                    a4_model::LLC_WAYS
                )));
            }
        }
        if let Some(channels) = self.system.mem_channels {
            if channels == 0 {
                return Err(SpecError::Invalid("memory channel override is zero".into()));
            }
        }
        let sockets = self.system.socket_count();
        let cps = self.system.cores_per_socket();
        if !(1..=a4_model::MAX_SOCKETS).contains(&sockets) {
            return Err(SpecError::Invalid(format!(
                "sockets override {sockets} unsupported: the NUMA model covers 1 to \
                 {} sockets",
                a4_model::MAX_SOCKETS
            )));
        }
        if self.system.upi_gbps.is_some_and(|g| g <= 0.0) {
            return Err(SpecError::Invalid(format!(
                "upi_gbps override {:?} must be positive — use None for an \
                 unthrottled link",
                self.system.upi_gbps
            )));
        }
        for (i, o) in self.system.socket_dca_ways.iter().enumerate() {
            if o.socket as usize >= sockets {
                return Err(SpecError::Invalid(format!(
                    "DCA way override targets socket {} but the system has only \
                     {sockets} socket(s) — remote-only DCA is not a thing",
                    o.socket
                )));
            }
            if !(1..=a4_model::LLC_WAYS).contains(&o.dca_ways) {
                return Err(SpecError::Invalid(format!(
                    "socket {} dca_ways override {} outside the LLC's 1..={} ways",
                    o.socket,
                    o.dca_ways,
                    a4_model::LLC_WAYS
                )));
            }
            if self.system.socket_dca_ways[..i]
                .iter()
                .any(|p| p.socket == o.socket)
            {
                return Err(SpecError::Invalid(format!(
                    "duplicate DCA way override for socket {}",
                    o.socket
                )));
            }
        }
        for (i, d) in self.devices.iter().enumerate() {
            if self.devices[..i].iter().any(|o| o.name == d.name) {
                return Err(SpecError::Invalid(format!("duplicate device {:?}", d.name)));
            }
            if d.socket as usize >= sockets {
                return Err(SpecError::Invalid(format!(
                    "device {:?} is attached to socket {} but the system has only \
                     {sockets} socket(s)",
                    d.name, d.socket
                )));
            }
        }
        for (i, p) in self.workloads.iter().enumerate() {
            if self.workloads[..i].iter().any(|o| o.role == p.role) {
                return Err(SpecError::Invalid(format!("duplicate role {:?}", p.role)));
            }
            if p.cores.is_empty() {
                return Err(SpecError::Invalid(format!(
                    "role {:?} needs at least one core",
                    p.role
                )));
            }
            for &c in &p.cores {
                if c as usize >= sockets * cps {
                    return Err(SpecError::Invalid(format!(
                        "role {:?} pins core {c} outside the {} cores of this \
                         {sockets}-socket system ({cps} cores per socket)",
                        p.role,
                        sockets * cps
                    )));
                }
            }
            let socket0 = p.cores[0] as usize / cps;
            if let Some(&stray) = p.cores.iter().find(|&&c| c as usize / cps != socket0) {
                return Err(SpecError::Invalid(format!(
                    "role {:?} straddles sockets: core {} is on socket {socket0} but \
                     core {stray} is on socket {} — a placement must stay on one socket",
                    p.role,
                    p.cores[0],
                    stray as usize / cps
                )));
            }
            let single_core = matches!(
                p.workload,
                WorkloadSpec::FfsbLight { .. }
                    | WorkloadSpec::RedisServer
                    | WorkloadSpec::RedisClient
                    | WorkloadSpec::SpecCpu { .. }
            );
            if single_core && p.cores.len() > 1 {
                // Refuse rather than silently pin cores[0] only: the spec
                // must describe exactly the system that gets built.
                return Err(SpecError::Invalid(format!(
                    "role {:?} is single-threaded but lists {} cores",
                    p.role,
                    p.cores.len()
                )));
            }
            if let Some(home) = p.buffer_home {
                if home >= sockets {
                    return Err(SpecError::Invalid(format!(
                        "role {:?} homes its buffers on socket {home} but the system \
                         has only {sockets} socket(s)",
                        p.role
                    )));
                }
                if matches!(
                    p.workload,
                    WorkloadSpec::Dpdk { .. } | WorkloadSpec::Fastclick { .. }
                ) {
                    // These consume device rings, which live with the
                    // device; there is no host buffer to re-home.
                    return Err(SpecError::Invalid(format!(
                        "role {:?} sets buffer_home but its workload owns no host \
                         buffer — ring placement follows the device's socket",
                        p.role
                    )));
                }
            }
            if let Some(dev) = workload_device(&p.workload) {
                if !self.devices.iter().any(|d| d.name == dev) {
                    return Err(SpecError::Invalid(format!(
                        "role {:?} references unknown device {dev:?}",
                        p.role
                    )));
                }
            }
            if let WorkloadSpec::XMem { instance } = p.workload {
                if !(1..=3).contains(&instance) {
                    return Err(SpecError::Invalid(format!(
                        "X-Mem instance {instance} does not exist (Table 3 has 1-3)"
                    )));
                }
            }
        }
        for rule in &self.cat {
            for role in &rule.roles {
                if !self.workloads.iter().any(|p| &p.role == role) {
                    return Err(SpecError::Invalid(format!(
                        "CAT rule references unknown role {role:?}"
                    )));
                }
            }
        }
        for rule in &self.dca {
            if !self.devices.iter().any(|d| d.name == rule.device) {
                return Err(SpecError::Invalid(format!(
                    "DCA rule references unknown device {:?}",
                    rule.device
                )));
            }
        }
        Ok(())
    }

    /// Builds the described system into a ready-to-run [`Scenario`].
    ///
    /// # Errors
    ///
    /// Propagates [`Self::validate`] failures and substrate rejections
    /// (port conflicts, core conflicts, invalid masks, unknown SPEC
    /// benchmark names).
    pub fn build(&self) -> std::result::Result<Scenario, SpecError> {
        self.validate()?;
        let mut sys = wire::base_system(&self.opts, &self.system);

        let mut devices = Vec::with_capacity(self.devices.len());
        for slot in &self.devices {
            let id = match slot.device {
                DeviceSpec::Nic {
                    rings,
                    packet_bytes,
                    burst_amplitude,
                } => wire::attach_nic(
                    &mut sys,
                    slot.socket as usize,
                    PortId(slot.port),
                    rings,
                    packet_bytes,
                    burst_amplitude,
                )?,
                DeviceSpec::Ssd => {
                    wire::attach_ssd(&mut sys, slot.socket as usize, PortId(slot.port))?
                }
            };
            devices.push(DeviceBinding {
                name: slot.name.clone(),
                id,
            });
        }
        let device_id = |name: &str| -> std::result::Result<DeviceId, SpecError> {
            devices
                .iter()
                .find(|d| d.name == name)
                .map(|d| d.id)
                .ok_or_else(|| SpecError::Invalid(format!("unknown device {name:?}")))
        };

        let mut workloads = Vec::with_capacity(self.workloads.len());
        for p in &self.workloads {
            let id = match &p.workload {
                WorkloadSpec::Dpdk { device, touch } => {
                    wire::add_dpdk(&mut sys, device_id(device)?, *touch, &p.cores, p.priority)?
                }
                WorkloadSpec::Fio { device, block_kib } => {
                    let lines = wire::block_lines(&sys, *block_kib);
                    wire::add_fio(
                        &mut sys,
                        device_id(device)?,
                        lines,
                        &p.cores,
                        p.buffer_home,
                        p.priority,
                    )?
                }
                WorkloadSpec::XMem { instance } => {
                    wire::add_xmem(&mut sys, *instance, &p.cores, p.buffer_home, p.priority)?
                }
                WorkloadSpec::Fastclick { device } => {
                    wire::add_fastclick(&mut sys, device_id(device)?, &p.cores, p.priority)?
                }
                WorkloadSpec::FfsbHeavy { device } => wire::add_ffsb_heavy(
                    &mut sys,
                    device_id(device)?,
                    &p.cores,
                    p.buffer_home,
                    p.priority,
                )?,
                WorkloadSpec::FfsbLight { device } => wire::add_ffsb_light(
                    &mut sys,
                    device_id(device)?,
                    p.cores[0],
                    p.buffer_home,
                    p.priority,
                )?,
                WorkloadSpec::RedisServer => wire::add_redis(
                    &mut sys,
                    RedisRole::Server,
                    p.cores[0],
                    p.buffer_home,
                    p.priority,
                )?,
                WorkloadSpec::RedisClient => wire::add_redis(
                    &mut sys,
                    RedisRole::Client,
                    p.cores[0],
                    p.buffer_home,
                    p.priority,
                )?,
                WorkloadSpec::SpecCpu { benchmark } => {
                    wire::add_spec(&mut sys, benchmark, p.cores[0], p.buffer_home, p.priority)
                        .ok_or_else(|| {
                            SpecError::Invalid(format!("unknown SPEC benchmark {benchmark:?}"))
                        })??
                }
            };
            workloads.push(RoleBinding {
                role: p.role.clone(),
                id,
                priority: p.priority,
                metric: p.metric,
            });
        }
        let role_id = |name: &str| -> std::result::Result<WorkloadId, SpecError> {
            workloads
                .iter()
                .find(|r| r.role == name)
                .map(|r| r.id)
                .ok_or_else(|| SpecError::Invalid(format!("unknown role {name:?}")))
        };

        for rule in &self.cat {
            sys.cat_set_mask(ClosId(rule.clos), rule.mask)?;
            for role in &rule.roles {
                sys.cat_assign_workload(role_id(role)?, ClosId(rule.clos))?;
            }
        }
        sys.set_global_dca(self.global_dca);
        for rule in &self.dca {
            sys.set_device_dca(device_id(&rule.device)?, rule.enabled)?;
        }

        debug_assert_eq!(
            self.bindings(),
            (workloads.clone(), devices.clone()),
            "spec-derived bindings must match registration order"
        );
        let harness = match self.scheme {
            Some(scheme) => Harness::with_policy(sys, scheme.policy_with(self.thresholds)),
            None => Harness::new(sys),
        };
        Ok(Scenario {
            name: self.name.clone(),
            opts: self.opts,
            harness,
            workloads,
            devices,
        })
    }
}

fn workload_device(w: &WorkloadSpec) -> Option<&str> {
    match w {
        WorkloadSpec::Dpdk { device, .. }
        | WorkloadSpec::Fio { device, .. }
        | WorkloadSpec::Fastclick { device }
        | WorkloadSpec::FfsbHeavy { device }
        | WorkloadSpec::FfsbLight { device } => Some(device),
        _ => None,
    }
}

/// A role name bound to its runtime workload id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleBinding {
    /// The placement's role name.
    pub role: String,
    /// The id assigned at registration.
    pub id: WorkloadId,
    /// Declared priority.
    pub priority: Priority,
    /// Reported metric.
    pub metric: Metric,
}

/// A device slot name bound to its runtime device id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceBinding {
    /// The slot name.
    pub name: String,
    /// The id assigned at attachment.
    pub id: DeviceId,
}

/// A built scenario: a ready [`Harness`] plus the name→id bindings.
#[derive(Debug)]
pub struct Scenario {
    /// The spec's display name.
    pub name: String,
    /// The run protocol the spec requested.
    pub opts: RunOpts,
    /// The wired system under its policy.
    pub harness: Harness,
    /// Role bindings, in placement order.
    pub workloads: Vec<RoleBinding>,
    /// Device bindings, in attach order.
    pub devices: Vec<DeviceBinding>,
}

impl Scenario {
    /// The workload id of a role.
    ///
    /// # Panics
    ///
    /// Panics for unknown roles (a fixed experiment vocabulary).
    pub fn workload(&self, role: &str) -> WorkloadId {
        self.workloads
            .iter()
            .find(|r| r.role == role)
            .unwrap_or_else(|| panic!("unknown role {role:?}"))
            .id
    }

    /// The device id of a slot name.
    ///
    /// # Panics
    ///
    /// Panics for unknown slot names.
    pub fn device(&self, name: &str) -> DeviceId {
        self.devices
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("unknown device {name:?}"))
            .id
    }

    /// Runs the spec's warm-up + measurement protocol.
    pub fn run(mut self) -> ScenarioRun {
        let report = self.harness.run(self.opts.warmup, self.opts.measure);
        ScenarioRun {
            name: self.name,
            report,
            workloads: self.workloads,
            devices: self.devices,
            missing: false,
        }
    }

    /// The supervised variant of [`Scenario::run`]: covers seconds
    /// `start_second..warmup + measure` with `samples` already recorded
    /// (pass `0` and `Vec::new()` for a fresh run; the resume values
    /// come from a restored [`crate::supervise::CellCkpt`]) and lets
    /// `supervisor` checkpoint or abort the run after each logical
    /// second. An uninterrupted supervised run is bit-identical to
    /// [`Scenario::run`].
    ///
    /// # Errors
    ///
    /// Returns the supervisor's [`RunAborted`] if it stops the run.
    pub fn run_supervised(
        mut self,
        start_second: u64,
        samples: Vec<MonitorSample>,
        supervisor: &mut dyn RunSupervisor,
    ) -> std::result::Result<ScenarioRun, RunAborted> {
        let report = self.harness.run_supervised(
            self.opts.warmup,
            self.opts.measure,
            start_second,
            samples,
            supervisor,
        )?;
        Ok(ScenarioRun {
            name: self.name,
            report,
            workloads: self.workloads,
            devices: self.devices,
            missing: false,
        })
    }
}

/// A completed scenario run: the report plus role-addressed metric
/// lookups.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The spec's display name.
    pub name: String,
    /// The collected samples and aggregates.
    pub report: RunReport,
    /// Role bindings, in placement order.
    pub workloads: Vec<RoleBinding>,
    /// Device bindings, in attach order.
    pub devices: Vec<DeviceBinding>,
    /// True for a [`ScenarioSpec::missing_run`] placeholder: the report
    /// is empty and every metric accessor returns NaN.
    pub missing: bool,
}

impl ScenarioRun {
    /// The workload id of a role.
    ///
    /// # Panics
    ///
    /// Panics for unknown roles.
    pub fn id(&self, role: &str) -> WorkloadId {
        self.binding(role).id
    }

    /// The full binding of a role.
    ///
    /// # Panics
    ///
    /// Panics for unknown roles.
    pub fn binding(&self, role: &str) -> &RoleBinding {
        self.workloads
            .iter()
            .find(|r| r.role == role)
            .unwrap_or_else(|| panic!("unknown role {role:?}"))
    }

    /// The device id of a slot name.
    ///
    /// # Panics
    ///
    /// Panics for unknown slot names.
    pub fn device_id(&self, name: &str) -> DeviceId {
        self.devices
            .iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("unknown device {name:?}"))
            .id
    }

    /// NaN for a missing-cell placeholder, `v` otherwise — every
    /// metric accessor funnels through this so best-effort merges
    /// render `(missing)` instead of a fake 0.
    fn tainted(&self, v: f64) -> f64 {
        if self.missing {
            f64::NAN
        } else {
            v
        }
    }

    /// The role's performance under its declared [`Metric`] (the
    /// paper's per-workload convention).
    pub fn perf(&self, role: &str) -> f64 {
        let b = self.binding(role);
        self.tainted(match b.metric {
            Metric::Ops => self.report.total_ops(b.id) as f64,
            Metric::Ipc => self.report.ipc(b.id),
        })
    }

    /// Mean IPC of a role.
    pub fn ipc(&self, role: &str) -> f64 {
        self.tainted(self.report.ipc(self.id(role)))
    }

    /// Mean LLC hit rate of a role.
    pub fn llc_hit_rate(&self, role: &str) -> f64 {
        self.tainted(self.report.llc_hit_rate(self.id(role)))
    }

    /// Mean LLC miss rate of a role.
    pub fn llc_miss_rate(&self, role: &str) -> f64 {
        self.tainted(self.report.llc_miss_rate(self.id(role)))
    }

    /// Mean latency of one histogram slot, in µs.
    pub fn mean_latency_us(&self, role: &str, kind: LatencyKind) -> f64 {
        self.tainted(self.report.mean_latency_ns(self.id(role), kind) / 1000.0)
    }

    /// Window-max p99 latency of one histogram slot, in µs.
    pub fn p99_latency_us(&self, role: &str, kind: LatencyKind) -> f64 {
        self.tainted(self.report.p99_latency_ns(self.id(role), kind) as f64 / 1000.0)
    }

    /// Paper-comparable I/O throughput of a role, in GB/s.
    pub fn io_gbps(&self, role: &str) -> f64 {
        self.tainted(self.report.io_gbps(self.id(role)))
    }

    /// Paper-comparable DMA-read throughput of a device slot, in GB/s.
    pub fn device_dma_read_gbps(&self, name: &str) -> f64 {
        self.tainted(self.report.device_dma_read_gbps(self.device_id(name)))
    }

    /// Read throughput of the UPI link joining sockets `a` and `b`, in
    /// GB/s — per-link, so crossings are attributed to a specific
    /// socket pair.
    pub fn upi_link_read_gbps(&self, a: usize, b: usize) -> f64 {
        self.tainted(self.report.upi_link_read_gbps(a, b))
    }

    /// Write throughput of the UPI link joining sockets `a` and `b`, in
    /// GB/s.
    pub fn upi_link_write_gbps(&self, a: usize, b: usize) -> f64 {
        self.tainted(self.report.upi_link_write_gbps(a, b))
    }

    /// System-wide memory read bandwidth, in GB/s.
    pub fn mem_read_gbps(&self) -> f64 {
        self.tainted(self.report.mem_read_gbps())
    }

    /// System-wide memory write bandwidth, in GB/s.
    pub fn mem_write_gbps(&self) -> f64 {
        self.tainted(self.report.mem_write_gbps())
    }

    /// Total bytes a role moved over the measurement window.
    pub fn total_io_bytes(&self, role: &str) -> f64 {
        self.tainted(self.report.total_io_bytes(self.id(role)) as f64)
    }
}

/// The imperative wiring `ScenarioSpec::build` delegates to. Not public
/// API: scenarios should be described declaratively.
pub(crate) mod wire {
    use super::*;

    pub(crate) fn base_system(opts: &RunOpts, tweaks: &SystemTweaks) -> System {
        let mut cfg = SystemConfig::xeon_gold_6140();
        cfg.seed = opts.seed;
        if let Some(cores) = tweaks.cores {
            cfg.hierarchy = a4_cache::HierarchyConfig::scaled_xeon_6140(cores);
        }
        if let Some(channels) = tweaks.mem_channels {
            cfg.memory.channels = channels;
        }
        if let Some(sockets) = tweaks.sockets {
            cfg.sockets = sockets;
        }
        if let Some(upi_ns) = tweaks.upi_ns {
            cfg.upi_ns = upi_ns;
        }
        if tweaks.upi_gbps.is_some() {
            cfg.upi_gbps = tweaks.upi_gbps;
        }
        let mut sys = System::new(cfg);
        if let Some(ways) = tweaks.dca_ways {
            let mask = WayMask::from_range(0, ways).expect("validated dca way count");
            for socket in 0..sys.sockets() {
                sys.socket_hierarchy_mut(socket)
                    .llc_mut()
                    .set_dca_mask(mask);
            }
        }
        for o in &tweaks.socket_dca_ways {
            let mask =
                WayMask::from_range(0, o.dca_ways).expect("validated per-socket dca way count");
            sys.socket_hierarchy_mut(o.socket as usize)
                .llc_mut()
                .set_dca_mask(mask);
        }
        sys
    }

    pub(crate) fn attach_nic(
        sys: &mut System,
        socket: usize,
        port: PortId,
        rings: usize,
        packet_bytes: u64,
        burst_amplitude: Option<f64>,
    ) -> Result<DeviceId> {
        let mut cfg = NicConfig::connectx6_100g(rings, RING_ENTRIES, packet_bytes);
        if let Some(amplitude) = burst_amplitude {
            cfg.burst_amplitude = amplitude;
        }
        sys.attach_nic_on(socket, port, cfg)
    }

    pub(crate) fn attach_ssd(sys: &mut System, socket: usize, port: PortId) -> Result<DeviceId> {
        sys.attach_nvme_on(socket, port, NvmeConfig::raid0_980pro_x4())
    }

    /// Socket of a placement's cores (placements never straddle sockets,
    /// enforced by `ScenarioSpec::validate`).
    pub(crate) fn socket_of(sys: &System, cores: &[u8]) -> usize {
        sys.socket_of_core(CoreId(cores[0]))
    }

    /// Socket a placement's host buffers live on: the explicit
    /// `buffer_home` override, or wherever the cores are.
    pub(crate) fn buffer_socket(sys: &System, cores: &[u8], home: Option<usize>) -> usize {
        home.unwrap_or_else(|| socket_of(sys, cores))
    }

    pub(crate) fn block_lines(sys: &System, paper_kib: u64) -> u64 {
        scale::lines(Bytes::from_kib(paper_kib), sys.config().hierarchy.llc)
    }

    pub(crate) fn ws_lines_mib(sys: &System, paper_mib: u64) -> u64 {
        scale::lines(Bytes::from_mib(paper_mib), sys.config().hierarchy.llc)
    }

    pub(crate) fn cores_of(cores: &[u8]) -> Vec<CoreId> {
        cores.iter().map(|&c| CoreId(c)).collect()
    }

    pub(crate) fn add_dpdk(
        sys: &mut System,
        nic: DeviceId,
        touch: bool,
        cores: &[u8],
        priority: Priority,
    ) -> Result<WorkloadId> {
        let wl: Box<dyn Workload> = if touch {
            Box::new(Dpdk::touching(nic))
        } else {
            Box::new(Dpdk::non_touching(nic))
        };
        sys.add_workload(wl, cores_of(cores), priority)
    }

    pub(crate) fn add_fio(
        sys: &mut System,
        ssd: DeviceId,
        block_lines: u64,
        cores: &[u8],
        home: Option<usize>,
        priority: Priority,
    ) -> Result<WorkloadId> {
        let qd_per_core = 32;
        let probe = Fio::new(ssd, LineAddr(0), block_lines, qd_per_core, cores.len());
        let buf = sys.alloc_lines_on(buffer_socket(sys, cores, home), probe.buffer_lines());
        let fio = Fio::new(ssd, buf, block_lines, qd_per_core, cores.len());
        sys.add_workload(Box::new(fio), cores_of(cores), priority)
    }

    pub(crate) fn add_xmem(
        sys: &mut System,
        instance: u8,
        cores: &[u8],
        home: Option<usize>,
        priority: Priority,
    ) -> Result<WorkloadId> {
        let geom = sys.config().hierarchy.llc;
        let socket = buffer_socket(sys, cores, home);
        let wl: Box<dyn Workload> = match instance {
            1 => {
                let ws = scale::lines(Bytes::from_mib(4), geom);
                let base = sys.alloc_lines_on(socket, ws);
                Box::new(XMem::instance_1(base, ws))
            }
            2 => {
                let ws = scale::lines(Bytes::from_mib(4), geom);
                let base = sys.alloc_lines_on(socket, ws);
                Box::new(XMem::instance_2(base, ws))
            }
            3 => {
                let ws = scale::lines(Bytes::from_mib(10), geom);
                let base = sys.alloc_lines_on(socket, ws);
                Box::new(XMem::instance_3(base, ws))
            }
            _ => {
                return Err(A4Error::InvalidConfig {
                    what: "X-Mem instance out of range (Table 3 has 1-3)",
                })
            }
        };
        sys.add_workload(wl, cores_of(cores), priority)
    }

    pub(crate) fn add_fastclick(
        sys: &mut System,
        nic: DeviceId,
        cores: &[u8],
        priority: Priority,
    ) -> Result<WorkloadId> {
        sys.add_workload(Box::new(Fastclick::new(nic)), cores_of(cores), priority)
    }

    pub(crate) fn add_ffsb_heavy(
        sys: &mut System,
        ssd: DeviceId,
        cores: &[u8],
        home: Option<usize>,
        priority: Priority,
    ) -> Result<WorkloadId> {
        let lines = block_lines(sys, 2048);
        let probe = Ffsb::heavy(ssd, LineAddr(0), lines, cores.len());
        let buf = sys.alloc_lines_on(buffer_socket(sys, cores, home), probe.buffer_lines());
        let ffsb = Ffsb::heavy(ssd, buf, lines, cores.len());
        sys.add_workload(Box::new(ffsb), cores_of(cores), priority)
    }

    pub(crate) fn add_ffsb_light(
        sys: &mut System,
        ssd: DeviceId,
        core: u8,
        home: Option<usize>,
        priority: Priority,
    ) -> Result<WorkloadId> {
        let lines = block_lines(sys, 32);
        let probe = Ffsb::light(ssd, LineAddr(0), lines);
        let buf = sys.alloc_lines_on(buffer_socket(sys, &[core], home), probe.buffer_lines());
        let ffsb = Ffsb::light(ssd, buf, lines);
        sys.add_workload(Box::new(ffsb), vec![CoreId(core)], priority)
    }

    pub(crate) fn add_redis(
        sys: &mut System,
        role: RedisRole,
        core: u8,
        home: Option<usize>,
        priority: Priority,
    ) -> Result<WorkloadId> {
        // YCSB-A footprint: a few MB of keyspace, scaled.
        let ws = ws_lines_mib(sys, 2).max(64);
        let base = sys.alloc_lines_on(buffer_socket(sys, &[core], home), ws);
        sys.add_workload(
            Box::new(Redis::new(role, base, ws)),
            vec![CoreId(core)],
            priority,
        )
    }

    /// `None` = unknown benchmark name; `Some(Err)` = core conflict.
    pub(crate) fn add_spec(
        sys: &mut System,
        name: &str,
        core: u8,
        home: Option<usize>,
        priority: Priority,
    ) -> Option<Result<WorkloadId>> {
        let geom = sys.config().hierarchy.llc;
        let probe = SpecCpu::from_profile(name, LineAddr(0), geom)?;
        let base = sys.alloc_lines_on(buffer_socket(sys, &[core], home), probe.ws_lines());
        let wl = SpecCpu::from_profile(name, base, geom).expect("name validated above");
        Some(sys.add_workload(Box::new(wl), vec![CoreId(core)], priority))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_spec_builds_and_runs() {
        let run = ScenarioSpec::microbench(RunOpts::quick())
            .build()
            .unwrap()
            .run();
        assert_eq!(run.report.samples.len(), 3);
        assert_eq!(run.workloads.len(), 5);
        assert!(run.report.total_instructions_all() > 0);
        assert!(run.perf("dpdk") > 0.0);
        assert!(run.ipc("xmem1") > 0.0);
        let _ = run.device_id("nic");
    }

    #[test]
    fn validation_rejects_inconsistent_specs() {
        let opts = RunOpts::quick();
        let dup =
            ScenarioSpec::new("dup", opts)
                .with_nic(4, 64)
                .with_device("nic", 2, DeviceSpec::Ssd);
        assert!(matches!(dup.validate(), Err(SpecError::Invalid(_))));

        let ghost_dev = ScenarioSpec::new("ghost", opts).with_workload(
            "fc",
            WorkloadSpec::Fastclick {
                device: "nic".into(),
            },
            &[0],
            Priority::High,
        );
        assert!(ghost_dev.validate().is_err());

        let bad_xmem = ScenarioSpec::new("xm", opts).with_workload(
            "x",
            WorkloadSpec::XMem { instance: 4 },
            &[0],
            Priority::Low,
        );
        assert!(bad_xmem.validate().is_err());

        let bad_cat = ScenarioSpec::new("cat", opts).with_cat(1, WayMask::DCA, &["nobody"]);
        assert!(bad_cat.validate().is_err());

        let multi_core_redis = ScenarioSpec::new("redis", opts).with_workload(
            "r",
            WorkloadSpec::RedisServer,
            &[0, 1],
            Priority::High,
        );
        assert!(multi_core_redis.validate().is_err());

        for bad_tweaks in [
            SystemTweaks {
                dca_ways: Some(0),
                ..SystemTweaks::none()
            },
            SystemTweaks {
                dca_ways: Some(12),
                ..SystemTweaks::none()
            },
            SystemTweaks {
                cores: Some(0),
                ..SystemTweaks::none()
            },
            SystemTweaks {
                mem_channels: Some(0),
                ..SystemTweaks::none()
            },
            SystemTweaks {
                sockets: Some(0),
                ..SystemTweaks::none()
            },
            SystemTweaks {
                sockets: Some(a4_model::MAX_SOCKETS + 1),
                ..SystemTweaks::none()
            },
            SystemTweaks {
                upi_gbps: Some(0.0),
                ..SystemTweaks::none()
            },
            SystemTweaks {
                upi_gbps: Some(-10.4),
                ..SystemTweaks::none()
            },
        ] {
            let spec = ScenarioSpec::new("tweaks", opts).with_system(bad_tweaks.clone());
            assert!(spec.validate().is_err(), "{bad_tweaks:?} must be rejected");
        }
        for good_tweaks in [
            SystemTweaks {
                sockets: Some(a4_model::MAX_SOCKETS),
                ..SystemTweaks::none()
            },
            SystemTweaks {
                sockets: Some(3),
                upi_gbps: Some(10.4),
                ..SystemTweaks::none()
            },
        ] {
            let spec = ScenarioSpec::new("tweaks", opts).with_system(good_tweaks.clone());
            assert!(spec.validate().is_ok(), "{good_tweaks:?} must be accepted");
        }

        // buffer_home: bounded by the socket count, and only for
        // workloads that own host buffers.
        let far_home = ScenarioSpec::new("home", opts)
            .with_system(SystemTweaks::two_socket(None))
            .with_workload_on_homed(
                0,
                2,
                "x",
                WorkloadSpec::XMem { instance: 1 },
                &[0],
                Priority::Low,
            );
        assert!(far_home.validate().is_err());
        let ringless = ScenarioSpec::new("ring", opts)
            .with_system(SystemTweaks::two_socket(None))
            .with_nic(1, 64)
            .with_workload_on_homed(
                0,
                1,
                "fwd",
                WorkloadSpec::Dpdk {
                    device: "nic".into(),
                    touch: false,
                },
                &[0],
                Priority::High,
            );
        assert!(ringless.validate().is_err());
        let homed = ScenarioSpec::new("homed", opts)
            .with_system(SystemTweaks::two_socket(None))
            .with_workload_on_homed(
                0,
                1,
                "x",
                WorkloadSpec::XMem { instance: 1 },
                &[0],
                Priority::Low,
            );
        assert!(homed.validate().is_ok());

        let unknown_spec = ScenarioSpec::new("spec", opts).with_workload(
            "s",
            WorkloadSpec::SpecCpu {
                benchmark: "doom3".into(),
            },
            &[0],
            Priority::Low,
        );
        assert!(unknown_spec.build().is_err());
    }

    #[test]
    fn spec_json_roundtrip() {
        let spec = ScenarioSpec::microbench(RunOpts::paper())
            .with_scheme(Scheme::A4(FeatureLevel::C))
            .with_thresholds(Thresholds::scaled_sim())
            .with_cat(1, WayMask::from_paper_range(5, 6).unwrap(), &["dpdk"])
            .with_device_dca("ssd", false);
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn scaled_parameters_are_sensible() {
        let opts = RunOpts::quick();
        let sys = wire::base_system(&opts, &SystemTweaks::none());
        // 2 MB paper block ≈ 910 scaled lines; 4 KB ≈ 2 lines.
        let big = wire::block_lines(&sys, 2048);
        let small = wire::block_lines(&sys, 4);
        assert!((800..=1024).contains(&big), "2MB scaled: {big}");
        assert!((1..=4).contains(&small), "4KB scaled: {small}");
        assert!(wire::ws_lines_mib(&sys, 4) > wire::ws_lines_mib(&sys, 2));
    }

    #[test]
    fn system_tweaks_apply() {
        let opts = RunOpts::quick();
        let tweaks = SystemTweaks {
            cores: Some(8),
            dca_ways: Some(4),
            mem_channels: Some(2),
            ..SystemTweaks::none()
        };
        let sys = wire::base_system(&opts, &tweaks);
        assert_eq!(sys.config().hierarchy.cores, 8);
        assert_eq!(sys.config().memory.channels, 2);
    }
}
