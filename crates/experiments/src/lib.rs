//! Experiment harness reproducing every measured figure of the A4 paper.
//!
//! Every experiment is described declaratively: a [`spec::ScenarioSpec`]
//! captures one cell (devices, workload placements with named roles,
//! CAT/DCA knobs, scheme, run protocol) as serializable data and builds
//! a ready harness with `ScenarioSpec::build()`; sweeps fan their cells
//! out over threads with a [`runner::SweepRunner`] and collect
//! deterministically. One module per figure; each exposes `specs(opts)`
//! (the grid as data), a pure `table(runs)`/`tables(runs)` renderer,
//! `run(opts)` (serial) and `run_with(opts, runner)` (parallel)
//! returning [`Table`]s whose rows/series correspond to what the paper
//! plots. The [`service`] module ties the two halves together: a
//! [`service::SweepJob`] describes a figure sweep as serializable data
//! that any process can execute in [`service::Shard`]s against the
//! shared content-addressed store ([`cache::ResultCache`]), with a
//! filesystem work [`queue`] handing shards to workers; rendering is a
//! pure function of the store, so sharded and unsharded runs merge to
//! byte-identical tables. The `a4-repro` binary is one client of that
//! service (and dumps/loads the specs as JSON); `a4-bench` wraps the
//! figures in Criterion targets; the
//! integration tests assert the *shapes* (who wins, where the bumps are)
//! rather than absolute numbers — see EXPERIMENTS.md.
//!
//! | module | paper figure | what it shows |
//! |---|---|---|
//! | [`fig3`] | Fig. 3a/3b | latent + DMA-bloat + directory contention way sweep |
//! | [`fig4`] | Fig. 4 | directory contention disappears with DCA off |
//! | [`fig5`] | Fig. 5a | storage throughput & memory traffic vs block size |
//! | [`fig6`] | Fig. 6 | storage I/O inflating DPDK-T latency |
//! | [`fig7`] | Fig. 7b | n-Exclude vs (n+2)-Overlap allocation strategies |
//! | [`fig8`] | Fig. 8a/8b | per-SSD DCA off + trash-way shrinking |
//! | [`fig11`] | Fig. 11 | X-Mem IPC/hit rates vs packet size, 3 schemes |
//! | [`fig12`] | Fig. 12 | network metrics vs storage block size, 3 schemes |
//! | [`fig13`] | Fig. 13a/13b | real-world colocations, Default/Isolate/A4-a..d |
//! | [`fig14`] | Fig. 14a–d | latency breakdowns, I/O throughput, memory BW |
//! | [`fig15`] | Fig. 15a–c | threshold & timing sensitivity |
//! | [`fig_numa`] | beyond the paper | local vs remote NIC/NVMe placement on a 2-socket system |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fault;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig_numa;
pub mod queue;
pub mod runner;
pub mod service;
pub mod spec;
pub mod supervise;
mod table;

pub use cache::{spec_key, ResultCache};
pub use fault::{Backoff, FabricHealth, FaultFs, FaultPlan, Fs, RealFs};
pub use queue::{Enqueued, JobQueue, QueueError, Task, TaskState, MIN_STALE_AGE};
pub use runner::{
    CellFailure, FailureKind, Sweep, SweepOutcome, SweepRunner, TypedAxis, TypedSweep2,
};
pub use service::{
    drain_queue, fabric_health, figures, DrainReport, FigureDef, JobTables, Protocol, SeedPolicy,
    Shard, SweepJob, MAX_ATTEMPTS, MAX_HEARTBEAT_FAILURES,
};
pub use spec::{RunOpts, ScenarioRun, ScenarioSpec, Scheme, WorkloadSpec};
pub use supervise::{CellCkpt, CellSupervisor, CkptStore, CELL_CKPT_VERSION};
pub use table::{Row, Table, TableStats};
