//! Experiment harness reproducing every measured figure of the A4 paper.
//!
//! One module per figure; each exposes a `run(opts)` returning
//! [`Table`]s whose rows/series correspond to what the paper plots. The
//! `a4-repro` binary prints them; `a4-bench` wraps them in Criterion
//! targets; the integration tests assert the *shapes* (who wins, where
//! the bumps are) rather than absolute numbers — see EXPERIMENTS.md.
//!
//! | module | paper figure | what it shows |
//! |---|---|---|
//! | [`fig3`] | Fig. 3a/3b | latent + DMA-bloat + directory contention way sweep |
//! | [`fig4`] | Fig. 4 | directory contention disappears with DCA off |
//! | [`fig5`] | Fig. 5a | storage throughput & memory traffic vs block size |
//! | [`fig6`] | Fig. 6 | storage I/O inflating DPDK-T latency |
//! | [`fig7`] | Fig. 7b | n-Exclude vs (n+2)-Overlap allocation strategies |
//! | [`fig8`] | Fig. 8a/8b | per-SSD DCA off + trash-way shrinking |
//! | [`fig11`] | Fig. 11 | X-Mem IPC/hit rates vs packet size, 3 schemes |
//! | [`fig12`] | Fig. 12 | network metrics vs storage block size, 3 schemes |
//! | [`fig13`] | Fig. 13a/13b | real-world colocations, Default/Isolate/A4-a..d |
//! | [`fig14`] | Fig. 14a–d | latency breakdowns, I/O throughput, memory BW |
//! | [`fig15`] | Fig. 15a–c | threshold & timing sensitivity |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod scenario;
mod table;

pub use scenario::RunOpts;
pub use table::{Row, Table};
