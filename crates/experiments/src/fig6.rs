//! Fig. 6: storage-I/O-driven DCA contention — co-running FIO raises
//! DPDK-T latency (5–175 % in the paper), peaking around the block size
//! where storage throughput saturates; disabling DCA globally is no
//! remedy because network latency explodes.
//!
//! Setup (§3.2): DPDK-T at ways `[4:5]` + FIO at ways `[2:3]`, block
//! size swept, DCA on vs off; plus DPDK-T solo references.

use crate::scenario::{self, RunOpts};
use crate::table::Table;
use a4_core::Harness;
use a4_model::{ClosId, Priority, WayMask};
use a4_sim::LatencyKind;

/// The swept block sizes in KiB.
pub const BLOCK_KIB: [u64; 10] = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// One configuration; `block_kib = None` runs DPDK-T solo. Returns
/// `(net_avg_us, net_p99_us, storage_gbps)`.
pub fn run_point(opts: &RunOpts, block_kib: Option<u64>, dca_on: bool) -> (f64, f64, f64) {
    let mut sys = scenario::base_system(opts);
    let nic = scenario::attach_nic(&mut sys, 4, 1024).expect("port free");
    let dpdk =
        scenario::add_dpdk(&mut sys, nic, true, &[0, 1, 2, 3], Priority::High).expect("cores free");
    sys.cat_set_mask(ClosId(1), WayMask::from_paper_range(4, 5).expect("static"))
        .expect("valid");
    sys.cat_assign_workload(dpdk, ClosId(1))
        .expect("registered");

    let fio = block_kib.map(|kib| {
        let ssd = scenario::attach_ssd(&mut sys).expect("port free");
        let lines = scenario::block_lines(&sys, kib);
        let id = scenario::add_fio(&mut sys, ssd, lines, &[4, 5, 6, 7], Priority::Low)
            .expect("cores free");
        sys.cat_set_mask(ClosId(2), WayMask::from_paper_range(2, 3).expect("static"))
            .expect("valid");
        sys.cat_assign_workload(id, ClosId(2)).expect("registered");
        id
    });

    sys.set_global_dca(dca_on);
    let mut harness = Harness::new(sys);
    let report = harness.run(opts.warmup, opts.measure);
    let avg = report.mean_latency_ns(dpdk, LatencyKind::NetTotal) / 1000.0;
    let p99 = report.p99_latency_ns(dpdk, LatencyKind::NetTotal) as f64 / 1000.0;
    let secs = report.samples.len() as f64 * 1e-3;
    let tp = fio.map_or(0.0, |id| report.total_io_bytes(id) as f64 / secs / 1e9);
    (avg, p99, tp)
}

/// Runs the full figure (6a sweep plus 6b solo rows).
pub fn run(opts: &RunOpts) -> Table {
    let mut table = Table::new(
        "fig6",
        "impact of FIO on DPDK-T latency vs storage block size",
        [
            "al_on_us",
            "tl_on_us",
            "tp_on",
            "al_off_us",
            "tl_off_us",
            "tp_off",
        ],
    );
    let (solo_al_on, solo_tl_on, _) = run_point(opts, None, true);
    let (solo_al_off, solo_tl_off, _) = run_point(opts, None, false);
    table.push(
        "solo",
        [solo_al_on, solo_tl_on, 0.0, solo_al_off, solo_tl_off, 0.0],
    );
    for kib in BLOCK_KIB {
        let (al_on, tl_on, tp_on) = run_point(opts, Some(kib), true);
        let (al_off, tl_off, tp_off) = run_point(opts, Some(kib), false);
        table.push(
            format!("{kib}KB"),
            [al_on, tl_on, tp_on, al_off, tl_off, tp_off],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fio_inflates_dpdk_latency_with_dca_on() {
        let opts = RunOpts::quick();
        let (solo_al, ..) = run_point(&opts, None, true);
        let (co_al, ..) = run_point(&opts, Some(128), true);
        assert!(
            co_al > solo_al * 1.04,
            "storage contention raises network latency: solo={solo_al:.1}us co={co_al:.1}us"
        );
    }

    #[test]
    fn global_dca_off_is_worse_for_network() {
        let opts = RunOpts::quick();
        let (al_on, ..) = run_point(&opts, None, true);
        let (al_off, ..) = run_point(&opts, None, false);
        assert!(
            al_off > al_on,
            "solo DPDK-T: dca-off {al_off:.1}us vs on {al_on:.1}us"
        );
    }
}
