//! Fig. 6: storage-I/O-driven DCA contention — co-running FIO raises
//! DPDK-T latency (5–175 % in the paper), peaking around the block size
//! where storage throughput saturates; disabling DCA globally is no
//! remedy because network latency explodes.
//!
//! Setup (§3.2): DPDK-T at ways `[4:5]` + FIO at ways `[2:3]`, block
//! size swept, DCA on vs off; plus DPDK-T solo references.

use crate::runner::{SweepRunner, TypedAxis, TypedSweep2};
use crate::spec::{RunOpts, ScenarioRun, ScenarioSpec, WorkloadSpec};
use crate::table::Table;
use a4_model::{Priority, WayMask};
use a4_sim::LatencyKind;

/// The swept block sizes in KiB.
pub const BLOCK_KIB: [u64; 10] = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// One cell; `block_kib = None` runs DPDK-T solo.
pub fn spec(opts: &RunOpts, block_kib: Option<u64>, dca_on: bool) -> ScenarioSpec {
    let mut s = ScenarioSpec::new(
        format!(
            "fig6 {} dca={}",
            block_kib.map_or("solo".to_string(), |k| format!("{k}KB")),
            if dca_on { "on" } else { "off" }
        ),
        *opts,
    )
    .with_nic(4, 1024)
    .with_workload(
        "dpdk",
        WorkloadSpec::Dpdk {
            device: "nic".into(),
            touch: true,
        },
        &[0, 1, 2, 3],
        Priority::High,
    )
    .with_cat(
        1,
        WayMask::from_paper_range(4, 5).expect("static"),
        &["dpdk"],
    )
    .with_global_dca(dca_on);
    if let Some(kib) = block_kib {
        s = s
            .with_ssd()
            .with_workload(
                "fio",
                WorkloadSpec::Fio {
                    device: "ssd".into(),
                    block_kib: kib,
                },
                &[4, 5, 6, 7],
                Priority::Low,
            )
            .with_cat(
                2,
                WayMask::from_paper_range(2, 3).expect("static"),
                &["fio"],
            );
    }
    s
}

/// The block × DCA grid that follows the two solo reference cells.
pub fn grid() -> TypedSweep2<u64, bool> {
    TypedSweep2::new(
        TypedAxis::new("block_kib", BLOCK_KIB.map(|k| (k, format!("{k}KB")))),
        TypedAxis::new("dca", [(true, "on"), (false, "off")]),
    )
}

/// All cells: solo on/off first, then the block × DCA grid.
pub fn specs(opts: &RunOpts) -> Vec<ScenarioSpec> {
    let mut specs = vec![spec(opts, None, true), spec(opts, None, false)];
    specs.extend(grid().map(|&kib, &dca_on| spec(opts, Some(kib), dca_on)));
    specs
}

/// Renders the figure from the runs of [`specs`] (same order).
pub fn table(runs: &[ScenarioRun]) -> Table {
    let grid = grid();
    let mut table = Table::new(
        "fig6",
        "impact of FIO on DPDK-T latency vs storage block size",
        [
            "al_on_us",
            "tl_on_us",
            "tp_on",
            "al_off_us",
            "tl_off_us",
            "tp_off",
        ],
    );
    let (solo_al_on, solo_tl_on, _) = point_metrics(&runs[0], false);
    let (solo_al_off, solo_tl_off, _) = point_metrics(&runs[1], false);
    table.push(
        "solo",
        [solo_al_on, solo_tl_on, 0.0, solo_al_off, solo_tl_off, 0.0],
    );
    for (pair, label) in runs[2..].chunks_exact(grid.b.len()).zip(&grid.a.labels) {
        let (al_on, tl_on, tp_on) = point_metrics(&pair[0], true);
        let (al_off, tl_off, tp_off) = point_metrics(&pair[1], true);
        table.push(label.clone(), [al_on, tl_on, tp_on, al_off, tl_off, tp_off]);
    }
    table
}

fn point_metrics(run: &ScenarioRun, with_fio: bool) -> (f64, f64, f64) {
    (
        run.mean_latency_us("dpdk", LatencyKind::NetTotal),
        run.p99_latency_us("dpdk", LatencyKind::NetTotal),
        if with_fio { run.io_gbps("fio") } else { 0.0 },
    )
}

/// One configuration; `block_kib = None` runs DPDK-T solo. Returns
/// `(net_avg_us, net_p99_us, storage_gbps)`.
pub fn run_point(opts: &RunOpts, block_kib: Option<u64>, dca_on: bool) -> (f64, f64, f64) {
    let run = spec(opts, block_kib, dca_on)
        .build()
        .expect("static fig6 layout")
        .run();
    point_metrics(&run, block_kib.is_some())
}

/// Runs the full figure (6a sweep plus 6b solo rows) serially.
pub fn run(opts: &RunOpts) -> Table {
    run_with(opts, &SweepRunner::serial())
}

/// Runs the full figure, fanning cells out over `runner`.
pub fn run_with(opts: &RunOpts, runner: &SweepRunner) -> Table {
    let runs = runner.run_specs(&specs(opts)).expect("static fig6 layout");
    table(&runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fio_inflates_dpdk_latency_with_dca_on() {
        let opts = RunOpts::quick();
        let (solo_al, ..) = run_point(&opts, None, true);
        let (co_al, ..) = run_point(&opts, Some(128), true);
        assert!(
            co_al > solo_al * 1.04,
            "storage contention raises network latency: solo={solo_al:.1}us co={co_al:.1}us"
        );
    }

    #[test]
    fn global_dca_off_is_worse_for_network() {
        let opts = RunOpts::quick();
        let (al_on, ..) = run_point(&opts, None, true);
        let (al_off, ..) = run_point(&opts, None, false);
        assert!(
            al_off > al_on,
            "solo DPDK-T: dca-off {al_off:.1}us vs on {al_on:.1}us"
        );
    }
}
